//! Minimal vendored `#[derive(Serialize, Deserialize)]` macros.
//!
//! Supports exactly the shapes this workspace derives on: non-generic
//! structs with named fields (doc comments and other attributes are
//! skipped). The generated impls target the vendored `serde` crate's
//! `Value`-tree traits. Anything fancier — enums, generics, tuple
//! structs, `#[serde(...)]` attributes — is rejected with a compile
//! error naming this file, so a future contributor knows where to add
//! support.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructShape {
    name: String,
    fields: Vec<String>,
}

/// Parses `[pub] struct Name { [attrs] [pub] field: Type, ... }` out of
/// the derive input token stream.
fn parse_struct(input: TokenStream, trait_name: &str) -> StructShape {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes and visibility; find the `struct` keyword.
    let mut name = None;
    while let Some(token) = tokens.next() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next(); // the [...] attribute group
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("derive({trait_name}): expected struct name, got {other:?}"),
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" || id.to_string() == "union" => {
                panic!(
                    "derive({trait_name}): only structs with named fields are supported \
                     by the vendored serde_derive stub"
                );
            }
            _ => {}
        }
    }
    let name = name.unwrap_or_else(|| panic!("derive({trait_name}): no struct found"));

    // Next token must be the brace-delimited field list (no generics).
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => panic!(
            "derive({trait_name}): generic structs are not supported by the vendored \
             serde_derive stub (struct {name})"
        ),
        other => panic!(
            "derive({trait_name}): expected named-field struct body for {name}, got {other:?}"
        ),
    };

    let mut fields = Vec::new();
    let mut body_tokens = body.into_iter().peekable();
    'fields: loop {
        // Skip field attributes (doc comments arrive as #[doc = "..."]).
        loop {
            match body_tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    body_tokens.next();
                    body_tokens.next(); // the [...] group
                }
                _ => break,
            }
        }
        // Skip `pub` / `pub(...)`.
        if matches!(body_tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            body_tokens.next();
            if matches!(
                body_tokens.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                body_tokens.next();
            }
        }
        // Field name.
        match body_tokens.next() {
            Some(TokenTree::Ident(field)) => fields.push(field.to_string()),
            None => break 'fields,
            other => panic!("derive({trait_name}): expected field name in {name}, got {other:?}"),
        }
        // Skip `: Type` up to the next top-level comma. Commas nested in
        // parens/brackets arrive inside Groups; only `<...>` nesting is
        // tracked manually.
        let mut angle_depth = 0i32;
        for token in body_tokens.by_ref() {
            if let TokenTree::Punct(p) = &token {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }

    StructShape { name, fields }
}

/// Derives the vendored `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input, "Serialize");
    let pairs: String = shape
        .fields
        .iter()
        .map(|f| {
            format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),")
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(vec![{pairs}])\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input, "Deserialize");
    let inits: String = shape
        .fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(\n\
                     value.get(\"{f}\")\n\
                         .ok_or_else(|| format!(\"missing field `{f}` in {name}\"))?,\n\
                 )?,",
                name = shape.name,
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> Result<Self, String> {{\n\
                 Ok({name} {{ {inits} }})\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
