//! Minimal vendored stand-in for `crossbeam`: scoped threads with the
//! crossbeam 0.8 API (`scope(|s| ...)` returning a `Result`, spawn
//! closures receiving `&Scope`), implemented over `std::thread::scope`.

pub mod thread {
    //! Scoped threads.

    use std::any::Any;
    use std::panic::AssertUnwindSafe;

    /// Error payload of a panicked scope or thread.
    pub type Panic = Box<dyn Any + Send + 'static>;

    /// A scope for spawning threads that may borrow from the caller.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, yielding its return value or
        /// its panic payload.
        pub fn join(self) -> Result<T, Panic> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope again so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns. Returns `Err` with the panic payload if the closure or
    /// an unjoined spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Panic>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = vec![1u64, 2, 3, 4];
            let total = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker"))
                    .sum::<u64>()
            })
            .expect("scope");
            assert_eq!(total, 10);
        }

        #[test]
        fn nested_spawn_works() {
            let n = super::scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 21).join().expect("inner") * 2)
                    .join()
                    .expect("outer")
            })
            .expect("scope");
            assert_eq!(n, 42);
        }

        #[test]
        fn panics_surface_as_err() {
            let r = super::scope(|_| panic!("boom"));
            assert!(r.is_err());
        }
    }
}
