//! Minimal vendored stand-in for `serde_json`: prints and parses the
//! vendored `serde` crate's [`Value`](serde::Value) tree.
//!
//! Numbers print with Rust's shortest-roundtrip `f64` formatting, so
//! every serialized value reparses to the identical `f64` (and `f32`
//! fields recover their exact value — `f32 → f64` widening is lossless).
//! Non-finite floats serialize as `null`, matching real serde_json.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails for the value shapes this workspace produces; the
/// `Result` mirrors the real serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a 2-space-indented JSON string.
///
/// # Errors
///
/// Never fails for the value shapes this workspace produces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax or shape problem.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(Error::new)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1)
        }),
        Value::Object(fields) => write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
            let (key, field) = &fields[i];
            write_string(out, key);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, field, indent, depth + 1)
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    use fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        // Integral values in the exact range print without a fraction.
        write!(out, "{}", n as i64).expect("write to String");
    } else {
        write!(out, "{n}").expect("write to String");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.parse_string()?;
                    self.skip_whitespace();
                    self.expect(b':')?;
                    fields.push((key, self.parse_value()?));
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    Error::new(format!("bad \\u escape at byte {}", self.pos))
                                })?;
                            // Surrogate pairs are not needed for the
                            // ASCII-ish strings this workspace writes.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty rest");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| Error::new(format!("bad number at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_tree() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::String("x\ny\"z".to_string())),
            (
                "data".to_string(),
                Value::Array(vec![
                    Value::Number(1.0),
                    Value::Number(-0.125),
                    Value::Number(0.1f32 as f64),
                    Value::Bool(true),
                    Value::Null,
                ]),
            ),
            ("empty".to_string(), Value::Array(vec![])),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let compact = to_string(&Raw(v.clone())).unwrap();
        let pretty = to_string_pretty(&Raw(v.clone())).unwrap();

        struct Echo(Value);
        impl Deserialize for Echo {
            fn from_value(value: &Value) -> Result<Echo, String> {
                Ok(Echo(value.clone()))
            }
        }
        assert_eq!(from_str::<Echo>(&compact).unwrap().0, v);
        assert_eq!(from_str::<Echo>(&pretty).unwrap().0, v);
    }

    #[test]
    fn f32_values_survive_roundtrip() {
        let xs: Vec<f32> = vec![0.1, -2.5e-7, 3.14159, f32::MAX, -0.0];
        let json = to_string(&xs).unwrap();
        let back: Vec<f32> = from_str(&json).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn shortest_f32_decimals_parse_leniently() {
        // "0.1" (what real serde_json writes for 0.1f32) must come back
        // as 0.1f32 even though the f64 value differs.
        let back: Vec<f32> = from_str("[0.1, 1, -3]").unwrap();
        assert_eq!(back, vec![0.1f32, 1.0, -3.0]);
    }

    #[test]
    fn errors_are_io_error_compatible() {
        let err = from_str::<Vec<f32>>("[1,").unwrap_err();
        let io = std::io::Error::other(err);
        assert!(io.to_string().contains("JSON error"));
    }
}
