//! Minimal vendored stand-in for the `rand_chacha` crate: a real
//! ChaCha8 keystream generator behind the `rand_core` traits.
//!
//! Statistical quality matches the genuine cipher (it *is* the ChaCha
//! permutation with 8 rounds); only the `rand_core` plumbing around it
//! is reduced to the slice this workspace uses. Streams produced by a
//! given seed are stable across runs and platforms — every simulation
//! in this workspace relies on that for reproducibility.

pub mod rand_core {
    //! Re-export of the vendored `rand_core` traits, mirroring the real
    //! crate's `rand_chacha::rand_core` re-export path.
    pub use ::rand_core::{RngCore, SeedableRng};
}

use ::rand_core::{RngCore, SeedableRng};

/// A ChaCha stream cipher based generator with 8 rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 256-bit key, 64-bit block counter,
    /// 64-bit stream id (always 0 here).
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unconsumed word of `block`; 16 means "refill needed".
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: four column rounds then four diagonals.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn clone_resumes_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn output_roughly_uniform() {
        // Crude sanity check: mean of uniform u8 samples near 127.5.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let sum: u64 = (0..10_000).map(|_| (rng.next_u32() & 0xFF) as u64).sum();
        let mean = sum as f64 / 10_000.0;
        assert!((120.0..135.0).contains(&mean), "mean {mean}");
    }
}
