//! Minimal vendored stand-in for `proptest`.
//!
//! Provides the `proptest!` macro, [`Strategy`] combinators
//! (`prop_map`, `prop_flat_map`, tuples, ranges, `collection::vec`),
//! `any::<T>()`, and the `prop_assert*` / `prop_assume!` macros — the
//! exact surface the workspace's property tests use. Unlike the real
//! crate there is no shrinking: a failing case fails the test with the
//! sampled inputs in the panic message (every strategy is sampled from
//! a ChaCha8 stream seeded from the test's module path, so failures
//! reproduce deterministically).

use rand_chacha::ChaCha8Rng;
use rand_core::{RngCore, SeedableRng};

/// Deterministic source of randomness for one property test.
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// Creates the RNG for a test, seeded from the test's full name so
    /// every test draws an independent, reproducible stream.
    pub fn for_test(test_name: &str) -> TestRng {
        // FNV-1a over the name.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: ChaCha8Rng::seed_from_u64(hash),
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Lighter than the real crate's 256: these tests build correction
        // tables per case and run under `cargo test` in tier-1.
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy for the full range of `T` (with light edge-case biasing for
/// integers, mirroring proptest's tendency to probe extremes).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical strategy for any [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! unsigned_range_from_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                (<$t>::MAX as u64 - self.start as u64)
                    .checked_add(1)
                    .map(|span| self.start.wrapping_add((rng.next_u64() % span) as $t))
                    .unwrap_or(rng.next_u64() as $t)
            }
        }
    )*};
}

unsigned_range_from_strategies!(u8, u16, u32, u64, usize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Admissible length specs for [`vec`]: a fixed length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                let span = (self.size.hi - self.size.lo + 1) as u64;
                self.size.lo + (rng.next_u64() % span) as usize
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Defines property tests: each argument is drawn from its strategy for
/// every case, then the body runs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strategy:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..config.cases {
                    $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (The vendored runner skips without replacement, so heavy use of
/// assumptions reduces the effective case count.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|n| n * 2)
    }

    proptest! {
        #[test]
        fn ranges_and_maps(x in 3u32..10, y in even(), z in 1u64..) {
            prop_assert!((3..10).contains(&x));
            prop_assert_eq!(y % 2, 0);
            prop_assert!(z >= 1);
        }

        #[test]
        fn tuples_flat_maps_and_vecs(
            (len, items) in (1usize..5).prop_flat_map(|n| {
                (Just(n), collection::vec(-1.0f32..1.0, n))
            }),
            flag in any::<bool>(),
        ) {
            prop_assert_eq!(items.len(), len);
            prop_assert!(items.iter().all(|x| (-1.0..1.0).contains(x)));
            prop_assume!(flag);
            prop_assert!(flag);
        }
    }

    #[test]
    fn config_cases_respected() {
        let mut runs = 0u32;
        let config = ProptestConfig::with_cases(7);
        let mut rng = crate::TestRng::for_test("config_cases_respected");
        for _ in 0..config.cases {
            let _ = crate::Strategy::sample(&(0u32..5), &mut rng);
            runs += 1;
        }
        assert_eq!(runs, 7);
    }
}
