//! Minimal vendored stand-in for `serde`.
//!
//! Instead of serde's visitor architecture this stub routes everything
//! through an owned [`Value`] tree: `Serialize` renders to a `Value`,
//! `Deserialize` reads from one. The vendored `serde_json` then prints
//! and parses that tree. This supports exactly what the workspace
//! needs — `#[derive(Serialize, Deserialize)]` on plain named-field
//! structs of primitives, `String`s, and `Vec`s — with the same import
//! paths (`use serde::{Serialize, Deserialize}`) as the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// A generic JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (stored as `f64`; exact for `f32`, integers up to
    /// 2^53, and every count this workspace serializes).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as an ordered field list (preserves struct order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up a field of an object by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Types renderable to a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types constructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Reads an instance from a value tree.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the tree has the wrong
    /// shape (missing field, wrong type, out-of-range number).
    fn from_value(value: &Value) -> Result<Self, String>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// Identity impls: parsing into / rendering from a raw `Value` lets
// callers inspect free-form JSON (e.g. protocol frames with optional
// fields) without a fixed struct shape.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Value, String> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<bool, String> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, found {other:?}")),
        }
    }
}

macro_rules! number_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, String> {
                match value {
                    Value::Number(n) => {
                        let cast = *n as $t;
                        if cast as f64 == *n {
                            Ok(cast)
                        } else {
                            Err(format!(
                                "number {n} out of range for {}",
                                stringify!($t)
                            ))
                        }
                    }
                    other => Err(format!("expected number, found {other:?}")),
                }
            }
        }
    )*};
}

number_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, String> {
                match value {
                    // Lenient cast: a shortest-f32 decimal written by the
                    // real serde_json reparses to a nearby f64, so exact
                    // f64 roundtripping must not be required here.
                    Value::Number(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(format!("expected number, found {other:?}")),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<String, String> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(format!("expected string, found {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Vec<T>, String> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(format!("expected array, found {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Option<T>, String> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrips_exactly_through_f64() {
        for &x in &[0.1f32, -3.75, f32::MAX, f32::MIN_POSITIVE, 1e-20] {
            let v = x.to_value();
            assert_eq!(f32::from_value(&v).unwrap(), x);
        }
    }

    #[test]
    fn out_of_range_numbers_rejected() {
        let v = Value::Number(-1.0);
        assert!(u32::from_value(&v).is_err());
        let v = Value::Number(1.5);
        assert!(u64::from_value(&v).is_err());
    }

    #[test]
    fn nested_vectors() {
        let data = vec![vec![1u32, 2], vec![3]];
        let v = data.to_value();
        assert_eq!(Vec::<Vec<u32>>::from_value(&v).unwrap(), data);
    }
}
