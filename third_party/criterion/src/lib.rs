//! Minimal vendored stand-in for `criterion`.
//!
//! Runs each benchmark with a calibration pass followed by
//! `sample_size` timed samples sized to fill `measurement_time`, then
//! reports mean/median/min per-iteration wall time. No statistical
//! regression machinery — but the numbers are honest medians over real
//! samples, which is what `scripts/bench_baseline.sh` records.
//!
//! When the `CRITERION_JSON` environment variable names a file, every
//! completed benchmark appends one JSON object line:
//! `{"name":...,"mean_ns":...,"median_ns":...,"min_ns":...,"samples":N,"iters_per_sample":M}`.
//! The harness exits nonzero if the file cannot be written.

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark: calibrates, samples, reports.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        // Calibration: find an iteration count that takes ≥ ~1 ms, to
        // estimate per-iteration cost.
        let mut calibration_iters = 1u64;
        let per_iter_estimate_ns = loop {
            let mut bencher = Bencher {
                iters: calibration_iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut bencher);
            let nanos = bencher.elapsed.as_nanos().max(1) as u64;
            if bencher.elapsed >= Duration::from_millis(1) || calibration_iters >= 1 << 24 {
                break (nanos / calibration_iters).max(1);
            }
            calibration_iters = calibration_iters.saturating_mul(4);
        };

        // Size each sample so all samples together fill measurement_time.
        let budget_ns = self.measurement_time.as_nanos() as u64 / self.sample_size as u64;
        let iters_per_sample = (budget_ns / per_iter_estimate_ns).clamp(1, 1 << 28);

        let mut per_iter_ns: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let mut bencher = Bencher {
                    iters: iters_per_sample,
                    elapsed: Duration::ZERO,
                };
                routine(&mut bencher);
                bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64
            })
            .collect();
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));

        let min = per_iter_ns[0];
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;

        println!(
            "{name:<40} median {:>12} mean {:>12} min {:>12} ({} samples × {} iters)",
            format_ns(median),
            format_ns(mean),
            format_ns(min),
            self.sample_size,
            iters_per_sample,
        );

        if let Ok(path) = std::env::var("CRITERION_JSON") {
            let line = format!(
                "{{\"name\":\"{name}\",\"mean_ns\":{mean:.1},\"median_ns\":{median:.1},\
                 \"min_ns\":{min:.1},\"samples\":{},\"iters_per_sample\":{iters_per_sample}}}\n",
                self.sample_size,
            );
            let result = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut file| file.write_all(line.as_bytes()));
            if let Err(err) = result {
                eprintln!("criterion: cannot append to CRITERION_JSON={path}: {err}");
                std::process::exit(1);
            }
        }
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.3} ms", ns / 1_000_000.0)
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it as many iterations as the harness
    /// requested for this sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_sane_timings() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        let mut ran = false;
        c.bench_function("spin", |b| {
            ran = true;
            b.iter(|| (0..100u64).sum::<u64>())
        });
        assert!(ran);
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
    }
}
