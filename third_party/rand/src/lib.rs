//! Minimal vendored stand-in for the `rand` crate.
//!
//! Implements exactly the API surface this workspace uses: the [`Rng`]
//! extension trait with `gen` (uniform `f32`/`f64`/integers) and
//! `gen_range` over half-open and inclusive integer/float ranges, plus
//! re-exports of the [`rand_core`] traits. Uniform floats use the
//! standard 53-bit (24-bit for `f32`) mantissa construction, so values
//! lie in `[0, 1)` exactly as with upstream `rand`.

pub use rand_core::{RngCore, SeedableRng};

pub mod distributions {
    //! The `Standard` distribution and the [`Distribution`] trait.

    use crate::RngCore;

    /// A distribution of values of type `T`.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard uniform distribution: floats in `[0, 1)`, integers
    /// over their full range, `bool` with probability 1/2.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits scaled into [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }
}

use distributions::{Distribution, Standard};

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! unsigned_range_from_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeFrom<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                (<$t>::MAX as u64 - self.start as u64)
                    .checked_add(1)
                    .map(|span| self.start.wrapping_add((rng.next_u64() % span) as $t))
                    .unwrap_or(rng.next_u64() as $t)
            }
        }
    )*};
}

unsigned_range_from_impls!(u8, u16, u32, u64, usize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard.sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit: $t = Standard.sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// Extension methods over [`RngCore`]: the user-facing sampling API.
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let a: u32 = rng.gen_range(0..7);
            assert!(a < 7);
            let b: usize = rng.gen_range(2..=5);
            assert!((2..=5).contains(&b));
            let c: u64 = rng.gen_range(1u64..);
            assert!(c >= 1);
            let f: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn sample(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.gen()
        }
        let mut rng = Counter(9);
        let dyn_ref: &mut Counter = &mut rng;
        assert!((0.0..1.0).contains(&sample(dyn_ref)));
    }
}
