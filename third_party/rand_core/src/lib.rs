//! Minimal vendored stand-in for the `rand_core` crate.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace vendors the narrow slice of the `rand` ecosystem it
//! actually uses (see `third_party/README.md`). This crate provides the
//! two core traits; concrete generators live in `rand_chacha`.
//!
//! `seed_from_u64` uses the same PCG32-based seed expansion as upstream
//! `rand_core` 0.6, so seeds produce the same key material.

/// A source of uniformly random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed material (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with a PCG32 stream (the same
    /// expansion upstream `rand_core` 0.6 uses) and seeds the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&word.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Capture([u8; 32]);
    impl SeedableRng for Capture {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> Capture {
            Capture(seed)
        }
    }
    impl RngCore for Capture {
        fn next_u32(&mut self) -> u32 {
            0
        }
        fn next_u64(&mut self) -> u64 {
            0
        }
    }

    #[test]
    fn seed_expansion_is_deterministic_and_seed_sensitive() {
        let a = Capture::seed_from_u64(1).0;
        let b = Capture::seed_from_u64(1).0;
        let c = Capture::seed_from_u64(2).0;
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
