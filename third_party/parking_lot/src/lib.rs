//! Minimal vendored stand-in for `parking_lot`: a [`Mutex`] with the
//! poison-free `lock()` signature, backed by `std::sync::Mutex`.
//!
//! Poisoning is deliberately ignored (a panicked writer's partial state
//! is still returned), matching parking_lot's semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive; `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Returns a mutable reference without locking (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
