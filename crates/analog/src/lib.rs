//! Transient analog simulation of a memristive crossbar row (§IV,
//! Figures 6 and 7 of the paper).
//!
//! The paper builds a SPICE model of a single 128-entry row (ideal
//! voltage sources driving programmable resistors, with an RTN resistance
//! modulator, a thermal-noise current source per cell and a shot-noise
//! source at the summing node) and runs a one-second transient analysis.
//! For linear resistors and additive noise sources, a SPICE `.tran`
//! reduces exactly to time-stepped sampling of the same stochastic
//! processes, which is what this crate implements:
//!
//! - each cell's RTN trap is a continuous-time two-state Markov process
//!   with exponential dwell times `τ_on` (trapped) and `τ_off`
//!   (untrapped), `τ_off > τ_on` per the asymmetric measurements the
//!   paper cites;
//! - thermal and shot noise are white over the measurement bandwidth and
//!   are drawn per sample;
//! - the row current is the sum of per-cell currents at the programmed
//!   (RTN-offset) conductances.
//!
//! The headline artifact is [`TransientRow::run`], which produces the
//! Figure 7 current trace together with the `±1`/`±2` quantization
//! thresholds and the resulting error statistics.
//!
//! # Example
//!
//! ```
//! use analog::TransientRow;
//! use rand::SeedableRng;
//! use xbar::DeviceParams;
//!
//! let params = DeviceParams::default();
//! // 128 cells, equal 2-bit state occupancy — the Figure 7 row.
//! let levels: Vec<u32> = (0..128).map(|i| i % 4).collect();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let mut row = TransientRow::new(&levels, &params, &mut rng);
//! let trace = row.run(0.001, 20_000, &mut rng); // 1 ms at 20 MHz
//! let stats = trace.error_stats();
//! assert!(stats.total_rate() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod trace;
mod transient;

pub use trace::{ErrorStats, Trace};
pub use transient::{RtnState, TransientRow};
