//! Transient traces and their error statistics (Figure 7).

/// Error statistics of a transient trace relative to the quantization
/// thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Fraction of samples at least one LSB above the ideal current.
    pub high_rate: f64,
    /// Fraction of samples at least one LSB below the ideal current.
    pub low_rate: f64,
    /// Fraction of samples at least two LSBs away (either side).
    pub two_step_rate: f64,
    /// Number of samples inspected.
    pub samples: usize,
}

impl ErrorStats {
    /// Overall mis-quantization rate (`high + low`).
    pub fn total_rate(&self) -> f64 {
        self.high_rate + self.low_rate
    }
}

/// A sampled current transient with its ideal value and quantization
/// step — everything needed to plot Figure 7 and extract error rates.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    times: Vec<f64>,
    currents: Vec<f64>,
    ideal: f64,
    lsb: f64,
}

impl Trace {
    /// Builds a trace.
    ///
    /// # Panics
    ///
    /// Panics if `times` and `currents` differ in length or are empty,
    /// or if `lsb <= 0`.
    pub fn new(times: Vec<f64>, currents: Vec<f64>, ideal: f64, lsb: f64) -> Trace {
        assert_eq!(times.len(), currents.len(), "times/currents mismatch");
        assert!(!times.is_empty(), "trace cannot be empty");
        assert!(lsb > 0.0, "LSB must be positive");
        Trace {
            times,
            currents,
            ideal,
            lsb,
        }
    }

    /// Sample timestamps (s).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sampled currents (A).
    pub fn currents(&self) -> &[f64] {
        &self.currents
    }

    /// The ideal error-free current (A) — Figure 7's dotted line.
    pub fn ideal(&self) -> f64 {
        self.ideal
    }

    /// The quantization LSB (A).
    pub fn lsb(&self) -> f64 {
        self.lsb
    }

    /// The `±k` LSB error thresholds — Figure 7's black bars.
    pub fn threshold(&self, k: i32) -> f64 {
        self.ideal + k as f64 * self.lsb
    }

    /// Mean of the sampled currents.
    pub fn mean_current(&self) -> f64 {
        self.currents.iter().sum::<f64>() / self.currents.len() as f64
    }

    /// Classifies every sample against the `±0.5 LSB` correct-read band
    /// and the `±1.5 LSB` two-step band.
    pub fn error_stats(&self) -> ErrorStats {
        let mut high = 0usize;
        let mut low = 0usize;
        let mut two = 0usize;
        for &i in &self.currents {
            let dev = (i - self.ideal) / self.lsb;
            if dev > 0.5 {
                high += 1;
            } else if dev < -0.5 {
                low += 1;
            }
            if dev.abs() > 1.5 {
                two += 1;
            }
        }
        let n = self.currents.len() as f64;
        ErrorStats {
            high_rate: high as f64 / n,
            low_rate: low as f64 / n,
            two_step_rate: two as f64 / n,
            samples: self.currents.len(),
        }
    }

    /// Downsamples to at most `max_points` evenly spaced samples, for
    /// plotting.
    #[must_use]
    pub fn downsample(&self, max_points: usize) -> Trace {
        assert!(max_points > 0, "need at least one point");
        if self.times.len() <= max_points {
            return self.clone();
        }
        let stride = self.times.len().div_ceil(max_points);
        let times: Vec<f64> = self.times.iter().step_by(stride).copied().collect();
        let currents: Vec<f64> = self.currents.iter().step_by(stride).copied().collect();
        Trace {
            times,
            currents,
            ideal: self.ideal,
            lsb: self.lsb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_trace() -> Trace {
        // Ideal 10.0, LSB 1.0; two high errors (both ≥ 2 steps), two low.
        let currents = vec![10.0, 10.2, 11.6, 9.3, 12.7, 10.4, 8.6, 10.0];
        let times = (0..currents.len()).map(|i| i as f64).collect();
        Trace::new(times, currents, 10.0, 1.0)
    }

    #[test]
    fn stats_classify_samples() {
        let stats = synthetic_trace().error_stats();
        assert_eq!(stats.samples, 8);
        assert!((stats.high_rate - 2.0 / 8.0).abs() < 1e-12);
        assert!((stats.low_rate - 2.0 / 8.0).abs() < 1e-12);
        assert!((stats.two_step_rate - 2.0 / 8.0).abs() < 1e-12);
        assert!((stats.total_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn thresholds_are_lsb_multiples() {
        let t = synthetic_trace();
        assert_eq!(t.threshold(1), 11.0);
        assert_eq!(t.threshold(-2), 8.0);
    }

    #[test]
    fn mean_current_is_average() {
        let t = Trace::new(vec![0.0, 1.0], vec![2.0, 4.0], 3.0, 1.0);
        assert_eq!(t.mean_current(), 3.0);
    }

    #[test]
    fn downsample_bounds_length() {
        let t = synthetic_trace();
        let d = t.downsample(3);
        assert!(d.times().len() <= 3);
        assert_eq!(d.ideal(), t.ideal());
        // No-op when already small.
        let same = t.downsample(100);
        assert_eq!(same.times().len(), 8);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_lengths_rejected() {
        Trace::new(vec![0.0], vec![1.0, 2.0], 0.0, 1.0);
    }
}
