//! Time-stepped simulation of one crossbar row.

use rand::Rng;
use xbar::stats::{sample_exponential, sample_normal};
use xbar::{DeviceParams, InputMask};

use crate::trace::Trace;

/// The RTN trap occupancy of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtnState {
    /// Electron trapped: resistance raised by `ΔR`.
    Trapped,
    /// Trap empty: nominal resistance.
    Free,
}

/// One simulated cell: programmed conductance plus an RTN process.
#[derive(Debug, Clone)]
struct Cell {
    /// Conductance with the trap empty (S), including the RTN offset and
    /// programming error.
    g_free: f64,
    /// Conductance with the trap occupied (S).
    g_trapped: f64,
    state: RtnState,
    /// Simulation time at which the next state flip occurs (s).
    next_flip: f64,
}

/// A transient simulation of a single physical row driven by ideal
/// voltage sources (Figure 6 of the paper).
///
/// All columns are driven (the worst case studied in §IV); the row
/// current is sampled at a fixed rate, with RTN transitions resolved
/// event-accurately between samples.
#[derive(Debug, Clone)]
pub struct TransientRow {
    cells: Vec<Cell>,
    params: DeviceParams,
    tau_on: f64,
    tau_off: f64,
    /// Ideal (calibration-target) row current (A).
    ideal_current: f64,
    /// ADC LSB current (A).
    lsb: f64,
    time: f64,
}

impl TransientRow {
    /// Programs a row of cells at the given target levels and
    /// initializes each RTN process in its stationary distribution.
    ///
    /// Programming applies the same RTN-offset calibration and ±1 %
    /// programming tolerance as [`xbar::CrossbarArray::program`].
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty, longer than 128, or contains a level
    /// outside the device range.
    pub fn new<R: Rng + ?Sized>(
        levels: &[u32],
        params: &DeviceParams,
        rng: &mut R,
    ) -> TransientRow {
        assert!(
            !levels.is_empty() && levels.len() <= 128,
            "row must have 1..=128 cells"
        );
        let rtn = params.rtn();
        let p = rtn.state_probability;
        let tau_on = rtn.tau_on;
        let tau_off = rtn.tau_off();

        let cells = levels
            .iter()
            .map(|&level| {
                assert!(level < params.levels(), "level {level} out of range");
                let r_target = 1.0 / params.conductance(level);
                let d_target = rtn.delta_r_over_r(r_target);
                let offset = if params.rtn_offset {
                    p * d_target / (1.0 + d_target)
                } else {
                    0.0
                };
                let tol = params.programming_tolerance;
                let jitter = if tol > 0.0 {
                    rng.gen_range(-tol..=tol)
                } else {
                    0.0
                };
                let r_prog = r_target * (1.0 - offset) * (1.0 + jitter);
                let d = rtn.delta_r_over_r(r_prog);
                let state = if rng.gen::<f64>() < p {
                    RtnState::Trapped
                } else {
                    RtnState::Free
                };
                let dwell = match state {
                    RtnState::Trapped => sample_exponential(rng, tau_on),
                    RtnState::Free => sample_exponential(rng, tau_off),
                };
                Cell {
                    g_free: 1.0 / r_prog,
                    g_trapped: 1.0 / (r_prog * (1.0 + d)),
                    state,
                    next_flip: dwell,
                }
            })
            .collect::<Vec<_>>();

        let ideal_current: f64 = levels
            .iter()
            .map(|&l| params.cell_current(l))
            .sum();
        let lsb = params.v_read * params.g_step();

        TransientRow {
            cells,
            params: params.clone(),
            tau_on,
            tau_off,
            ideal_current,
            lsb,
            time: 0.0,
        }
    }

    /// Number of cells in the row.
    pub fn width(&self) -> usize {
        self.cells.len()
    }

    /// The ideal error-free row current (A).
    pub fn ideal_current(&self) -> f64 {
        self.ideal_current
    }

    /// The ADC LSB current (A).
    pub fn lsb(&self) -> f64 {
        self.lsb
    }

    /// Current count of trapped cells.
    pub fn trapped_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.state == RtnState::Trapped)
            .count()
    }

    /// Advances to absolute time `t`, resolving all RTN transitions in
    /// `(self.time, t]`, and samples the instantaneous row current.
    pub fn sample_at<R: Rng + ?Sized>(&mut self, t: f64, rng: &mut R) -> f64 {
        assert!(t >= self.time, "time must be monotonically increasing");
        let mut g_total = 0.0;
        for cell in &mut self.cells {
            while cell.next_flip <= t {
                let (next_state, mean_dwell) = match cell.state {
                    RtnState::Trapped => (RtnState::Free, self.tau_off),
                    RtnState::Free => (RtnState::Trapped, self.tau_on),
                };
                cell.state = next_state;
                cell.next_flip += sample_exponential(rng, mean_dwell);
            }
            g_total += match cell.state {
                RtnState::Trapped => cell.g_trapped,
                RtnState::Free => cell.g_free,
            };
        }
        self.time = t;

        let current = self.params.v_read * g_total;
        let sigma_thermal = (4.0
            * 1.380_649e-23
            * self.params.temperature
            * self.params.bandwidth
            * g_total)
            .sqrt();
        let sigma_shot = self.params.shot_sigma(current);
        let sigma = (sigma_thermal * sigma_thermal + sigma_shot * sigma_shot).sqrt();
        sample_normal(rng, current, sigma)
    }

    /// Runs a transient of `duration` seconds sampled `samples` times
    /// and returns the trace.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0` or `duration <= 0`.
    pub fn run<R: Rng + ?Sized>(&mut self, duration: f64, samples: usize, rng: &mut R) -> Trace {
        assert!(samples > 0, "need at least one sample");
        assert!(duration > 0.0, "duration must be positive");
        let dt = duration / samples as f64;
        let start = self.time;
        let mut times = Vec::with_capacity(samples);
        let mut currents = Vec::with_capacity(samples);
        for i in 0..samples {
            let t = start + dt * (i + 1) as f64;
            currents.push(self.sample_at(t, rng));
            times.push(t);
        }
        Trace::new(times, currents, self.ideal_current, self.lsb)
    }

    /// Convenience: the full input mask for this row's width (all
    /// columns driven, as in the paper's study).
    pub fn full_mask(&self) -> InputMask {
        InputMask::all_ones(self.width() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    fn fig7_levels() -> Vec<u32> {
        (0..128).map(|i| i % 4).collect()
    }

    #[test]
    fn construction_sets_stationary_occupancy() {
        let params = DeviceParams::default();
        let mut rng = rng();
        // Average over many rows: trapped fraction ≈ p.
        let mut trapped = 0usize;
        let mut total = 0usize;
        for _ in 0..50 {
            let row = TransientRow::new(&fig7_levels(), &params, &mut rng);
            trapped += row.trapped_count();
            total += row.width();
        }
        let frac = trapped as f64 / total as f64;
        assert!((frac - 0.25).abs() < 0.05, "trapped fraction {frac}");
    }

    #[test]
    fn current_stays_near_ideal() {
        let params = DeviceParams::default();
        let mut rng = rng();
        let mut row = TransientRow::new(&fig7_levels(), &params, &mut rng);
        let trace = row.run(1e-4, 2000, &mut rng);
        let mean = trace.mean_current();
        let ideal = row.ideal_current();
        assert!(
            ((mean - ideal) / ideal).abs() < 0.01,
            "mean {mean} vs ideal {ideal}"
        );
    }

    #[test]
    fn rtn_transitions_happen() {
        let params = DeviceParams::default();
        let mut rng = rng();
        let mut row = TransientRow::new(&fig7_levels(), &params, &mut rng);
        let before = row.trapped_count();
        // Advance 100 mean dwell times: states decorrelate.
        row.sample_at(params.rtn_tau_on * 100.0, &mut rng);
        let after = row.trapped_count();
        // Not a strict inequality (could coincide), but over 128 cells a
        // collision of every state is vanishingly unlikely.
        assert!(before != after || row.width() < 4);
    }

    #[test]
    fn time_must_not_go_backwards() {
        let params = DeviceParams::default();
        let mut rng = rng();
        let mut row = TransientRow::new(&[1, 2, 3], &params, &mut rng);
        row.sample_at(1e-3, &mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            row.sample_at(0.5e-3, &mut rng)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn noiseless_row_is_flat() {
        let params = DeviceParams {
            rtn_state_probability: 0.0,
            programming_tolerance: 0.0,
            bandwidth: 0.0,
            ..DeviceParams::default()
        };
        let mut rng = rng();
        let mut row = TransientRow::new(&fig7_levels(), &params, &mut rng);
        let trace = row.run(1e-4, 100, &mut rng);
        let ideal = row.ideal_current();
        for &i in trace.currents() {
            assert!(((i - ideal) / ideal).abs() < 1e-9);
        }
    }

    #[test]
    fn error_rate_in_figure_7_regime() {
        // The paper reports a 14.5 % overall error rate for this row.
        let params = DeviceParams {
            fault_rate: 0.0,
            ..DeviceParams::default()
        };
        let mut rng = rng();
        let mut row = TransientRow::new(&fig7_levels(), &params, &mut rng);
        let trace = row.run(0.01, 20_000, &mut rng);
        let stats = trace.error_stats();
        assert!(
            (0.02..0.40).contains(&stats.total_rate()),
            "error rate {}",
            stats.total_rate()
        );
        assert!(stats.high_rate + stats.low_rate <= 1.0);
    }

    #[test]
    fn full_mask_width() {
        let params = DeviceParams::default();
        let mut rng = rng();
        let row = TransientRow::new(&[0, 1, 2], &params, &mut rng);
        assert_eq!(row.full_mask().count_ones(), 3);
    }
}
