//! The watchdog's monotonic clock — one of the workspace's two audited
//! wall-clock boundaries (the other is `obs::clock`).
//!
//! The per-shard watchdog in `accel::sim` needs elapsed real time even
//! when metrics are disabled (`obs::clock::now_ns` returns 0 then), so
//! it reads this clock instead. Timing read here flows only into the
//! *abort* decision for a stalled shard — never into seeded
//! computation — and an aborted shard is retried from its fixed seed,
//! so results stay bit-identical whether or not a watchdog fired. The
//! `repro-lint` `nondeterminism` lint covers this crate so no other
//! `Instant` can appear.

use std::sync::OnceLock;

// lint: allow(nondeterminism, audited clock boundary: anchors only the watchdog deadline, which triggers seed-stable retries and never feeds seeded computation)
static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();

/// Monotonic nanoseconds since the process's first read of this clock.
///
/// Never decreases within a thread; the first call returns 0.
/// Saturates at `u64::MAX` (≈584 years of uptime).
#[inline]
pub fn now_ns() -> u64 {
    // lint: allow(nondeterminism, the watchdog's single Instant::now site; see module docs)
    let epoch = EPOCH.get_or_init(std::time::Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    #[test]
    fn monotonic_within_a_thread() {
        let a = super::now_ns();
        let b = super::now_ns();
        assert!(b >= a);
    }
}
