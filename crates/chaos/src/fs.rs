//! The atomic-rename writer and its fault-injecting twin.
//!
//! [`write_atomic`] is the workspace's one sanctioned way to put a
//! durability-critical file on disk (the `repro-lint` `raw_file_write`
//! lint rejects direct `File::create`/`fs::write` in the hardened
//! paths): bytes land in a `.tmp` sibling first and reach the final
//! path only through `rename`, so readers never observe a half-written
//! file *from a crash*. The `fault` parameter then simulates the
//! failures rename cannot rule out — the write erroring outright, a
//! torn prefix landing at the final path, a bit flipping silently —
//! which is exactly the space the checkpoint CRC + generation fallback
//! must cover.

use std::io;
use std::path::{Path, PathBuf};

use crate::schedule::{IoErrorKind, IoFault};

fn simulated(kind: IoErrorKind) -> io::Error {
    let msg = match kind {
        IoErrorKind::Eio => "chaos: simulated I/O error (EIO)",
        IoErrorKind::Enospc => "chaos: simulated out-of-space (ENOSPC)",
    };
    io::Error::new(io::ErrorKind::Other, msg)
}

/// The `.tmp` sibling `write_atomic` stages into: same directory (so
/// the rename stays within one filesystem), name suffixed with `.tmp`.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// How many prefix bytes a torn operation lets through: a strict
/// prefix (never the full buffer, so the damage is always real), and
/// never the empty one for non-trivial payloads (an empty file is too
/// easy to detect — mid-byte truncation is the nasty case).
fn torn_len(len: usize, roll: u64) -> usize {
    if len <= 1 {
        return 0;
    }
    1 + (roll % (len as u64 - 1)) as usize
}

fn flip_bit(bytes: &mut [u8], roll: u64) {
    if bytes.is_empty() {
        return;
    }
    let bit = (roll % (bytes.len() as u64 * 8)) as usize;
    bytes[bit / 8] ^= 1 << (bit % 8);
}

/// Write `bytes` to `path` via temp-file + atomic rename, optionally
/// applying an injected fault.
///
/// Fault semantics (what a reader can later observe):
///
/// - `None` — production path: full payload lands atomically.
/// - `Error(_)` — returns the simulated OS error; the destination is
///   left exactly as it was (the temp file never renames).
/// - `Torn { .. }` — a strict prefix of the payload lands **at the
///   final path** and the error is returned: models the write that
///   died after partially flushing. The previous good content is gone.
/// - `BitFlip { .. }` — the full payload lands with one bit flipped
///   and `Ok` is returned: silent corruption only a checksum catches.
///
/// # Example
///
/// ```
/// let dir = std::env::temp_dir().join(format!("chaos-doc-{}", std::process::id()));
/// std::fs::create_dir_all(&dir).unwrap();
/// let target = dir.join("state.json");
/// chaos::fs::write_atomic(&target, b"{\"epoch\":1}", None).unwrap();
/// assert_eq!(std::fs::read(&target).unwrap(), b"{\"epoch\":1}");
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
pub fn write_atomic(path: &Path, bytes: &[u8], fault: Option<IoFault>) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    match fault {
        None => {
            std::fs::write(&tmp, bytes)?;
            std::fs::rename(&tmp, path)
        }
        Some(IoFault::Error(kind)) => {
            // Fail before anything reaches the temp file; clean up any
            // stale sibling so the error leaves no debris behind.
            let _ = std::fs::remove_file(&tmp);
            Err(simulated(kind))
        }
        Some(IoFault::Torn { roll }) => {
            let keep = torn_len(bytes.len(), roll);
            std::fs::write(&tmp, &bytes[..keep])?;
            std::fs::rename(&tmp, path)?;
            Err(io::Error::new(
                io::ErrorKind::Other,
                format!("chaos: torn write ({keep} of {} bytes landed)", bytes.len()),
            ))
        }
        Some(IoFault::BitFlip { roll }) => {
            let mut corrupt = bytes.to_vec();
            flip_bit(&mut corrupt, roll);
            std::fs::write(&tmp, &corrupt)?;
            std::fs::rename(&tmp, path)
        }
    }
}

/// Read `path` fully, optionally applying an injected fault: `Error`
/// fails before reading, `Torn` silently returns a strict prefix (a
/// truncated file), `BitFlip` silently corrupts one bit.
pub fn read(path: &Path, fault: Option<IoFault>) -> io::Result<Vec<u8>> {
    if let Some(IoFault::Error(kind)) = fault {
        return Err(simulated(kind));
    }
    let mut bytes = std::fs::read(path)?;
    match fault {
        Some(IoFault::Torn { roll }) => {
            bytes.truncate(torn_len(bytes.len(), roll));
        }
        Some(IoFault::BitFlip { roll }) => flip_bit(&mut bytes, roll),
        _ => {}
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("chaos-fs-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn clean_write_is_atomic_and_leaves_no_temp() {
        let dir = scratch("clean");
        let target = dir.join("out.json.a");
        write_atomic(&target, b"payload-one", None).expect("write");
        assert_eq!(std::fs::read(&target).expect("read"), b"payload-one");
        write_atomic(&target, b"payload-two", None).expect("overwrite");
        assert_eq!(std::fs::read(&target).expect("read"), b"payload-two");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("dir")
            .map(|e| e.expect("entry").file_name())
            .collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from("out.json.a")]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_fault_leaves_previous_content_untouched() {
        let dir = scratch("error");
        let target = dir.join("state.json");
        write_atomic(&target, b"good generation", None).expect("seed write");
        let err = write_atomic(
            &target,
            b"next generation",
            Some(IoFault::Error(IoErrorKind::Enospc)),
        )
        .expect_err("fault must surface");
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        assert_eq!(std::fs::read(&target).expect("read"), b"good generation");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_then_success_retry_cleans_temp_and_rename_stays_whole() {
        // The retry shape every hardened caller uses: an ENOSPC fault
        // on one schedule index, then the (faultless) retry of the same
        // logical write. The fault must leave no `.tmp` debris for the
        // retry to trip on, the previous good generation must survive
        // the failed attempt, and the retry must land the *entire* new
        // payload — no partial rename can escape the fault window.
        let dir = scratch("enospc-retry");
        let target = dir.join("state.json");
        write_atomic(&target, b"good generation", None).expect("seed write");
        // Model a crashed earlier attempt: stale bytes already sitting
        // at the temp path when the faulted write begins.
        std::fs::write(tmp_sibling(&target), b"stale debris").expect("stage debris");
        let err = write_atomic(
            &target,
            b"next generation",
            Some(IoFault::Error(IoErrorKind::Enospc)),
        )
        .expect_err("fault must surface");
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        // Failed attempt: destination untouched, temp cleaned up.
        assert_eq!(std::fs::read(&target).expect("read"), b"good generation");
        assert!(!tmp_sibling(&target).exists(), "temp survived the fault");
        // Back-to-back retry of the same logical write, now faultless.
        write_atomic(&target, b"next generation", None).expect("retry");
        assert_eq!(std::fs::read(&target).expect("read"), b"next generation");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("dir")
            .map(|e| e.expect("entry").file_name())
            .collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from("state.json")]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_lands_a_strict_prefix_and_errors() {
        let dir = scratch("torn");
        let target = dir.join("state.json");
        let payload = b"{\"generation\":7,\"crc32\":12345}";
        for roll in [0u64, 3, 1_000_003] {
            let err = write_atomic(&target, payload, Some(IoFault::Torn { roll }))
                .expect_err("torn write must error");
            assert!(err.to_string().contains("torn"), "{err}");
            let on_disk = std::fs::read(&target).expect("read");
            assert!(!on_disk.is_empty() && on_disk.len() < payload.len());
            assert_eq!(&payload[..on_disk.len()], &on_disk[..]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bitflip_succeeds_with_exactly_one_bit_changed() {
        let dir = scratch("flip");
        let target = dir.join("state.json");
        let payload = b"all bytes accounted for";
        write_atomic(&target, payload, Some(IoFault::BitFlip { roll: 41 })).expect("silent");
        let on_disk = std::fs::read(&target).expect("read");
        assert_eq!(on_disk.len(), payload.len());
        let flipped: u32 = payload
            .iter()
            .zip(&on_disk)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1, "expected exactly one flipped bit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulted_reads_truncate_or_corrupt() {
        let dir = scratch("read");
        let target = dir.join("state.json");
        std::fs::write(&target, b"0123456789").expect("seed");
        let torn = read(&target, Some(IoFault::Torn { roll: 4 })).expect("torn read");
        assert!(!torn.is_empty() && torn.len() < 10);
        let flipped = read(&target, Some(IoFault::BitFlip { roll: 9 })).expect("flip read");
        assert_ne!(flipped, b"0123456789");
        read(&target, Some(IoFault::Error(IoErrorKind::Eio))).expect_err("eio");
        assert_eq!(read(&target, None).expect("clean"), b"0123456789");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
