//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the
//! checksum guarding campaign checkpoint payloads.
//!
//! Hand-rolled (this workspace vendors no registry crates) with a
//! const-built 256-entry table; the algorithm matches zlib's `crc32`,
//! so checkpoints remain verifiable with any standard tool.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (IEEE, reflected, init/final-xor `0xFFFFFFFF`).
///
/// ```
/// // The classic check vector every IEEE CRC-32 must satisfy.
/// assert_eq!(chaos::crc::crc32(b"123456789"), 0xCBF4_3926);
/// assert_eq!(chaos::crc::crc32(b""), 0);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        let idx = ((crc ^ byte as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let payload = b"{\"epoch\":3,\"rate\":0.125}";
        let base = crc32(payload);
        let mut copy = payload.to_vec();
        for bit in 0..copy.len() * 8 {
            copy[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&copy), base, "flip of bit {bit} went undetected");
            copy[bit / 8] ^= 1 << (bit % 8);
        }
    }
}
