//! Seeded, deterministic fault injection for the harness's I/O and
//! execution seams.
//!
//! Long lifetime campaigns (see `accel::campaign`) survive crashes by
//! checkpointing, but a recovery path that is never exercised is a
//! recovery path that does not work. This crate makes every failure
//! mode the durability layer claims to handle *injectable on demand
//! and reproducible bit-for-bit*:
//!
//! - **I/O faults** at the checkpoint / event-log seams: simulated
//!   `EIO`/`ENOSPC` write errors, torn writes that truncate mid-byte,
//!   and silent single-bit corruption ([`IoFault`], applied by
//!   [`fs::write_atomic`] / [`fs::read`]);
//! - **Execution faults** inside Monte-Carlo worker shards: panics and
//!   stalls at parameterized shard/attempt points ([`ShardChaos`],
//!   generalizing the ad-hoc panic hook that previously lived in
//!   `accel::sim`);
//! - a **schedule** tying it together: [`ChaosSchedule`] derives every
//!   fault decision from a pure integer hash of
//!   `(chaos_seed, seam, index)`, so the same seed replays the same
//!   faults at the same points with no stored state — a failing soak
//!   run is a one-line repro.
//!
//! Probabilities are expressed in permille (integer, 0..=1000) so the
//! schedule stays `Eq`/hashable and no float ever enters a fault
//! decision. With no schedule installed the hardened code paths run
//! fault-free; [`fs::write_atomic`] doubles as the production
//! temp-file + atomic-rename writer.
//!
//! # Example
//!
//! ```
//! use chaos::{ChaosConfig, ChaosSchedule, Seam};
//!
//! let config = ChaosConfig {
//!     write_error_permille: 500,
//!     ..ChaosConfig::default()
//! };
//! let schedule = ChaosSchedule::new(7, config);
//! // Decisions are a pure function of (seed, seam, index): replaying
//! // the schedule yields the identical fault sequence.
//! for index in 0..100 {
//!     assert_eq!(
//!         schedule.io_fault(Seam::CheckpointWrite, index),
//!         schedule.io_fault(Seam::CheckpointWrite, index),
//!     );
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod crc;
pub mod fs;
mod schedule;

pub use schedule::{
    ChaosConfig, ChaosSchedule, ExecFault, IoErrorKind, IoFault, Seam, ShardChaos,
};
