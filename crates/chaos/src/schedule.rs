//! The deterministic fault schedule: every injection decision is a
//! pure integer hash of `(seed, seam, index)`.
//!
//! No schedule state mutates between decisions, so decisions commute:
//! callers may ask in any order (or twice) and get the same answer,
//! which is what makes a chaos run replayable after a crash — the
//! recovered process re-derives exactly the faults the dead one saw.

/// SplitMix64 finalizer: a full-avalanche 64-bit mixing step.
///
/// The standard constants (Steele et al., "Fast splittable pseudorandom
/// number generators"); every fault roll funnels through this.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a decision key down to one u64 by folding each word through
/// [`mix`]. Word order matters, so `(seam, index)` and `(index, seam)`
/// roll differently.
fn roll(words: &[u64]) -> u64 {
    let mut acc = 0x243F_6A88_85A3_08D3; // pi fraction: an arbitrary non-zero start
    for &w in words {
        acc = mix(acc ^ w);
    }
    acc
}

/// An I/O seam the schedule can inject faults into.
///
/// Each seam rolls independently: a fault at `CheckpointWrite` index 3
/// says nothing about `EventWrite` index 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Seam {
    /// Periodic campaign checkpoint writes (the A/B generation slots).
    CheckpointWrite,
    /// Checkpoint reads during `--resume`.
    CheckpointRead,
    /// The final campaign results file written on completion.
    FinalWrite,
    /// JSONL event-log line writes in the obs sink.
    EventWrite,
    /// Accepting a client connection in the serve loop.
    SocketAccept,
    /// Reading a request frame from a client socket.
    SocketRead,
    /// Writing a response frame to a client socket.
    SocketWrite,
    /// Programming + verifying a replacement engine set during a
    /// wear-epoch swap (a fault here models failed verification and
    /// costs a seed-stable re-program, never a wrong answer).
    EngineSwap,
    /// Spawning a grid worker process (a fault here models fork/exec
    /// failure: the attempt is charged, the cell stays claimable).
    ProcessSpawn,
    /// Writing a grid cell lease file (the atomically-claimed
    /// coordination record of `accel::grid`).
    LeaseWrite,
    /// Reading a grid cell lease file back (claim verification and
    /// stale-lease inspection).
    LeaseRead,
}

impl Seam {
    /// Stable label used in diagnostics and `chaos_fault` obs events.
    pub fn label(self) -> &'static str {
        match self {
            Seam::CheckpointWrite => "checkpoint_write",
            Seam::CheckpointRead => "checkpoint_read",
            Seam::FinalWrite => "final_write",
            Seam::EventWrite => "event_write",
            Seam::SocketAccept => "socket_accept",
            Seam::SocketRead => "socket_read",
            Seam::SocketWrite => "socket_write",
            Seam::EngineSwap => "engine_swap",
            Seam::ProcessSpawn => "process_spawn",
            Seam::LeaseWrite => "lease_write",
            Seam::LeaseRead => "lease_read",
        }
    }

    // Seam ids feed the per-seam roll keys, so they are append-only:
    // adding ids 5–8 (serve) and 9–11 (grid) cannot perturb the fault
    // sequence any existing seed produces at earlier seams.
    fn id(self) -> u64 {
        match self {
            Seam::CheckpointWrite => 1,
            Seam::CheckpointRead => 2,
            Seam::FinalWrite => 3,
            Seam::EventWrite => 4,
            Seam::SocketAccept => 5,
            Seam::SocketRead => 6,
            Seam::SocketWrite => 7,
            Seam::EngineSwap => 8,
            Seam::ProcessSpawn => 9,
            Seam::LeaseWrite => 10,
            Seam::LeaseRead => 11,
        }
    }
}

/// Which simulated OS error an [`IoFault::Error`] surfaces as.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoErrorKind {
    /// A generic I/O failure (`EIO`): the operation fails outright.
    Eio,
    /// Device out of space (`ENOSPC`): the write fails outright.
    Enospc,
}

/// A fault to apply to one filesystem operation.
///
/// The `roll` payloads carry the entropy that parameterizes the fault
/// (truncation point, flipped bit) so the fault site needs no further
/// schedule access: [`crate::fs`] derives the concrete cut/bit from
/// `roll % len` at application time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoFault {
    /// The operation fails with a simulated OS error; for writes the
    /// destination is left untouched.
    Error(IoErrorKind),
    /// A torn write/read: only a strict prefix of the bytes makes it
    /// through (possibly cutting a multi-byte token mid-byte), and the
    /// caller sees an error for writes, short data for reads.
    Torn {
        /// Entropy selecting the truncation point.
        roll: u64,
    },
    /// Silent corruption: every byte goes through but one bit is
    /// flipped, and the caller sees success. Only an end-to-end
    /// checksum can catch this.
    BitFlip {
        /// Entropy selecting the flipped bit.
        roll: u64,
    },
}

impl IoFault {
    /// Stable label used in diagnostics and `chaos_fault` obs events.
    pub fn label(&self) -> &'static str {
        match self {
            IoFault::Error(IoErrorKind::Eio) => "eio",
            IoFault::Error(IoErrorKind::Enospc) => "enospc",
            IoFault::Torn { .. } => "torn",
            IoFault::BitFlip { .. } => "bitflip",
        }
    }
}

/// A fault to apply inside a Monte-Carlo worker shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecFault {
    /// Panic mid-shard (exercises `catch_unwind` + seed-stable retry).
    Panic,
    /// Sleep mid-shard for this many milliseconds (exercises the
    /// per-shard watchdog deadline).
    Stall {
        /// Stall duration in milliseconds.
        ms: u64,
    },
}

/// Worker-shard fault injection policy, carried on `AccelConfig`.
///
/// The scripted variants pin a fault to an exact `(shard, attempt)`
/// point — what the unit tests use; `Seeded` rolls per
/// `(shard, attempt)` from a seed — what a [`ChaosSchedule`] hands out
/// per epoch. `Off` is the default and costs one branch per shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShardChaos {
    /// No injection (production default).
    #[default]
    Off,
    /// Panic on the given shard for its first `attempts` attempts.
    /// `attempts: 1` reproduces a transient fault (the retry
    /// succeeds); `attempts: u32::MAX` a persistent one.
    PanicOn {
        /// Target shard index.
        shard: u64,
        /// Number of leading attempts that panic.
        attempts: u32,
    },
    /// Stall on the given shard for its first `attempts` attempts.
    StallOn {
        /// Target shard index.
        shard: u64,
        /// Stall duration in milliseconds.
        ms: u64,
        /// Number of leading attempts that stall.
        attempts: u32,
    },
    /// Roll per `(shard, attempt)`: panic with probability
    /// `panic_permille`/1000, else stall with `stall_permille`/1000.
    Seeded {
        /// Seed for the per-(shard, attempt) rolls (a per-epoch stream
        /// already folded in by [`ChaosSchedule::shard_chaos`]).
        seed: u64,
        /// Permille probability of a panic.
        panic_permille: u32,
        /// Permille probability of a stall (evaluated after panic).
        stall_permille: u32,
        /// Stall duration in milliseconds when a stall fires.
        stall_ms: u64,
    },
}

impl ShardChaos {
    /// The fault (if any) to inject into `shard` on retry `attempt`
    /// (0 = first try). Pure: same arguments, same answer.
    pub fn decide(&self, shard: u64, attempt: u32) -> Option<ExecFault> {
        match *self {
            ShardChaos::Off => None,
            ShardChaos::PanicOn { shard: s, attempts } => {
                (shard == s && attempt < attempts).then_some(ExecFault::Panic)
            }
            ShardChaos::StallOn { shard: s, ms, attempts } => {
                (shard == s && attempt < attempts).then_some(ExecFault::Stall { ms })
            }
            ShardChaos::Seeded {
                seed,
                panic_permille,
                stall_permille,
                stall_ms,
            } => {
                let r = (roll(&[seed, shard, attempt as u64]) % 1000) as u32;
                if r < panic_permille {
                    Some(ExecFault::Panic)
                } else if r < panic_permille.saturating_add(stall_permille) {
                    Some(ExecFault::Stall { ms: stall_ms })
                } else {
                    None
                }
            }
        }
    }
}

/// Per-seam fault rates, in permille (0 = never, 1000 = always).
///
/// At each seam the categories are evaluated in declaration order
/// against a single roll, so their permilles partition `[0, 1000)`;
/// sums past 1000 saturate (earlier categories swallow later ones).
/// The default is all-zero: a schedule with a default config injects
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ChaosConfig {
    /// Checkpoint/final write fails outright (`EIO`/`ENOSPC`).
    pub write_error_permille: u32,
    /// Checkpoint/final write is torn (prefix lands, caller errors).
    pub write_torn_permille: u32,
    /// Checkpoint/final write silently flips one bit.
    pub write_bitflip_permille: u32,
    /// Checkpoint read fails outright.
    pub read_error_permille: u32,
    /// Checkpoint read returns silently corrupted bytes.
    pub read_bitflip_permille: u32,
    /// Event-log line write fails outright.
    pub event_error_permille: u32,
    /// Event-log line write is torn mid-line.
    pub event_torn_permille: u32,
    /// Worker shard panics mid-shard.
    pub shard_panic_permille: u32,
    /// Worker shard stalls mid-shard (for watchdog testing).
    pub shard_stall_permille: u32,
    /// Stall duration in milliseconds when a shard stall fires.
    pub stall_ms: u64,
    /// Accepting a serve connection fails (the connection is dropped
    /// before any frame is read).
    pub accept_error_permille: u32,
    /// Reading a request frame fails outright (connection closed).
    pub socket_read_error_permille: u32,
    /// Reading a request frame is torn: only a prefix of the line
    /// arrives, which must parse as a malformed frame, never crash.
    pub socket_read_torn_permille: u32,
    /// Writing a response frame fails outright (response dropped).
    pub socket_write_error_permille: u32,
    /// Writing a response frame is torn mid-line.
    pub socket_write_torn_permille: u32,
    /// Programming a replacement engine set fails verification and
    /// must be retried seed-stably.
    pub swap_error_permille: u32,
    /// Spawning a grid worker process fails outright (the attempt is
    /// charged against the cell's retry budget).
    pub spawn_error_permille: u32,
    /// Grid lease write fails outright (`EIO`/`ENOSPC`).
    pub lease_write_error_permille: u32,
    /// Grid lease write is torn (prefix lands at the final path; the
    /// CRC envelope must catch it on read-back).
    pub lease_write_torn_permille: u32,
    /// Grid lease write silently flips one bit (CRC-visible only).
    pub lease_write_bitflip_permille: u32,
    /// Grid lease read fails outright.
    pub lease_read_error_permille: u32,
    /// Grid lease read returns silently corrupted bytes.
    pub lease_read_bitflip_permille: u32,
}

impl ChaosConfig {
    /// The rate set behind the CLI's bare `--chaos-seed`: every seam
    /// faulted often enough that a short campaign exercises each
    /// recovery path, but rarely enough that bounded retries converge.
    pub fn standard() -> Self {
        ChaosConfig {
            write_error_permille: 120,
            write_torn_permille: 80,
            write_bitflip_permille: 80,
            read_error_permille: 0,
            read_bitflip_permille: 60,
            event_error_permille: 40,
            event_torn_permille: 40,
            shard_panic_permille: 100,
            shard_stall_permille: 0,
            stall_ms: 0,
            accept_error_permille: 60,
            socket_read_error_permille: 50,
            socket_read_torn_permille: 80,
            socket_write_error_permille: 50,
            socket_write_torn_permille: 80,
            swap_error_permille: 250,
            spawn_error_permille: 80,
            lease_write_error_permille: 100,
            lease_write_torn_permille: 80,
            lease_write_bitflip_permille: 60,
            lease_read_error_permille: 60,
            lease_read_bitflip_permille: 60,
        }
    }
}

/// A seeded fault schedule: the single source of truth for which
/// operation fails, how, in a chaos run.
///
/// Decisions are pure functions of `(seed, seam, index)` — the
/// schedule holds no mutable state, so clones and replays agree with
/// the original bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChaosSchedule {
    seed: u64,
    config: ChaosConfig,
}

impl ChaosSchedule {
    /// A schedule drawing faults at `config`'s rates from `seed`.
    pub fn new(seed: u64, config: ChaosConfig) -> Self {
        ChaosSchedule { seed, config }
    }

    /// The schedule behind the CLI's `--chaos-seed` flag:
    /// [`ChaosConfig::standard`] rates at the given seed.
    pub fn standard(seed: u64) -> Self {
        ChaosSchedule::new(seed, ChaosConfig::standard())
    }

    /// The seed this schedule was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault rates this schedule draws from.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// The fault (if any) for the `index`-th operation at `seam`.
    ///
    /// `index` is the caller's operation counter for that seam (e.g.
    /// "third checkpoint-write attempt this process"). Pure: replaying
    /// the same counter sequence replays the same faults.
    pub fn io_fault(&self, seam: Seam, index: u64) -> Option<IoFault> {
        let c = &self.config;
        let (error_p, torn_p, flip_p) = match seam {
            Seam::CheckpointWrite | Seam::FinalWrite => (
                c.write_error_permille,
                c.write_torn_permille,
                c.write_bitflip_permille,
            ),
            Seam::CheckpointRead => (c.read_error_permille, 0, c.read_bitflip_permille),
            Seam::EventWrite => (c.event_error_permille, c.event_torn_permille, 0),
            Seam::SocketAccept => (c.accept_error_permille, 0, 0),
            Seam::SocketRead => (
                c.socket_read_error_permille,
                c.socket_read_torn_permille,
                0,
            ),
            Seam::SocketWrite => (
                c.socket_write_error_permille,
                c.socket_write_torn_permille,
                0,
            ),
            Seam::EngineSwap => (c.swap_error_permille, 0, 0),
            Seam::ProcessSpawn => (c.spawn_error_permille, 0, 0),
            Seam::LeaseWrite => (
                c.lease_write_error_permille,
                c.lease_write_torn_permille,
                c.lease_write_bitflip_permille,
            ),
            Seam::LeaseRead => (c.lease_read_error_permille, 0, c.lease_read_bitflip_permille),
        };
        let r = (roll(&[self.seed, seam.id(), index, 0]) % 1000) as u32;
        if r < error_p {
            // Low bit of a second roll picks the flavor of hard error.
            let kind = if roll(&[self.seed, seam.id(), index, 1]) & 1 == 0 {
                IoErrorKind::Eio
            } else {
                IoErrorKind::Enospc
            };
            Some(IoFault::Error(kind))
        } else if r < error_p.saturating_add(torn_p) {
            Some(IoFault::Torn {
                roll: roll(&[self.seed, seam.id(), index, 2]),
            })
        } else if r < error_p.saturating_add(torn_p).saturating_add(flip_p) {
            Some(IoFault::BitFlip {
                roll: roll(&[self.seed, seam.id(), index, 3]),
            })
        } else {
            None
        }
    }

    /// The worker-shard injection policy for `epoch`: a
    /// [`ShardChaos::Seeded`] whose stream is derived from this
    /// schedule's seed and the epoch, at the config's shard rates.
    pub fn shard_chaos(&self, epoch: u64) -> ShardChaos {
        let c = &self.config;
        if c.shard_panic_permille == 0 && c.shard_stall_permille == 0 {
            return ShardChaos::Off;
        }
        ShardChaos::Seeded {
            seed: roll(&[self.seed, 0x5AD_C4A05, epoch]),
            panic_permille: c.shard_panic_permille,
            stall_permille: c.shard_stall_permille,
            stall_ms: c.stall_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_and_seed_dependent() {
        let a = ChaosSchedule::standard(1);
        let b = ChaosSchedule::standard(2);
        let mut diverged = false;
        for index in 0..200 {
            assert_eq!(
                a.io_fault(Seam::CheckpointWrite, index),
                a.io_fault(Seam::CheckpointWrite, index),
                "schedule is not pure at index {index}"
            );
            diverged |= a.io_fault(Seam::CheckpointWrite, index)
                != b.io_fault(Seam::CheckpointWrite, index);
        }
        assert!(diverged, "seeds 1 and 2 agreed on 200 straight decisions");
    }

    #[test]
    fn zero_config_never_faults_and_full_rate_always_does() {
        let quiet = ChaosSchedule::new(9, ChaosConfig::default());
        let loud = ChaosSchedule::new(
            9,
            ChaosConfig {
                write_error_permille: 1000,
                ..ChaosConfig::default()
            },
        );
        for index in 0..500 {
            assert_eq!(quiet.io_fault(Seam::CheckpointWrite, index), None);
            assert_eq!(quiet.io_fault(Seam::EventWrite, index), None);
            assert!(matches!(
                loud.io_fault(Seam::FinalWrite, index),
                Some(IoFault::Error(_))
            ));
        }
    }

    #[test]
    fn observed_rates_track_the_permilles() {
        let schedule = ChaosSchedule::new(
            77,
            ChaosConfig {
                write_error_permille: 100,
                write_torn_permille: 100,
                write_bitflip_permille: 100,
                ..ChaosConfig::default()
            },
        );
        let n = 20_000u64;
        let mut faults = 0usize;
        for index in 0..n {
            if schedule.io_fault(Seam::CheckpointWrite, index).is_some() {
                faults += 1;
            }
        }
        let rate = faults as f64 / n as f64;
        assert!(
            (0.25..0.35).contains(&rate),
            "expected ~30% combined fault rate, observed {rate:.3}"
        );
    }

    #[test]
    fn seams_roll_independently() {
        let schedule = ChaosSchedule::new(
            5,
            ChaosConfig {
                write_error_permille: 300,
                event_error_permille: 300,
                ..ChaosConfig::default()
            },
        );
        let mut differ = false;
        for index in 0..100 {
            differ |= schedule.io_fault(Seam::CheckpointWrite, index).is_some()
                != schedule.io_fault(Seam::EventWrite, index).is_some();
        }
        assert!(differ, "checkpoint and event seams rolled identically");
    }

    #[test]
    fn scripted_shard_chaos_pins_exact_points() {
        let once = ShardChaos::PanicOn { shard: 1, attempts: 1 };
        assert_eq!(once.decide(1, 0), Some(ExecFault::Panic));
        assert_eq!(once.decide(1, 1), None);
        assert_eq!(once.decide(0, 0), None);

        let stall = ShardChaos::StallOn { shard: 2, ms: 40, attempts: 1 };
        assert_eq!(stall.decide(2, 0), Some(ExecFault::Stall { ms: 40 }));
        assert_eq!(stall.decide(2, 1), None);

        assert_eq!(ShardChaos::Off.decide(0, 0), None);
    }

    #[test]
    fn serve_seams_fault_at_standard_rates_without_disturbing_old_seams() {
        // The serve seams (ids 5–8) key their rolls on their own seam
        // id, so introducing them must not change what any existing
        // seed injects at the campaign seams — the chaos_soak golden
        // (seed 7) depends on this.
        let before = ChaosSchedule::new(
            7,
            ChaosConfig {
                accept_error_permille: 0,
                socket_read_error_permille: 0,
                socket_read_torn_permille: 0,
                socket_write_error_permille: 0,
                socket_write_torn_permille: 0,
                swap_error_permille: 0,
                ..ChaosConfig::standard()
            },
        );
        let after = ChaosSchedule::standard(7);
        for seam in [
            Seam::CheckpointWrite,
            Seam::CheckpointRead,
            Seam::FinalWrite,
            Seam::EventWrite,
        ] {
            for index in 0..300 {
                assert_eq!(before.io_fault(seam, index), after.io_fault(seam, index));
            }
        }
        // And the serve seams do fire at their standard rates.
        for seam in [
            Seam::SocketAccept,
            Seam::SocketRead,
            Seam::SocketWrite,
            Seam::EngineSwap,
        ] {
            let faults = (0..1000).filter(|&i| after.io_fault(seam, i).is_some()).count();
            assert!(faults > 0, "{} never faulted in 1000 rolls", seam.label());
            assert!(faults < 700, "{} faulted {faults}/1000 rolls", seam.label());
        }
        // Reads and writes on sockets are error-or-torn, never silent
        // bitflips: a corrupted frame must be *visible* to the framing
        // layer, matching real TCP (checksummed) semantics.
        for index in 0..1000 {
            for seam in [Seam::SocketAccept, Seam::SocketRead, Seam::SocketWrite] {
                assert!(!matches!(
                    after.io_fault(seam, index),
                    Some(IoFault::BitFlip { .. })
                ));
            }
        }
    }

    #[test]
    fn grid_seams_fault_at_standard_rates_without_disturbing_old_seams() {
        // The grid seams (ids 9–11) key their rolls on their own seam
        // id, so introducing them must not change what any existing
        // seed injects at the campaign or serve seams — the chaos_soak
        // and serve_soak goldens (seed 7) depend on this.
        let before = ChaosSchedule::new(
            7,
            ChaosConfig {
                spawn_error_permille: 0,
                lease_write_error_permille: 0,
                lease_write_torn_permille: 0,
                lease_write_bitflip_permille: 0,
                lease_read_error_permille: 0,
                lease_read_bitflip_permille: 0,
                ..ChaosConfig::standard()
            },
        );
        let after = ChaosSchedule::standard(7);
        for seam in [
            Seam::CheckpointWrite,
            Seam::CheckpointRead,
            Seam::FinalWrite,
            Seam::EventWrite,
            Seam::SocketAccept,
            Seam::SocketRead,
            Seam::SocketWrite,
            Seam::EngineSwap,
        ] {
            for index in 0..300 {
                assert_eq!(before.io_fault(seam, index), after.io_fault(seam, index));
            }
        }
        // And the grid seams fire at their standard rates: often enough
        // to exercise every recovery path, rarely enough that bounded
        // retries converge.
        for seam in [Seam::ProcessSpawn, Seam::LeaseWrite, Seam::LeaseRead] {
            let faults = (0..1000).filter(|&i| after.io_fault(seam, i).is_some()).count();
            assert!(faults > 0, "{} never faulted in 1000 rolls", seam.label());
            assert!(faults < 700, "{} faulted {faults}/1000 rolls", seam.label());
        }
        // Spawn failures are hard errors only: there is no meaningful
        // torn or silently-corrupt fork/exec.
        for index in 0..1000 {
            assert!(matches!(
                after.io_fault(Seam::ProcessSpawn, index),
                None | Some(IoFault::Error(_))
            ));
        }
    }

    #[test]
    fn seeded_shard_chaos_rerolls_on_retry() {
        let policy = ShardChaos::Seeded {
            seed: 31,
            panic_permille: 500,
            stall_permille: 0,
            stall_ms: 0,
        };
        // At 50% panic rate, some shard must panic on attempt 0 and
        // pass on attempt 1 within a small window — the property the
        // retry loop relies on to converge.
        let recovered = (0..64).any(|s| {
            policy.decide(s, 0) == Some(ExecFault::Panic) && policy.decide(s, 1).is_none()
        });
        assert!(recovered, "no shard recovered on retry in 64 tries");
        // And the per-epoch streams differ.
        let sched = ChaosSchedule::new(
            13,
            ChaosConfig {
                shard_panic_permille: 400,
                ..ChaosConfig::default()
            },
        );
        assert_ne!(sched.shard_chaos(0), sched.shard_chaos(1));
        assert_eq!(sched.shard_chaos(3), sched.shard_chaos(3));
    }
}
