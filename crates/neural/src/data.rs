//! Procedural datasets.
//!
//! The environment has no access to MNIST or ILSVRC-2012 downloads, so
//! the workloads are *synthetic stand-ins with the same shape* (see
//! DESIGN.md §3):
//!
//! - [`digits`] — 28×28 grayscale images of ten stroke-rendered digit
//!   classes with random affine jitter and pixel noise. Table II's
//!   networks train to the paper's software-baseline regime (~1–2 %
//!   misclassification), so the accuracy *deltas* under analog noise —
//!   the quantity the paper reports — are preserved.
//! - [`shapes`] — small RGB images of shape × texture combinations with
//!   tunable difficulty, standing in for ILSVRC in the AlexNet-proxy
//!   experiment (Table III), where the software baseline itself sits
//!   near 43 % top-1 misclassification.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rand_chacha::rand_core::SeedableRng;

use crate::Tensor;

/// A labeled image dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Images, `[n, channels, height, width]`.
    pub images: Tensor,
    /// One class label per image.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Flat pixel slice of image `i`.
    pub fn image(&self, i: usize) -> &[f32] {
        let per = self.images.len() / self.len();
        &self.images.data()[i * per..(i + 1) * per]
    }
}

/// Seven-segment strokes per digit, as indices into [`SEGMENTS`].
const DIGIT_SEGMENTS: [&[usize]; 10] = [
    &[0, 1, 2, 3, 4, 5],    // 0
    &[1, 2],                // 1
    &[0, 1, 6, 4, 3],       // 2
    &[0, 1, 6, 2, 3],       // 3
    &[5, 6, 1, 2],          // 4
    &[0, 5, 6, 2, 3],       // 5
    &[0, 5, 6, 4, 2, 3],    // 6
    &[0, 1, 2],             // 7
    &[0, 1, 2, 3, 4, 5, 6], // 8
    &[0, 1, 2, 3, 5, 6],    // 9
];

/// Segment endpoints in glyph space (x right, y down, unit box).
const SEGMENTS: [((f32, f32), (f32, f32)); 7] = [
    ((0.25, 0.12), (0.75, 0.12)), // 0: top
    ((0.75, 0.12), (0.75, 0.50)), // 1: top right
    ((0.75, 0.50), (0.75, 0.88)), // 2: bottom right
    ((0.25, 0.88), (0.75, 0.88)), // 3: bottom
    ((0.25, 0.50), (0.25, 0.88)), // 4: bottom left
    ((0.25, 0.12), (0.25, 0.50)), // 5: top left
    ((0.25, 0.50), (0.75, 0.50)), // 6: middle
];

/// Distance from point `p` to segment `(a, b)`.
fn segment_distance(p: (f32, f32), a: (f32, f32), b: (f32, f32)) -> f32 {
    let (px, py) = p;
    let (ax, ay) = a;
    let (bx, by) = b;
    let (dx, dy) = (bx - ax, by - ay);
    let len2 = dx * dx + dy * dy;
    let t = if len2 == 0.0 {
        0.0
    } else {
        (((px - ax) * dx + (py - ay) * dy) / len2).clamp(0.0, 1.0)
    };
    let (cx, cy) = (ax + t * dx, ay + t * dy);
    ((px - cx).powi(2) + (py - cy).powi(2)).sqrt()
}

/// Renders one jittered digit into a 28×28 buffer.
fn render_digit<R: Rng + ?Sized>(digit: usize, rng: &mut R, noise: f32) -> Vec<f32> {
    const SIZE: usize = 28;
    let angle: f32 = rng.gen_range(-0.34..0.34);
    let scale: f32 = rng.gen_range(0.70..1.18);
    let tx: f32 = rng.gen_range(-0.12..0.12);
    let ty: f32 = rng.gen_range(-0.12..0.12);
    let thickness: f32 = rng.gen_range(0.035..0.085);
    let fade_segment: usize = rng.gen_range(0..DIGIT_SEGMENTS[digit].len());
    let fade_strength: f32 = if rng.gen::<f32>() < 0.18 {
        rng.gen_range(0.40..0.85)
    } else {
        1.0
    };
    let (sin, cos) = angle.sin_cos();

    let mut img = vec![0.0f32; SIZE * SIZE];
    for y in 0..SIZE {
        for x in 0..SIZE {
            // Map pixel to glyph space through the inverse affine.
            let u = (x as f32 + 0.5) / SIZE as f32 - 0.5 - tx;
            let v = (y as f32 + 0.5) / SIZE as f32 - 0.5 - ty;
            let gu = (u * cos + v * sin) / scale + 0.5;
            let gv = (-u * sin + v * cos) / scale + 0.5;
            let mut intensity: f32 = 0.0;
            for (k, &seg) in DIGIT_SEGMENTS[digit].iter().enumerate() {
                let (a, b) = SEGMENTS[seg];
                let d = segment_distance((gu, gv), a, b);
                let mut level = (1.0 - (d / thickness)).clamp(0.0, 1.0);
                // Fade one stroke per glyph, keyed off the jitter, so
                // classes genuinely overlap (a faded-middle 8 looks like
                // a 0, a faded-top 9 like a 4, …).
                if k == fade_segment {
                    level *= fade_strength;
                }
                intensity = intensity.max(level);
            }
            let noisy = intensity + noise * (rng.gen::<f32>() - 0.5);
            img[y * SIZE + x] = noisy.clamp(0.0, 1.0);
        }
    }
    img
}

/// Generates `n` jittered digit images (the MNIST stand-in).
///
/// Labels cycle through the ten classes so every class is equally
/// represented. Deterministic for a given `(n, seed)`.
///
/// # Examples
///
/// ```
/// let data = neural::data::digits(100, 7);
/// assert_eq!(data.len(), 100);
/// assert_eq!(data.images.shape(), &[100, 1, 28, 28]);
/// assert_eq!(data.classes, 10);
/// ```
pub fn digits(n: usize, seed: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * 28 * 28);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let digit = i % 10;
        data.extend(render_digit(digit, &mut rng, 0.46));
        labels.push(digit);
    }
    Dataset {
        images: Tensor::from_vec(vec![n, 1, 28, 28], data),
        labels,
        classes: 10,
    }
}

/// Number of classes in the [`shapes`] dataset.
pub const SHAPE_CLASSES: usize = 20;

const SHAPE_SIZE: usize = 16;

/// Renders one shape-class image: 5 glyph shapes × 4 color styles.
fn render_shape<R: Rng + ?Sized>(class: usize, rng: &mut R, difficulty: f32) -> Vec<f32> {
    let shape = class % 5;
    let style = class / 5;
    let s = SHAPE_SIZE;
    let cx: f32 = rng.gen_range(0.4..0.6);
    let cy: f32 = rng.gen_range(0.4..0.6);
    let radius: f32 = rng.gen_range(0.22..0.34);
    let noise = 0.25 + 0.6 * difficulty;

    // Per-style channel weights, perturbed per image.
    let base: [[f32; 3]; 4] = [
        [1.0, 0.2, 0.2],
        [0.2, 1.0, 0.2],
        [0.2, 0.2, 1.0],
        [0.8, 0.8, 0.2],
    ];
    let jitter: f32 = difficulty * 0.4;
    let color: Vec<f32> = base[style]
        .iter()
        .map(|&c| (c + rng.gen_range(-jitter..=jitter)).clamp(0.0, 1.0))
        .collect();

    let mut img = vec![0.0f32; 3 * s * s];
    for y in 0..s {
        for x in 0..s {
            let u = (x as f32 + 0.5) / s as f32 - cx;
            let v = (y as f32 + 0.5) / s as f32 - cy;
            let inside = match shape {
                0 => (u * u + v * v).sqrt() < radius, // circle
                1 => u.abs().max(v.abs()) < radius,   // square
                2 => v > -radius && u.abs() < (radius - v) * 0.8, // triangle
                3 => u.abs() < radius * 0.35 || v.abs() < radius * 0.35, // cross
                _ => ((u * 14.0).sin() > 0.0) && u.abs().max(v.abs()) < radius, // stripes
            };
            let base_val = if inside { 1.0 } else { 0.1 };
            for ch in 0..3 {
                let val = base_val * color[ch] + noise * (rng.gen::<f32>() - 0.5);
                img[ch * s * s + y * s + x] = val.clamp(0.0, 1.0);
            }
        }
    }
    img
}

/// Generates `n` images of the 20-class shapes dataset (the ILSVRC
/// stand-in for the AlexNet-proxy experiment).
///
/// `difficulty` in `[0, 1]` scales pixel noise and color confusion;
/// higher values push the trained software baseline toward the ~40 %
/// top-1 misclassification regime of Table III.
pub fn shapes(n: usize, seed: u64, difficulty: f32) -> Dataset {
    assert!((0.0..=1.0).contains(&difficulty), "difficulty in [0, 1]");
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5AFE);
    let mut data = Vec::with_capacity(n * 3 * SHAPE_SIZE * SHAPE_SIZE);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % SHAPE_CLASSES;
        data.extend(render_shape(class, &mut rng, difficulty));
        labels.push(class);
    }
    Dataset {
        images: Tensor::from_vec(vec![n, 3, SHAPE_SIZE, SHAPE_SIZE], data),
        labels,
        classes: SHAPE_CLASSES,
    }
}

/// Shuffles a dataset in place, deterministically for a given seed.
pub fn shuffle(dataset: &mut Dataset, seed: u64) {
    let n = dataset.len();
    let per = dataset.images.len() / n;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Fisher–Yates over both images and labels.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        if i != j {
            dataset.labels.swap(i, j);
            let data = dataset.images.data_mut();
            for k in 0..per {
                data.swap(i * per + k, j * per + k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_deterministic_and_balanced() {
        let a = digits(50, 3);
        let b = digits(50, 3);
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels, b.labels);
        // Balanced classes.
        for c in 0..10 {
            assert_eq!(a.labels.iter().filter(|&&l| l == c).count(), 5);
        }
        // Different seeds differ.
        let c = digits(50, 4);
        assert_ne!(a.images, c.images);
    }

    #[test]
    fn digit_pixels_in_range() {
        let d = digits(20, 1);
        assert!(d.images.data().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn digits_have_signal() {
        // A rendered 8 must have more ink than a rendered 1.
        let d = digits(20, 9);
        let ink = |i: usize| d.image(i).iter().sum::<f32>();
        let ones: f32 = (0..20).filter(|&i| d.labels[i] == 1).map(ink).sum();
        let eights: f32 = (0..20).filter(|&i| d.labels[i] == 8).map(ink).sum();
        assert!(eights > ones * 1.2, "eights {eights} vs ones {ones}");
    }

    #[test]
    fn digits_within_class_variation() {
        let d = digits(40, 5);
        // Two 3s are similar but not identical (jitter applied).
        let threes: Vec<usize> = (0..40).filter(|&i| d.labels[i] == 3).collect();
        assert!(d.image(threes[0]) != d.image(threes[1]));
    }

    #[test]
    fn shapes_deterministic_and_ranged() {
        let a = shapes(40, 11, 0.5);
        let b = shapes(40, 11, 0.5);
        assert_eq!(a.images, b.images);
        assert_eq!(a.classes, 20);
        assert!(a.images.data().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn shapes_difficulty_raises_noise() {
        // Compare pixel variance off-shape: harder images are noisier.
        let easy = shapes(20, 2, 0.0);
        let hard = shapes(20, 2, 1.0);
        let var = |d: &Dataset| {
            let data = d.images.data();
            let mean: f32 = data.iter().sum::<f32>() / data.len() as f32;
            data.iter().map(|&x| (x - mean).powi(2)).sum::<f32>() / data.len() as f32
        };
        assert!(var(&hard) > var(&easy));
    }

    #[test]
    fn shuffle_preserves_pairs() {
        let mut d = digits(30, 8);
        let ink_label: Vec<(u32, usize)> = (0..30)
            .map(|i| ((d.image(i).iter().sum::<f32>() * 1000.0) as u32, d.labels[i]))
            .collect();
        shuffle(&mut d, 99);
        let mut after: Vec<(u32, usize)> = (0..30)
            .map(|i| ((d.image(i).iter().sum::<f32>() * 1000.0) as u32, d.labels[i]))
            .collect();
        let mut before = ink_label;
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    #[should_panic(expected = "difficulty")]
    fn shapes_difficulty_validated() {
        shapes(10, 1, 1.5);
    }
}
