//! A minimal dense tensor.

use serde::{Deserialize, Serialize};

/// A dense row-major `f32` tensor with a dynamic shape.
///
/// Supports exactly the operations the workloads of the paper need:
/// construction, element access, reshaping, and 2-D matrix products.
///
/// # Examples
///
/// ```
/// use neural::Tensor;
///
/// let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
/// let b = Tensor::from_vec(vec![3, 2], vec![1., 0., 0., 1., 1., 1.]);
/// let c = a.matmul(&b);
/// assert_eq!(c.shape(), &[2, 2]);
/// assert_eq!(c.data(), &[4., 5., 10., 11.]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: Vec<usize>) -> Tensor {
        let len = checked_len(&shape);
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Builds a tensor from raw data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Tensor {
        let len = checked_len(&shape);
        assert_eq!(data.len(), len, "data length does not match shape");
        Tensor { shape, data }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true for validated
    /// shapes).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat data slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reshapes in place (same element count).
    ///
    /// # Panics
    ///
    /// Panics if the new shape's element count differs.
    #[must_use]
    pub fn reshape(mut self, shape: Vec<usize>) -> Tensor {
        let len = checked_len(&shape);
        assert_eq!(self.data.len(), len, "reshape changes element count");
        self.shape = shape;
        self
    }

    /// 2-D element access.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the index is out of bounds.
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Mutable 2-D access.
    #[inline]
    pub fn at2_mut(&mut self, i: usize, j: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 2);
        let cols = self.shape[1];
        &mut self.data[i * cols + j]
    }

    /// Matrix product of two 2-D tensors: `[m,k] × [k,n] → [m,n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with compatible inner
    /// dimensions.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "inner dimensions differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        // i-k-j loop order: streams rhs rows, cache friendly.
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[p * n..(p + 1) * n];
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// Matrix product with the transpose of `rhs`: `[m,k] × [n,k]ᵀ → [m,n]`.
    pub fn matmul_transpose(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "inner dimensions differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let lhs_row = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let rhs_row = &rhs.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in lhs_row.iter().zip(rhs_row) {
                    acc += a * b;
                }
                out[i * n + j] = acc;
            }
        }
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// Transposed-lhs matrix product: `[k,m]ᵀ × [k,n] → [m,n]`.
    pub fn transpose_matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "rhs must be 2-D");
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "inner dimensions differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let lhs_row = &self.data[p * m..(p + 1) * m];
            let rhs_row = &rhs.data[p * n..(p + 1) * n];
            for i in 0..m {
                let a = lhs_row[i];
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// Elementwise map into a new tensor.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// The largest absolute value (0 for all-zero tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Index of the maximum element of a 1-D view of the data.
    ///
    /// # Panics
    ///
    /// Total IEEE ordering, so a NaN activation (which ranks above
    /// every number) yields a deterministic index instead of a panic —
    /// in the serving path a garbage classification is tallied as a
    /// misclassification while the service lives on. An empty tensor
    /// answers `0`.
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(i, _)| i)
    }

    /// Indices of the `k` largest elements, in descending order.
    ///
    /// # Panics
    ///
    /// Panics if any element is NaN.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.data.len()).collect();
        idx.sort_by(|&a, &b| {
            self.data[b]
                .partial_cmp(&self.data[a])
                .expect("no NaNs in activations")
        });
        idx.truncate(k);
        idx
    }
}

fn checked_len(shape: &[usize]) -> usize {
    assert!(!shape.is_empty(), "shape cannot be empty");
    assert!(
        shape.iter().all(|&d| d > 0),
        "shape cannot contain zero dimensions"
    );
    shape.iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_from_vec() {
        let z = Tensor::zeros(vec![2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_length_checked() {
        Tensor::from_vec(vec![2, 2], vec![1.0; 3]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]);
        let i = Tensor::from_vec(vec![2, 2], vec![1., 0., 0., 1.]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_transpose_agrees() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![3, 4], (0..12).map(|x| x as f32).collect());
        // bᵀ stored as [4,3]:
        let mut bt = Tensor::zeros(vec![4, 3]);
        for i in 0..3 {
            for j in 0..4 {
                *bt.at2_mut(j, i) = b.at2(i, j);
            }
        }
        assert_eq!(a.matmul(&b), a.matmul_transpose(&bt));
    }

    #[test]
    fn transpose_matmul_agrees() {
        let a = Tensor::from_vec(vec![3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![3, 4], (0..12).map(|x| x as f32).collect());
        // aᵀ·b computed directly:
        let mut at = Tensor::zeros(vec![2, 3]);
        for i in 0..3 {
            for j in 0..2 {
                *at.at2_mut(j, i) = a.at2(i, j);
            }
        }
        assert_eq!(a.transpose_matmul(&b), at.matmul(&b));
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = a.clone().reshape(vec![3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    fn argmax_and_top_k() {
        let t = Tensor::from_vec(vec![5], vec![0.1, 0.9, 0.3, 0.95, 0.2]);
        assert_eq!(t.argmax(), 3);
        assert_eq!(t.top_k(3), vec![3, 1, 2]);
    }

    #[test]
    fn map_and_max_abs() {
        let t = Tensor::from_vec(vec![3], vec![-2.0, 1.0, 0.5]);
        assert_eq!(t.max_abs(), 2.0);
        let r = t.map(|x| x.max(0.0));
        assert_eq!(r.data(), &[0.0, 1.0, 0.5]);
    }
}
