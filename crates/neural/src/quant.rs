//! 16-bit fixed-point quantization and the MVM-engine abstraction.
//!
//! The paper's accelerators store 16-bit fixed-point weights using
//! ISAAC's negative-value normalization: a signed weight `w` is written
//! as the biased non-negative integer `w_q = round(w / scale) + 2^15`,
//! and the bias term is removed digitally after the analog dot product
//! (`Σ w·x = Σ w_q·x − 2^15·Σ x`). Activations are quantized to unsigned
//! 16-bit with a per-layer dynamic scale.
//!
//! The [`MvmEngine`] trait is the seam between the network and whatever
//! executes the dot products: [`ExactEngine`] computes them exactly (the
//! fixed-point software baseline), while the `accel` crate provides the
//! noisy, AN-coded crossbar implementations.

use crate::conv::{im2col_patch_into, ConvGeometry};
use crate::layer::softmax_row;
use crate::{Conv2d, Dense, Flatten, MaxPool2, Network, Relu, Sigmoid, Tensor};

/// A network or tensor shape the quantized lowering cannot handle.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QuantError {
    /// Weight tensor was not 2-D.
    NotAMatrix {
        /// The tensor's actual rank.
        rank: usize,
    },
    /// A layer type the lowering does not understand.
    UnsupportedLayer(String),
    /// An activation layer appeared with no preceding MVM op to fold
    /// into.
    ActivationWithoutMvm,
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::NotAMatrix { rank } => {
                write!(f, "weights must be 2-D, got a rank-{rank} tensor")
            }
            QuantError::UnsupportedLayer(name) => {
                write!(f, "cannot lower layer {name:?} to quantized ops")
            }
            QuantError::ActivationWithoutMvm => {
                write!(f, "activation layer with no preceding MVM op")
            }
        }
    }
}

impl std::error::Error for QuantError {}

/// The additive bias applied to weights so they are non-negative
/// (ISAAC's negative-value normalization): `2^15`.
pub const WEIGHT_BIAS: i64 = 1 << 15;

/// Number of bits of a quantized weight or activation.
pub const QUANT_BITS: u32 = 16;

/// A weight matrix quantized to biased unsigned 16-bit fixed point.
///
/// # Examples
///
/// ```
/// use neural::{QuantizedMatrix, Tensor};
///
/// let w = Tensor::from_vec(vec![1, 2], vec![0.5, -0.5]);
/// let q = QuantizedMatrix::from_tensor(&w);
/// // +0.5 quantizes above the bias point, −0.5 below.
/// assert!(q.rows()[0][0] > 32768 && q.rows()[0][1] < 32768);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: Vec<Vec<u16>>,
    scale: f32,
}

impl QuantizedMatrix {
    /// Quantizes a `[out, in]` float matrix with a symmetric per-matrix
    /// scale.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D;
    /// [`try_from_tensor`](QuantizedMatrix::try_from_tensor) is the
    /// recoverable variant.
    pub fn from_tensor(weights: &Tensor) -> QuantizedMatrix {
        match QuantizedMatrix::try_from_tensor(weights) {
            Ok(q) => q,
            Err(e) => panic!("{e}"),
        }
    }

    /// Quantizes a `[out, in]` float matrix, reporting shape problems as
    /// a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::NotAMatrix`] when the tensor is not 2-D.
    pub fn try_from_tensor(weights: &Tensor) -> Result<QuantizedMatrix, QuantError> {
        if weights.shape().len() != 2 {
            return Err(QuantError::NotAMatrix {
                rank: weights.shape().len(),
            });
        }
        let (out, inp) = (weights.shape()[0], weights.shape()[1]);
        let max = weights.max_abs();
        let scale = if max == 0.0 {
            1.0
        } else {
            max / (WEIGHT_BIAS - 1) as f32
        };
        let rows = (0..out)
            .map(|o| {
                (0..inp)
                    .map(|i| {
                        let q = (weights.at2(o, i) / scale).round() as i64 + WEIGHT_BIAS;
                        q.clamp(0, u16::MAX as i64) as u16
                    })
                    .collect()
            })
            .collect();
        Ok(QuantizedMatrix { rows, scale })
    }

    /// The biased rows (`[out][in]`), each entry in `0..2^16`.
    pub fn rows(&self) -> &[Vec<u16>] {
        &self.rows
    }

    /// The quantization scale: `w ≈ (w_q − 2^15) · scale`.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Output dimension (rows).
    pub fn out_dim(&self) -> usize {
        self.rows.len()
    }

    /// Input dimension (columns).
    pub fn in_dim(&self) -> usize {
        self.rows.first().map_or(0, |r| r.len())
    }

    /// Dequantizes entry `(o, i)` back to float.
    pub fn dequantize(&self, o: usize, i: usize) -> f32 {
        (self.rows[o][i] as i64 - WEIGHT_BIAS) as f32 * self.scale
    }
}

/// Quantizes an activation vector to unsigned 16-bit, returning the
/// values and the scale (`a ≈ a_q · scale`).
///
/// Activations are non-negative by construction (images in `[0, 1]`,
/// ReLU/sigmoid outputs); negative values are clamped to zero.
pub fn quantize_activations(activations: &[f32]) -> (Vec<u16>, f32) {
    let mut q = Vec::new();
    let scale = quantize_activations_into(activations, &mut q);
    (q, scale)
}

/// Like [`quantize_activations`], but writes into a caller-provided
/// buffer (cleared first) and returns only the scale.
///
/// A buffer with sufficient capacity is reused without allocating; this
/// is the variant the steady-state inference path uses.
pub fn quantize_activations_into(activations: &[f32], q: &mut Vec<u16>) -> f32 {
    q.clear();
    let max = activations.iter().fold(0.0f32, |m, &a| m.max(a));
    if max == 0.0 {
        q.resize(activations.len(), 0);
        return 1.0;
    }
    let scale = max / u16::MAX as f32;
    q.extend(
        activations
            .iter()
            .map(|&a| ((a.max(0.0) / scale).round() as u32).min(u16::MAX as u32) as u16),
    );
    scale
}

/// Executes biased unsigned matrix-vector products.
///
/// Implementations return, for each output row `o`, the exact or noisy
/// value of `Σ_j w_q[o][j] · input[j]` — the quantity a crossbar's
/// shift-and-add tree produces. De-biasing and rescaling happen in the
/// digital domain ([`QuantizedNetwork::run`]).
///
/// Engines are `Send`: a built engine set can be handed from the
/// thread that programmed it to the thread that serves with it (the
/// serve loop's background re-programming relies on this).
pub trait MvmEngine: Send {
    /// Computes one matrix-vector product over quantized inputs, writing
    /// the per-row outputs into `out`.
    ///
    /// `out` is cleared and refilled with `out_dim` entries; a buffer
    /// with sufficient capacity is reused without allocating, which is
    /// the contract the steady-state inference path
    /// ([`QuantizedNetwork::run_with`]) relies on.
    fn mvm_into(&mut self, input: &[u16], out: &mut Vec<i64>);

    /// Computes one matrix-vector product, allocating a fresh output.
    fn mvm(&mut self, input: &[u16]) -> Vec<i64> {
        let mut out = Vec::new();
        self.mvm_into(input, &mut out);
        out
    }

    /// Rewinds the engine's noise stream to a fresh deterministic
    /// state derived from `seed`.
    ///
    /// Long-lived engines (the serve loop's pooled crossbars) call
    /// this before each request so a response is a pure function of
    /// the request and the engine's programmed state — not of how many
    /// requests the engine served before. Deterministic engines have
    /// no stream to rewind; the default is a no-op.
    fn reseed(&mut self, seed: u64) {
        let _ = seed;
    }

    /// Computes `batch` matrix-vector products in one pass.
    ///
    /// `inputs` holds the vectors back to back, row-major
    /// (`inputs[v · in_dim .. (v + 1) · in_dim]` is vector `v`); `out`
    /// is cleared and refilled the same way with `batch · out_dim`
    /// entries.
    ///
    /// The default implementation loops
    /// [`mvm_into`](MvmEngine::mvm_into) — correct for any engine, with
    /// one temporary allocation per call. Engines with amortizable
    /// physics (the crossbar engine's RTN snapshots and conductance
    /// sums) override it with a structure-of-arrays kernel that shares
    /// that work across the batch.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero or `inputs.len()` is not a multiple of
    /// `batch`.
    ///
    /// # Examples
    ///
    /// ```
    /// use neural::{ExactEngine, MvmEngine, QuantizedMatrix, Tensor};
    ///
    /// let w = Tensor::from_vec(vec![2, 3], vec![0.5, -0.25, 1.0, 0.0, 0.75, -1.0]);
    /// let mut engine = ExactEngine::new(&QuantizedMatrix::from_tensor(&w));
    /// // Two input vectors, back to back.
    /// let inputs: Vec<u16> = vec![1, 2, 3, 40, 50, 60];
    /// let mut out = Vec::new();
    /// engine.mvm_batch_into(&inputs, 2, &mut out);
    /// // Identical to running each vector on its own.
    /// let mut seq = engine.mvm(&inputs[..3]);
    /// seq.extend(engine.mvm(&inputs[3..]));
    /// assert_eq!(out, seq);
    /// ```
    fn mvm_batch_into(&mut self, inputs: &[u16], batch: usize, out: &mut Vec<i64>) {
        assert!(batch > 0, "batch must be at least 1");
        assert_eq!(inputs.len() % batch, 0, "inputs not divisible into batch");
        let in_dim = inputs.len() / batch;
        out.clear();
        let mut tmp = Vec::new();
        for v in 0..batch {
            self.mvm_into(&inputs[v * in_dim..(v + 1) * in_dim], &mut tmp);
            out.extend_from_slice(&tmp);
        }
    }
}

/// Builds engines for quantized matrices.
pub trait MvmEngineProvider {
    /// Instantiates an engine for `matrix` (e.g. programs crossbars).
    fn build(&self, matrix: &QuantizedMatrix) -> Box<dyn MvmEngine>;
}

/// The exact (noise-free) reference engine: fixed-point software.
#[derive(Debug, Clone)]
pub struct ExactEngine {
    rows: Vec<Vec<u16>>,
}

impl ExactEngine {
    /// Creates an exact engine over a matrix's rows.
    pub fn new(matrix: &QuantizedMatrix) -> ExactEngine {
        ExactEngine {
            rows: matrix.rows().to_vec(),
        }
    }
}

impl MvmEngine for ExactEngine {
    fn mvm_into(&mut self, input: &[u16], out: &mut Vec<i64>) {
        out.clear();
        out.extend(self.rows.iter().map(|row| {
            assert_eq!(row.len(), input.len(), "input length mismatch");
            row.iter()
                .zip(input)
                .map(|(&w, &x)| w as i64 * x as i64)
                .sum::<i64>()
        }));
    }

    fn mvm_batch_into(&mut self, inputs: &[u16], batch: usize, out: &mut Vec<i64>) {
        assert!(batch > 0, "batch must be at least 1");
        assert_eq!(inputs.len() % batch, 0, "inputs not divisible into batch");
        let in_dim = inputs.len() / batch;
        out.clear();
        for v in 0..batch {
            let input = &inputs[v * in_dim..(v + 1) * in_dim];
            out.extend(self.rows.iter().map(|row| {
                assert_eq!(row.len(), input.len(), "input length mismatch");
                row.iter()
                    .zip(input)
                    .map(|(&w, &x)| w as i64 * x as i64)
                    .sum::<i64>()
            }));
        }
    }
}

/// Provider for [`ExactEngine`]s.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactProvider;

impl MvmEngineProvider for ExactProvider {
    fn build(&self, matrix: &QuantizedMatrix) -> Box<dyn MvmEngine> {
        Box::new(ExactEngine::new(matrix))
    }
}

/// Activation applied after an MVM op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Raw logits.
    None,
    /// Rectified linear.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    fn apply(self, x: f32) -> f32 {
        match self {
            Activation::None => x,
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }
}

/// How an MVM op consumes its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MvmGeometry {
    /// A fully connected layer over the flat input.
    Dense,
    /// A convolution lowered to per-patch MVMs via im2col.
    Conv(ConvGeometry),
}

/// One op of a quantized network.
#[derive(Debug, Clone)]
pub enum QuantOp {
    /// A matrix-vector multiplication (dense or lowered convolution).
    Mvm {
        /// The quantized weight matrix.
        matrix: QuantizedMatrix,
        /// Float bias added after de-biasing and rescaling.
        bias: Vec<f32>,
        /// Activation applied to the float output.
        activation: Activation,
        /// Dense or convolutional input interpretation.
        geometry: MvmGeometry,
    },
    /// 2×2 max pooling over `[channels, h, w]`.
    MaxPool {
        /// Input channels.
        channels: usize,
        /// Input height.
        h: usize,
        /// Input width.
        w: usize,
    },
}

/// Reusable buffers for [`QuantizedNetwork::run_with`].
///
/// Holds the activation double-buffer and the per-op quantization
/// workspace, so that repeated evaluations against one scratch allocate
/// nothing once every buffer has grown to the network's high-water
/// mark. One scratch per worker thread; it carries no results between
/// calls — only capacity.
#[derive(Debug, Clone, Default)]
pub struct RunScratch {
    /// Current activations; holds the logits after the final op.
    x: Vec<f32>,
    /// Output buffer of the op being executed (swapped with `x`).
    next: Vec<f32>,
    /// Quantized activations for the current MVM.
    q: Vec<u16>,
    /// Raw engine outputs for the current MVM.
    raw: Vec<i64>,
    /// One im2col patch (convolutional ops).
    patch: Vec<f32>,
    /// Back-to-back quantized vectors for one batched MVM
    /// ([`QuantizedNetwork::run_batch_with`]).
    q_batch: Vec<u16>,
    /// Per-vector activation scales of the current batched MVM.
    scales: Vec<f32>,
    /// Per-vector quantized-activation sums (de-bias terms) of the
    /// current batched MVM.
    sums: Vec<i64>,
}

impl RunScratch {
    /// Creates an empty scratch; buffers grow on first use and are
    /// reused afterwards.
    pub fn new() -> RunScratch {
        RunScratch::default()
    }
}

/// A network lowered to quantized ops, executable on any [`MvmEngine`].
#[derive(Debug, Clone)]
pub struct QuantizedNetwork {
    ops: Vec<QuantOp>,
}

impl QuantizedNetwork {
    /// Lowers a trained float [`Network`] to quantized ops.
    ///
    /// Dense and convolution layers become [`QuantOp::Mvm`]; a following
    /// ReLU or sigmoid is folded into the op's activation; max-pool
    /// layers are copied; flatten layers vanish (the quantized runtime is
    /// shape-agnostic between ops).
    ///
    /// # Panics
    ///
    /// Panics if the network contains a layer type this lowering does
    /// not understand;
    /// [`try_from_network`](QuantizedNetwork::try_from_network) is the
    /// recoverable variant.
    pub fn from_network(network: &Network) -> QuantizedNetwork {
        match QuantizedNetwork::try_from_network(network) {
            Ok(qnet) => qnet,
            Err(e) => panic!("{e}"),
        }
    }

    /// Lowers a trained float [`Network`] to quantized ops, reporting
    /// unsupported topologies as a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedLayer`] for a layer type the
    /// lowering does not understand, and
    /// [`QuantError::ActivationWithoutMvm`] when a ReLU/sigmoid has no
    /// preceding MVM op to fold into.
    pub fn try_from_network(network: &Network) -> Result<QuantizedNetwork, QuantError> {
        let mut ops: Vec<QuantOp> = Vec::new();
        for layer in network.layers() {
            let any = layer.as_any();
            if let Some(dense) = any.downcast_ref::<Dense>() {
                ops.push(QuantOp::Mvm {
                    matrix: QuantizedMatrix::try_from_tensor(dense.weights())?,
                    bias: dense.bias().data().to_vec(),
                    activation: Activation::None,
                    geometry: MvmGeometry::Dense,
                });
            } else if let Some(conv) = any.downcast_ref::<Conv2d>() {
                ops.push(QuantOp::Mvm {
                    matrix: QuantizedMatrix::try_from_tensor(conv.weights())?,
                    bias: conv.bias().data().to_vec(),
                    activation: Activation::None,
                    geometry: MvmGeometry::Conv(conv.geometry()),
                });
            } else if any.downcast_ref::<Relu>().is_some() {
                fold_activation(&mut ops, Activation::Relu)?;
            } else if any.downcast_ref::<Sigmoid>().is_some() {
                fold_activation(&mut ops, Activation::Sigmoid)?;
            } else if let Some(pool) = any.downcast_ref::<MaxPool2>() {
                let (c, h, w) = pool_in_shape(pool);
                ops.push(QuantOp::MaxPool { channels: c, h, w });
            } else if any.downcast_ref::<Flatten>().is_some() {
                // Shape bookkeeping only; the quantized runtime is flat.
            } else {
                return Err(QuantError::UnsupportedLayer(layer.name().to_string()));
            }
        }
        Ok(QuantizedNetwork { ops })
    }

    /// The ops.
    pub fn ops(&self) -> &[QuantOp] {
        &self.ops
    }

    /// The quantized matrices, in op order — one engine must be built
    /// per entry (via an [`MvmEngineProvider`]) before calling
    /// [`run`](QuantizedNetwork::run).
    pub fn mvm_matrices(&self) -> Vec<&QuantizedMatrix> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                QuantOp::Mvm { matrix, .. } => Some(matrix),
                QuantOp::MaxPool { .. } => None,
            })
            .collect()
    }

    /// Builds one engine per MVM op.
    pub fn build_engines(&self, provider: &dyn MvmEngineProvider) -> Vec<Box<dyn MvmEngine>> {
        self.mvm_matrices()
            .into_iter()
            .map(|m| provider.build(m))
            .collect()
    }

    /// Runs one input (flat image) through the quantized network,
    /// returning float logits.
    ///
    /// `engines` must have been produced by
    /// [`build_engines`](QuantizedNetwork::build_engines) (one per MVM
    /// op, in order).
    ///
    /// # Panics
    ///
    /// Panics if `engines` does not match the MVM op count.
    pub fn run(&self, input: &[f32], engines: &mut [Box<dyn MvmEngine>]) -> Vec<f32> {
        let mut scratch = RunScratch::new();
        self.run_with(input, engines, &mut scratch);
        scratch.x
    }

    /// Runs one input through the network using `scratch` for every
    /// intermediate buffer, returning the logits as a borrow of the
    /// scratch.
    ///
    /// Identical results to [`run`](QuantizedNetwork::run); the only
    /// difference is allocation behaviour. After the buffers have grown
    /// to the network's high-water mark (one warm-up evaluation), a
    /// steady-state call performs no heap allocation at all — the
    /// contract the accelerator's Monte-Carlo workers depend on.
    pub fn run_with<'s>(
        &self,
        input: &[f32],
        engines: &mut [Box<dyn MvmEngine>],
        scratch: &'s mut RunScratch,
    ) -> &'s [f32] {
        scratch.x.clear();
        scratch.x.extend_from_slice(input);
        let mut engine_idx = 0;
        for op in &self.ops {
            match op {
                QuantOp::Mvm {
                    matrix,
                    bias,
                    activation,
                    geometry,
                } => {
                    let engine = engines
                        .get_mut(engine_idx)
                        .expect("one engine per MVM op");
                    engine_idx += 1;
                    match geometry {
                        MvmGeometry::Dense => run_dense_into(
                            matrix,
                            bias,
                            *activation,
                            &scratch.x,
                            engine,
                            &mut scratch.q,
                            &mut scratch.raw,
                            &mut scratch.next,
                        ),
                        MvmGeometry::Conv(geo) => run_conv_into(
                            matrix,
                            bias,
                            *activation,
                            geo,
                            &scratch.x,
                            engine,
                            &mut scratch.q,
                            &mut scratch.raw,
                            &mut scratch.patch,
                            &mut scratch.next,
                        ),
                    }
                    std::mem::swap(&mut scratch.x, &mut scratch.next);
                }
                QuantOp::MaxPool { channels, h, w } => {
                    run_maxpool_into(&scratch.x, *channels, *h, *w, &mut scratch.next);
                    std::mem::swap(&mut scratch.x, &mut scratch.next);
                }
            }
        }
        assert_eq!(engine_idx, engines.len(), "unused engines supplied");
        &scratch.x
    }

    /// Runs `batch` inputs through the network in one pass, returning
    /// the logits flattened back to back (`[batch · out_dim]`, same
    /// layout as the inputs).
    ///
    /// Dense ops quantize every example and submit one batched MVM
    /// ([`MvmEngine::mvm_batch_into`]), so an engine with amortizable
    /// per-call setup pays it once per batch instead of once per
    /// example; convolution ops batch across the im2col patches of each
    /// example (already their natural batch). Pooling and de-biasing
    /// are per-example digital work, unchanged.
    ///
    /// For the exact engine the result equals `batch` separate
    /// [`run_with`](QuantizedNetwork::run_with) calls; for stochastic
    /// engines the estimator is the same but the noise draws differ
    /// (one shared RTN snapshot per batch), exactly like changing the
    /// thread count changes draw interleaving.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero, `inputs.len()` is not `batch` whole
    /// examples, or `engines` does not match the MVM op count.
    pub fn run_batch_with<'s>(
        &self,
        inputs: &[f32],
        batch: usize,
        engines: &mut [Box<dyn MvmEngine>],
        scratch: &'s mut RunScratch,
    ) -> &'s [f32] {
        assert!(batch > 0, "batch must be at least 1");
        assert_eq!(inputs.len() % batch, 0, "inputs not divisible into batch");
        scratch.x.clear();
        scratch.x.extend_from_slice(inputs);
        let mut engine_idx = 0;
        for op in &self.ops {
            let dim = scratch.x.len() / batch;
            match op {
                QuantOp::Mvm {
                    matrix,
                    bias,
                    activation,
                    geometry,
                } => {
                    let engine = engines
                        .get_mut(engine_idx)
                        // Engines came from build_engines over this same op list, so the
                        // index cannot run past the end; same invariant as the
                        // scalar run_with.
                        .expect("one engine per MVM op");
                    engine_idx += 1;
                    match geometry {
                        MvmGeometry::Dense => run_dense_batch_into(
                            matrix, bias, *activation, &scratch.x, batch, engine,
                            &mut scratch.q, &mut scratch.q_batch, &mut scratch.scales,
                            &mut scratch.sums, &mut scratch.raw, &mut scratch.next,
                        ),
                        MvmGeometry::Conv(geo) => run_conv_batch_into(
                            matrix, bias, *activation, geo, &scratch.x, batch, engine,
                            &mut scratch.q, &mut scratch.q_batch, &mut scratch.scales,
                            &mut scratch.sums, &mut scratch.raw, &mut scratch.patch,
                            &mut scratch.next,
                        ),
                    }
                    std::mem::swap(&mut scratch.x, &mut scratch.next);
                }
                QuantOp::MaxPool { channels, h, w } => {
                    assert_eq!(dim, channels * h * w, "pool input size mismatch");
                    let out_dim = channels * (h / 2) * (w / 2);
                    scratch.next.clear();
                    scratch.next.resize(batch * out_dim, 0.0);
                    for v in 0..batch {
                        pool_example_into(
                            &scratch.x[v * dim..(v + 1) * dim],
                            *channels,
                            *h,
                            *w,
                            &mut scratch.next[v * out_dim..(v + 1) * out_dim],
                        );
                    }
                    std::mem::swap(&mut scratch.x, &mut scratch.next);
                }
            }
        }
        assert_eq!(engine_idx, engines.len(), "unused engines supplied");
        &scratch.x
    }

    /// Convenience: class prediction for one input.
    pub fn predict(&self, input: &[f32], engines: &mut [Box<dyn MvmEngine>]) -> usize {
        let logits = self.run(input, engines);
        Tensor::from_vec(vec![logits.len()], logits).argmax()
    }

    /// Class prediction for one input using `scratch` buffers —
    /// allocation-free in steady state, same result as
    /// [`predict`](QuantizedNetwork::predict).
    pub fn predict_with(
        &self,
        input: &[f32],
        engines: &mut [Box<dyn MvmEngine>],
        scratch: &mut RunScratch,
    ) -> usize {
        let logits = self.run_with(input, engines, scratch);
        // Same tie-breaking as `Tensor::argmax` (`max_by` keeps the last
        // maximal element).
        let mut best = 0usize;
        for (i, &v) in logits.iter().enumerate() {
            if v >= logits[best] {
                best = i;
            }
        }
        best
    }

    /// Convenience: softmax probabilities for one input.
    pub fn probabilities(&self, input: &[f32], engines: &mut [Box<dyn MvmEngine>]) -> Vec<f32> {
        softmax_row(&self.run(input, engines))
    }
}

fn fold_activation(ops: &mut [QuantOp], act: Activation) -> Result<(), QuantError> {
    match ops.last_mut() {
        Some(QuantOp::Mvm { activation, .. }) => {
            *activation = act;
            Ok(())
        }
        _ => Err(QuantError::ActivationWithoutMvm),
    }
}

fn pool_in_shape(pool: &MaxPool2) -> (usize, usize, usize) {
    let (c, oh, ow) = pool.out_shape();
    (c, oh * 2, ow * 2)
}

#[allow(clippy::too_many_arguments)] // private helper: explicit split borrows of RunScratch
fn run_dense_into(
    matrix: &QuantizedMatrix,
    bias: &[f32],
    activation: Activation,
    input: &[f32],
    engine: &mut Box<dyn MvmEngine>,
    q: &mut Vec<u16>,
    raw: &mut Vec<i64>,
    out: &mut Vec<f32>,
) {
    assert_eq!(input.len(), matrix.in_dim(), "dense input size mismatch");
    let a_scale = quantize_activations_into(input, q);
    let sum_q: i64 = q.iter().map(|&v| v as i64).sum();
    engine.mvm_into(q, raw);
    out.clear();
    out.extend(raw.iter().enumerate().map(|(o, &r)| {
        let signed = r - WEIGHT_BIAS * sum_q;
        activation.apply(signed as f32 * matrix.scale() * a_scale + bias[o])
    }));
}

#[allow(clippy::too_many_arguments)] // private helper: explicit split borrows of RunScratch
fn run_conv_into(
    matrix: &QuantizedMatrix,
    bias: &[f32],
    activation: Activation,
    geo: &ConvGeometry,
    input: &[f32],
    engine: &mut Box<dyn MvmEngine>,
    q: &mut Vec<u16>,
    raw: &mut Vec<i64>,
    patch: &mut Vec<f32>,
    out: &mut Vec<f32>,
) {
    let (oh, ow) = geo.out_hw();
    let out_c = geo.out_channels;
    out.clear();
    out.resize(out_c * oh * ow, 0.0);
    for p in 0..oh * ow {
        im2col_patch_into(input, geo, p, patch);
        let a_scale = quantize_activations_into(patch, q);
        let sum_q: i64 = q.iter().map(|&v| v as i64).sum();
        engine.mvm_into(q, raw);
        for (c, &r) in raw.iter().enumerate() {
            let signed = r - WEIGHT_BIAS * sum_q;
            out[c * oh * ow + p] =
                activation.apply(signed as f32 * matrix.scale() * a_scale + bias[c]);
        }
    }
}

fn run_maxpool_into(input: &[f32], c: usize, h: usize, w: usize, out: &mut Vec<f32>) {
    assert_eq!(input.len(), c * h * w, "pool input size mismatch");
    out.clear();
    out.resize(c * (h / 2) * (w / 2), 0.0);
    pool_example_into(input, c, h, w, out);
}

fn pool_example_into(input: &[f32], c: usize, h: usize, w: usize, out: &mut [f32]) {
    let (oh, ow) = (h / 2, w / 2);
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let v = input[ch * h * w + (oy * 2 + dy) * w + (ox * 2 + dx)];
                        best = best.max(v);
                    }
                }
                out[ch * oh * ow + oy * ow + ox] = best;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)] // private helper: explicit split borrows of RunScratch
fn run_dense_batch_into(
    matrix: &QuantizedMatrix,
    bias: &[f32],
    activation: Activation,
    input: &[f32],
    batch: usize,
    engine: &mut Box<dyn MvmEngine>,
    q: &mut Vec<u16>,
    q_batch: &mut Vec<u16>,
    scales: &mut Vec<f32>,
    sums: &mut Vec<i64>,
    raw: &mut Vec<i64>,
    out: &mut Vec<f32>,
) {
    let in_dim = matrix.in_dim();
    let out_dim = matrix.out_dim();
    assert_eq!(input.len(), batch * in_dim, "dense input size mismatch");
    q_batch.clear();
    scales.clear();
    sums.clear();
    for v in 0..batch {
        let a_scale = quantize_activations_into(&input[v * in_dim..(v + 1) * in_dim], q);
        scales.push(a_scale);
        sums.push(q.iter().map(|&x| x as i64).sum());
        q_batch.extend_from_slice(q);
    }
    engine.mvm_batch_into(q_batch, batch, raw);
    out.clear();
    out.extend((0..batch * out_dim).map(|i| {
        let (v, o) = (i / out_dim, i % out_dim);
        let signed = raw[i] - WEIGHT_BIAS * sums[v];
        activation.apply(signed as f32 * matrix.scale() * scales[v] + bias[o])
    }));
}

#[allow(clippy::too_many_arguments)] // private helper: explicit split borrows of RunScratch
fn run_conv_batch_into(
    matrix: &QuantizedMatrix,
    bias: &[f32],
    activation: Activation,
    geo: &ConvGeometry,
    input: &[f32],
    batch: usize,
    engine: &mut Box<dyn MvmEngine>,
    q: &mut Vec<u16>,
    q_batch: &mut Vec<u16>,
    scales: &mut Vec<f32>,
    sums: &mut Vec<i64>,
    raw: &mut Vec<i64>,
    patch: &mut Vec<f32>,
    out: &mut Vec<f32>,
) {
    let (oh, ow) = geo.out_hw();
    let out_c = geo.out_channels;
    let patches = oh * ow;
    let in_dim = input.len() / batch;
    let example_out = out_c * patches;
    out.clear();
    out.resize(batch * example_out, 0.0);
    // Batch across each example's im2col patches — the convolution's
    // natural batch dimension.
    for v in 0..batch {
        let example = &input[v * in_dim..(v + 1) * in_dim];
        q_batch.clear();
        scales.clear();
        sums.clear();
        for p in 0..patches {
            im2col_patch_into(example, geo, p, patch);
            let a_scale = quantize_activations_into(patch, q);
            scales.push(a_scale);
            sums.push(q.iter().map(|&x| x as i64).sum());
            q_batch.extend_from_slice(q);
        }
        engine.mvm_batch_into(q_batch, patches, raw);
        let out_v = &mut out[v * example_out..(v + 1) * example_out];
        for p in 0..patches {
            for c in 0..out_c {
                let signed = raw[p * out_c + c] - WEIGHT_BIAS * sums[p];
                out_v[c * patches + p] =
                    activation.apply(signed as f32 * matrix.scale() * scales[p] + bias[c]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Layer;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn quantized_matrix_roundtrip_accuracy() {
        let w = Tensor::from_vec(vec![2, 3], vec![0.5, -0.25, 0.0, 1.0, -1.0, 0.75]);
        let q = QuantizedMatrix::from_tensor(&w);
        for o in 0..2 {
            for i in 0..3 {
                let err = (q.dequantize(o, i) - w.at2(o, i)).abs();
                assert!(err < 1e-4, "({o},{i}) err {err}");
            }
        }
        assert_eq!(q.out_dim(), 2);
        assert_eq!(q.in_dim(), 3);
    }

    #[test]
    fn zero_matrix_quantizes_to_bias() {
        let q = QuantizedMatrix::from_tensor(&Tensor::zeros(vec![2, 2]));
        assert!(q.rows().iter().flatten().all(|&v| v as i64 == WEIGHT_BIAS));
    }

    #[test]
    fn activation_quantization_roundtrip() {
        let acts = vec![0.0, 0.5, 1.0, 0.25];
        let (q, scale) = quantize_activations(&acts);
        for (&a, &qa) in acts.iter().zip(&q) {
            assert!((qa as f32 * scale - a).abs() < 1e-4);
        }
        let (qz, s) = quantize_activations(&[0.0, 0.0]);
        assert_eq!(qz, vec![0, 0]);
        assert_eq!(s, 1.0);
    }

    #[test]
    fn exact_engine_matches_float_dense() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut dense = Dense::new(16, 8, &mut rng);
        let input: Vec<f32> = (0..16).map(|i| (i as f32 * 0.37).sin().abs()).collect();
        let x = Tensor::from_vec(vec![1, 16], input.clone());
        let float_out = dense.forward(&x, false);

        let matrix = QuantizedMatrix::from_tensor(dense.weights());
        let mut engine: Box<dyn MvmEngine> = Box::new(ExactEngine::new(&matrix));
        let (mut q, mut raw, mut q_out) = (Vec::new(), Vec::new(), Vec::new());
        run_dense_into(
            &matrix,
            dense.bias().data(),
            Activation::None,
            &input,
            &mut engine,
            &mut q,
            &mut raw,
            &mut q_out,
        );
        for (f, q) in float_out.data().iter().zip(&q_out) {
            assert!((f - q).abs() < 2e-3, "float {f} vs quant {q}");
        }
    }

    #[test]
    fn quantized_network_matches_float_network() {
        use crate::{Flatten, Network, Relu};
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut net = Network::new(vec![
            Box::new(Flatten::new()),
            Box::new(Dense::new(12, 10, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(10, 4, &mut rng)),
        ]);
        let input: Vec<f32> = (0..12).map(|i| ((i * 7 % 5) as f32) * 0.2).collect();
        let x = Tensor::from_vec(vec![1, 12], input.clone());
        let float_logits = net.forward(&x);

        let qnet = QuantizedNetwork::from_network(&net);
        assert_eq!(qnet.mvm_matrices().len(), 2);
        let mut engines = qnet.build_engines(&ExactProvider);
        let q_logits = qnet.run(&input, &mut engines);
        for (f, q) in float_logits.data().iter().zip(&q_logits) {
            assert!((f - q).abs() < 5e-3, "float {f} vs quant {q}");
        }
        // Same argmax.
        assert_eq!(
            float_logits
                .clone()
                .reshape(vec![4])
                .argmax(),
            qnet.predict(&input, &mut engines)
        );
    }

    #[test]
    fn quantized_conv_network_matches_float() {
        use crate::conv::ConvGeometry;
        use crate::{Flatten, MaxPool2, Network, Relu};
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let geo = ConvGeometry {
            in_channels: 1,
            out_channels: 3,
            kernel: 3,
            padding: 1,
            in_hw: (8, 8),
        };
        let mut net = Network::new(vec![
            Box::new(Conv2d::new(geo, &mut rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2::new(3, 8, 8)),
            Box::new(Flatten::new()),
            Box::new(Dense::new(3 * 4 * 4, 5, &mut rng)),
        ]);
        let input: Vec<f32> = (0..64).map(|i| ((i % 9) as f32) / 9.0).collect();
        let x = Tensor::from_vec(vec![1, 1, 8, 8], input.clone());
        let float_logits = net.forward(&x);

        let qnet = QuantizedNetwork::from_network(&net);
        let mut engines = qnet.build_engines(&ExactProvider);
        let q_logits = qnet.run(&input, &mut engines);
        for (f, q) in float_logits.data().iter().zip(&q_logits) {
            assert!((f - q).abs() < 1e-2, "float {f} vs quant {q}");
        }
    }

    #[test]
    fn run_with_reused_scratch_matches_run() {
        // A conv + pool + dense network exercises every scratch buffer
        // (activation double-buffer, quantization, patch extraction).
        use crate::conv::ConvGeometry;
        use crate::{Flatten, MaxPool2, Network, Relu};
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let geo = ConvGeometry {
            in_channels: 1,
            out_channels: 2,
            kernel: 3,
            padding: 1,
            in_hw: (6, 6),
        };
        let net = Network::new(vec![
            Box::new(Conv2d::new(geo, &mut rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2::new(2, 6, 6)),
            Box::new(Flatten::new()),
            Box::new(Dense::new(2 * 3 * 3, 4, &mut rng)),
        ]);
        let input: Vec<f32> = (0..36).map(|i| ((i % 7) as f32) / 7.0).collect();
        let qnet = QuantizedNetwork::from_network(&net);
        let mut engines = qnet.build_engines(&ExactProvider);

        let reference = qnet.run(&input, &mut engines);
        let mut scratch = RunScratch::new();
        // Two evaluations against the same scratch: identical results,
        // no state leaking between calls.
        let first = qnet.run_with(&input, &mut engines, &mut scratch).to_vec();
        let second = qnet.run_with(&input, &mut engines, &mut scratch).to_vec();
        assert_eq!(first, reference);
        assert_eq!(second, reference);
        assert_eq!(
            qnet.predict_with(&input, &mut engines, &mut scratch),
            qnet.predict(&input, &mut engines)
        );
    }

    #[test]
    fn mvm_batch_default_and_exact_override_agree() {
        let w = Tensor::from_vec(vec![3, 4], (0..12).map(|i| (i as f32) * 0.1 - 0.5).collect());
        let matrix = QuantizedMatrix::from_tensor(&w);
        let mut engine = ExactEngine::new(&matrix);
        let inputs: Vec<u16> = (0..12).map(|i| (i * 997) as u16).collect();
        let mut batched = Vec::new();
        engine.mvm_batch_into(&inputs, 3, &mut batched);
        let mut seq = Vec::new();
        for v in 0..3 {
            seq.extend(engine.mvm(&inputs[v * 4..(v + 1) * 4]));
        }
        assert_eq!(batched, seq);
        assert_eq!(batched.len(), 9);
    }

    #[test]
    fn run_batch_with_matches_sequential_runs() {
        // Conv + pool + dense exercises every batched path: patch
        // batching, per-example pooling windows, dense example batching.
        use crate::conv::ConvGeometry;
        use crate::{Flatten, MaxPool2, Network, Relu};
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let geo = ConvGeometry {
            in_channels: 1,
            out_channels: 2,
            kernel: 3,
            padding: 1,
            in_hw: (6, 6),
        };
        let net = Network::new(vec![
            Box::new(Conv2d::new(geo, &mut rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2::new(2, 6, 6)),
            Box::new(Flatten::new()),
            Box::new(Dense::new(2 * 3 * 3, 4, &mut rng)),
        ]);
        let qnet = QuantizedNetwork::from_network(&net);
        let mut engines = qnet.build_engines(&ExactProvider);
        let batch = 3;
        let inputs: Vec<f32> = (0..batch * 36).map(|i| ((i % 11) as f32) / 11.0).collect();

        let mut scratch = RunScratch::new();
        let batched = qnet
            .run_batch_with(&inputs, batch, &mut engines, &mut scratch)
            .to_vec();
        assert_eq!(batched.len(), batch * 4);
        let mut seq_scratch = RunScratch::new();
        for v in 0..batch {
            let one = qnet.run_with(&inputs[v * 36..(v + 1) * 36], &mut engines, &mut seq_scratch);
            assert_eq!(&batched[v * 4..(v + 1) * 4], one, "example {v}");
        }
        // Batch of one is the degenerate case of the same path.
        let single = qnet
            .run_batch_with(&inputs[..36], 1, &mut engines, &mut scratch)
            .to_vec();
        assert_eq!(single, batched[..4]);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let net = Network::new(vec![Box::new(Dense::new(4, 3, &mut rng))]);
        let qnet = QuantizedNetwork::from_network(&net);
        let mut engines = qnet.build_engines(&ExactProvider);
        let p = qnet.probabilities(&[0.1, 0.2, 0.3, 0.4], &mut engines);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }
}
