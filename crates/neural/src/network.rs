//! Sequential networks, SGD training, and weight (de)serialization.

use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::layer::softmax_cross_entropy;
use crate::{Layer, Tensor};

/// A feed-forward network: an ordered stack of layers ending in logits.
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Network").field("layers", &names).finish()
    }
}

/// Summary of one training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean cross-entropy loss over the epoch.
    pub loss: f32,
    /// Training accuracy over the epoch.
    pub accuracy: f64,
}

impl Network {
    /// Builds a network from layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Network {
        assert!(!layers.is_empty(), "a network needs at least one layer");
        Network { layers }
    }

    /// The layers.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable layer access (e.g. for weight extraction).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Runs inference on a batch, returning logits.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, false);
        }
        x
    }

    /// One SGD step on a minibatch; returns the batch loss.
    pub fn train_batch(&mut self, input: &Tensor, labels: &[usize], lr: f32) -> f32 {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, true);
        }
        let (loss, mut grad) = softmax_cross_entropy(&x, labels);
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        for layer in &mut self.layers {
            layer.update(lr);
        }
        loss
    }

    /// One epoch of minibatch SGD over `(images, labels)`.
    ///
    /// `images` is `[n, ...]`; batches are taken in order (shuffle the
    /// dataset up front for stochasticity).
    pub fn train_epoch(
        &mut self,
        images: &Tensor,
        labels: &[usize],
        batch_size: usize,
        lr: f32,
    ) -> EpochStats {
        let n = images.shape()[0];
        assert_eq!(labels.len(), n, "one label per image");
        let per_image = images.len() / n;
        let mut total_loss = 0.0f64;
        let mut batches = 0usize;
        let mut start = 0;
        while start < n {
            let end = (start + batch_size).min(n);
            let b = end - start;
            let mut shape = images.shape().to_vec();
            shape[0] = b;
            let batch = Tensor::from_vec(
                shape,
                images.data()[start * per_image..end * per_image].to_vec(),
            );
            total_loss += self.train_batch(&batch, &labels[start..end], lr) as f64;
            batches += 1;
            start = end;
        }
        let accuracy = self.evaluate(images, labels);
        EpochStats {
            loss: (total_loss / batches.max(1) as f64) as f32,
            accuracy,
        }
    }

    /// Classification accuracy over a dataset.
    pub fn evaluate(&mut self, images: &Tensor, labels: &[usize]) -> f64 {
        let preds = self.predict(images);
        let correct = preds
            .iter()
            .zip(labels)
            .filter(|(p, l)| p == l)
            .count();
        correct as f64 / labels.len() as f64
    }

    /// Predicted class per image.
    pub fn predict(&mut self, images: &Tensor) -> Vec<usize> {
        let n = images.shape()[0];
        let per_image = images.len() / n;
        let mut preds = Vec::with_capacity(n);
        // Evaluate in modest batches to bound memory.
        let chunk = 64;
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            let b = end - start;
            let mut shape = images.shape().to_vec();
            shape[0] = b;
            let batch = Tensor::from_vec(
                shape,
                images.data()[start * per_image..end * per_image].to_vec(),
            );
            let logits = self.forward(&batch);
            let classes = logits.shape()[1];
            for i in 0..b {
                let row = Tensor::from_vec(
                    vec![classes],
                    (0..classes).map(|j| logits.at2(i, j)).collect(),
                );
                preds.push(row.argmax());
            }
            start = end;
        }
        preds
    }

    /// Extracts all parameter tensors for serialization.
    pub fn export_weights(&self) -> SavedWeights {
        SavedWeights {
            tensors: self
                .layers
                .iter()
                .flat_map(|l| l.params().into_iter().cloned())
                .collect(),
        }
    }

    /// Loads parameters previously produced by
    /// [`export_weights`](Network::export_weights) on an identically
    /// shaped network.
    ///
    /// # Panics
    ///
    /// Panics if the tensor count or any shape differs.
    pub fn import_weights(&mut self, saved: &SavedWeights) {
        let mut params: Vec<&mut Tensor> = self
            .layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect();
        assert_eq!(
            params.len(),
            saved.tensors.len(),
            "weight count mismatch: network has {}, file has {}",
            params.len(),
            saved.tensors.len()
        );
        for (dst, src) in params.iter_mut().zip(&saved.tensors) {
            assert_eq!(dst.shape(), src.shape(), "weight shape mismatch");
            dst.data_mut().copy_from_slice(src.data());
        }
    }
}

/// A flat list of parameter tensors, serializable to JSON.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedWeights {
    /// Parameter tensors in network order.
    pub tensors: Vec<Tensor>,
}

impl SavedWeights {
    /// Writes the weights as JSON.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization errors.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Reads weights from JSON.
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialization errors.
    pub fn load(path: &Path) -> std::io::Result<SavedWeights> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Relu};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn toy_network(rng: &mut ChaCha8Rng) -> Network {
        Network::new(vec![
            Box::new(Dense::new(4, 16, rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(16, 3, rng)),
        ])
    }

    /// A linearly separable 3-class toy problem.
    fn toy_data() -> (Tensor, Vec<usize>) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let class = i % 3;
            let jitter = (i as f32 * 0.77).sin() * 0.1;
            let mut row = vec![jitter; 4];
            row[class] += 1.0;
            data.extend(row);
            labels.push(class);
        }
        (Tensor::from_vec(vec![60, 4], data), labels)
    }

    #[test]
    fn training_reaches_high_accuracy() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut net = toy_network(&mut rng);
        let (x, y) = toy_data();
        let mut stats = EpochStats {
            loss: f32::INFINITY,
            accuracy: 0.0,
        };
        for _ in 0..30 {
            stats = net.train_epoch(&x, &y, 16, 0.2);
        }
        assert!(stats.accuracy > 0.95, "accuracy {}", stats.accuracy);
        assert!(stats.loss < 0.3, "loss {}", stats.loss);
    }

    #[test]
    fn predict_matches_evaluate() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut net = toy_network(&mut rng);
        let (x, y) = toy_data();
        for _ in 0..20 {
            net.train_epoch(&x, &y, 16, 0.2);
        }
        let preds = net.predict(&x);
        let acc = preds.iter().zip(&y).filter(|(p, l)| p == l).count() as f64 / y.len() as f64;
        assert!((acc - net.evaluate(&x, &y)).abs() < 1e-12);
    }

    #[test]
    fn weight_roundtrip_preserves_outputs() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut net = toy_network(&mut rng);
        let (x, y) = toy_data();
        net.train_epoch(&x, &y, 16, 0.2);
        let saved = net.export_weights();
        let before = net.forward(&x);

        let mut rng2 = ChaCha8Rng::seed_from_u64(99);
        let mut net2 = toy_network(&mut rng2);
        net2.import_weights(&saved);
        let after = net2.forward(&x);
        assert_eq!(before, after);
    }

    #[test]
    fn weight_file_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let net = toy_network(&mut rng);
        let saved = net.export_weights();
        let dir = std::env::temp_dir().join("reram_ecc_test_weights");
        let path = dir.join("toy.json");
        saved.save(&path).unwrap();
        let loaded = SavedWeights::load(&path).unwrap();
        assert_eq!(saved.tensors.len(), loaded.tensors.len());
        assert_eq!(saved.tensors[0], loaded.tensors[0]);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn import_rejects_wrong_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut net = toy_network(&mut rng);
        let saved = SavedWeights {
            tensors: vec![Tensor::zeros(vec![2, 2])],
        };
        net.import_weights(&saved);
    }

    #[test]
    fn debug_lists_layers() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let net = toy_network(&mut rng);
        let text = format!("{net:?}");
        assert!(text.contains("dense") && text.contains("relu"));
    }
}
