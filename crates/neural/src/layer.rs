//! Layers: the `Layer` trait, dense layers and activations.

use std::any::Any;

use rand::Rng;

use crate::Tensor;

/// A trainable network layer.
///
/// Layers are stateful: `forward` caches whatever `backward` needs, and
/// `backward` both returns the gradient with respect to the input and
/// accumulates parameter gradients that `update` applies.
pub trait Layer {
    /// Computes the layer output for a `[batch, ...]` input.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Propagates the output gradient, returning the input gradient.
    ///
    /// # Panics
    ///
    /// Panics if no `forward(…, train: true)` call preceded it — the
    /// cached activations it differentiates through would be missing.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Applies accumulated gradients with learning rate `lr` and clears
    /// them. Layers without parameters do nothing.
    fn update(&mut self, _lr: f32) {}

    /// A short human-readable layer name.
    fn name(&self) -> &'static str;

    /// The layer's parameter tensors (weights then bias), if any, for
    /// serialization and quantization.
    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Mutable parameter tensors, in the same order as
    /// [`params`](Layer::params).
    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    /// The layer as [`Any`], for downcasting during quantized lowering.
    fn as_any(&self) -> &dyn Any;
}

/// A fully connected layer: `y = x·Wᵀ + b`.
///
/// Weights are stored `[out, in]` — one row per output neuron, which is
/// also the logical-row layout the memristive accelerator maps onto
/// crossbar arrays.
#[derive(Debug, Clone)]
pub struct Dense {
    weights: Tensor,
    bias: Tensor,
    grad_w: Tensor,
    grad_b: Tensor,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-initialized weights.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Dense {
        let scale = (2.0 / in_dim as f32).sqrt();
        let data = (0..in_dim * out_dim)
            .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
            .collect();
        Dense {
            weights: Tensor::from_vec(vec![out_dim, in_dim], data),
            bias: Tensor::zeros(vec![out_dim]),
            grad_w: Tensor::zeros(vec![out_dim, in_dim]),
            grad_b: Tensor::zeros(vec![out_dim]),
            cached_input: None,
        }
    }

    /// The weight matrix `[out, in]`.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// The bias vector `[out]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weights.shape()[0]
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weights.shape()[1]
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let batch = input.shape()[0];
        let flat = input.clone().reshape(vec![batch, self.in_dim()]);
        let mut out = flat.matmul_transpose(&self.weights);
        for i in 0..batch {
            for (j, &b) in self.bias.data().iter().enumerate() {
                *out.at2_mut(i, j) += b;
            }
        }
        if train {
            self.cached_input = Some(flat);
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward requires a training forward pass");
        // dW = grad_outᵀ · input; db = Σ grad_out; dx = grad_out · W.
        let gw = grad_out.transpose_matmul(input);
        for (g, &v) in self.grad_w.data_mut().iter_mut().zip(gw.data()) {
            *g += v;
        }
        let batch = grad_out.shape()[0];
        for i in 0..batch {
            for j in 0..self.out_dim() {
                self.grad_b.data_mut()[j] += grad_out.at2(i, j);
            }
        }
        grad_out.matmul(&self.weights)
    }

    fn update(&mut self, lr: f32) {
        for (w, g) in self.weights.data_mut().iter_mut().zip(self.grad_w.data_mut()) {
            *w -= lr * *g;
            *g = 0.0;
        }
        for (b, g) in self.bias.data_mut().iter_mut().zip(self.grad_b.data_mut()) {
            *b -= lr * *g;
            *g = 0.0;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn name(&self) -> &'static str {
        "dense"
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weights, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weights, &mut self.bias]
    }
}

/// The rectified linear activation.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Relu {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.mask = input.data().iter().map(|&x| x > 0.0).collect();
        }
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.len(), self.mask.len(), "mask/grad size mismatch");
        let data = grad_out
            .data()
            .iter()
            .zip(&self.mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(grad_out.shape().to_vec(), data)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// The logistic sigmoid activation.
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    cached_output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Sigmoid {
        Sigmoid::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let out = input.map(|x| 1.0 / (1.0 + (-x).exp()));
        if train {
            self.cached_output = Some(out.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let out = self
            .cached_output
            .as_ref()
            .expect("backward requires a training forward pass");
        let data = grad_out
            .data()
            .iter()
            .zip(out.data())
            .map(|(&g, &y)| g * y * (1.0 - y))
            .collect();
        Tensor::from_vec(grad_out.shape().to_vec(), data)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn name(&self) -> &'static str {
        "sigmoid"
    }
}

/// Flattens `[batch, ...]` to `[batch, features]`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Flatten {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.input_shape = input.shape().to_vec();
        }
        let batch = input.shape()[0];
        let features = input.len() / batch;
        input.clone().reshape(vec![batch, features])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone().reshape(self.input_shape.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn name(&self) -> &'static str {
        "flatten"
    }
}

/// Softmax cross-entropy loss on logits.
///
/// Returns `(mean loss, gradient w.r.t. logits)` for integer class
/// labels.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let batch = logits.shape()[0];
    let classes = logits.shape()[1];
    assert_eq!(labels.len(), batch, "one label per row");
    let mut grad = Tensor::zeros(vec![batch, classes]);
    let mut loss = 0.0f32;
    for i in 0..batch {
        let row: Vec<f32> = (0..classes).map(|j| logits.at2(i, j)).collect();
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let label = labels[i];
        assert!(label < classes, "label {label} out of range");
        loss -= (exps[label] / sum).max(1e-12).ln();
        for j in 0..classes {
            let p = exps[j] / sum;
            *grad.at2_mut(i, j) = (p - if j == label { 1.0 } else { 0.0 }) / batch as f32;
        }
    }
    (loss / batch as f32, grad)
}

/// Softmax probabilities of a logits row (inference-time helper).
pub fn softmax_row(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
    let exps: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(5)
    }

    #[test]
    fn dense_forward_matches_manual() {
        let mut rng = rng();
        let mut layer = Dense::new(3, 2, &mut rng);
        // Overwrite with known weights.
        layer.params_mut()[0]
            .data_mut()
            .copy_from_slice(&[1., 0., -1., 0.5, 0.5, 0.5]);
        layer.params_mut()[1].data_mut().copy_from_slice(&[0.0, 1.0]);
        let x = Tensor::from_vec(vec![1, 3], vec![2., 3., 4.]);
        let y = layer.forward(&x, false);
        assert_eq!(y.data(), &[2. - 4., 0.5 * 9. + 1.]);
    }

    #[test]
    fn dense_gradient_check() {
        // Numerical gradient check on a tiny layer.
        let mut rng = rng();
        let mut layer = Dense::new(4, 3, &mut rng);
        let x = Tensor::from_vec(vec![2, 4], (0..8).map(|i| i as f32 * 0.1).collect());
        let labels = vec![0usize, 2];

        let loss_of = |layer: &mut Dense, x: &Tensor| {
            let logits = layer.forward(x, true);
            softmax_cross_entropy(&logits, &labels).0
        };

        let logits = layer.forward(&x, true);
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let grad_in = layer.backward(&grad);

        // Check input gradient element (0, 1).
        let eps = 1e-3;
        let mut x_pert = x.clone();
        *x_pert.at2_mut(0, 1) += eps;
        let l_plus = loss_of(&mut layer, &x_pert);
        *x_pert.at2_mut(0, 1) -= 2.0 * eps;
        let l_minus = loss_of(&mut layer, &x_pert);
        let numeric = (l_plus - l_minus) / (2.0 * eps);
        assert!(
            (numeric - grad_in.at2(0, 1)).abs() < 1e-3,
            "numeric {numeric} vs analytic {}",
            grad_in.at2(0, 1)
        );
    }

    #[test]
    fn dense_update_reduces_loss() {
        let mut rng = rng();
        let mut layer = Dense::new(4, 3, &mut rng);
        let x = Tensor::from_vec(vec![4, 4], (0..16).map(|i| (i % 5) as f32 * 0.2).collect());
        let labels = vec![0usize, 1, 2, 0];
        let mut last = f32::INFINITY;
        for _ in 0..200 {
            let logits = layer.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            layer.backward(&grad);
            layer.update(0.5);
            last = loss;
        }
        assert!(last < 0.1, "loss after training: {last}");
    }

    #[test]
    fn relu_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![1, 4], vec![-1., 2., -3., 4.]);
        let y = relu.forward(&x, true);
        assert_eq!(y.data(), &[0., 2., 0., 4.]);
        let g = relu.backward(&Tensor::from_vec(vec![1, 4], vec![1., 1., 1., 1.]));
        assert_eq!(g.data(), &[0., 1., 0., 1.]);
    }

    #[test]
    fn sigmoid_range_and_gradient() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(vec![1, 3], vec![-10., 0., 10.]);
        let y = s.forward(&x, true);
        assert!(y.data()[0] < 0.001 && (y.data()[1] - 0.5).abs() < 1e-6 && y.data()[2] > 0.999);
        let g = s.backward(&Tensor::from_vec(vec![1, 3], vec![1., 1., 1.]));
        // Max slope at 0 is 0.25.
        assert!((g.data()[1] - 0.25).abs() < 1e-6);
        assert!(g.data()[0] < 0.01);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec(vec![2, 1, 2, 2], (0..8).map(|i| i as f32).collect());
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 4]);
        let back = f.backward(&y);
        assert_eq!(back.shape(), &[2, 1, 2, 2]);
    }

    #[test]
    fn softmax_cross_entropy_perfect_prediction() {
        let logits = Tensor::from_vec(vec![1, 3], vec![100., 0., 0.]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-6);
        assert!(grad.data()[0].abs() < 1e-6);
    }

    #[test]
    fn softmax_row_sums_to_one() {
        let p = softmax_row(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }
}
