//! The evaluated network topologies (Table II of the paper).

use rand::Rng;

use crate::conv::ConvGeometry;
use crate::{Conv2d, Dense, Flatten, MaxPool2, Network, Relu};

/// MLP1: a 3-layer perceptron with 500 and 150 hidden units
/// (LeCun et al., reference 12 of the paper), for 28×28 grayscale inputs.
pub fn mlp1<R: Rng + ?Sized>(rng: &mut R) -> Network {
    Network::new(vec![
        Box::new(Flatten::new()),
        Box::new(Dense::new(784, 500, rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(500, 150, rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(150, 10, rng)),
    ])
}

/// MLP2: a 2-layer perceptron with 800 hidden units (Simard et al.,
/// reference 16 of the paper).
pub fn mlp2<R: Rng + ?Sized>(rng: &mut R) -> Network {
    Network::new(vec![
        Box::new(Flatten::new()),
        Box::new(Dense::new(784, 800, rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(800, 10, rng)),
    ])
}

/// CNN1: the LeNet-5-style network of Table II — 6 then 16 5×5 feature
/// maps, with 120- and 84-unit fully connected layers.
pub fn cnn1<R: Rng + ?Sized>(rng: &mut R) -> Network {
    let conv1 = ConvGeometry {
        in_channels: 1,
        out_channels: 6,
        kernel: 5,
        padding: 2,
        in_hw: (28, 28),
    };
    let conv2 = ConvGeometry {
        in_channels: 6,
        out_channels: 16,
        kernel: 5,
        padding: 0,
        in_hw: (14, 14),
    };
    // 28→(pad 2, k 5)→28 →pool→14 →(k 5)→10 →pool→5.
    Network::new(vec![
        Box::new(Conv2d::new(conv1, rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2::new(6, 28, 28)),
        Box::new(Conv2d::new(conv2, rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2::new(16, 10, 10)),
        Box::new(Flatten::new()),
        Box::new(Dense::new(16 * 5 * 5, 120, rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(120, 84, rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(84, 10, rng)),
    ])
}

/// The AlexNet proxy: an 8-layer CNN (5 convolutional + 3 fully
/// connected, like AlexNet — reference 64 of the paper) scaled to the
/// 20-class shapes dataset.
///
/// The full 60M-parameter AlexNet cannot be trained or Monte-Carlo
/// simulated on CPU (the paper itself restricts AlexNet to one design
/// point for the same reason); this proxy preserves the *structure* —
/// conv layers with small receptive fields feeding wide fully connected
/// layers — which is what determines per-row occupancy and hence error
/// behaviour.
pub fn alexnet_proxy<R: Rng + ?Sized>(rng: &mut R) -> Network {
    let g = |in_c, out_c, hw| ConvGeometry {
        in_channels: in_c,
        out_channels: out_c,
        kernel: 3,
        padding: 1,
        in_hw: (hw, hw),
    };
    Network::new(vec![
        Box::new(Conv2d::new(g(3, 16, 16), rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2::new(16, 16, 16)),
        Box::new(Conv2d::new(g(16, 32, 8), rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2::new(32, 8, 8)),
        Box::new(Conv2d::new(g(32, 48, 4), rng)),
        Box::new(Relu::new()),
        Box::new(Conv2d::new(g(48, 48, 4), rng)),
        Box::new(Relu::new()),
        Box::new(Conv2d::new(g(48, 32, 4), rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2::new(32, 4, 4)),
        Box::new(Flatten::new()),
        Box::new(Dense::new(32 * 2 * 2, 256, rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(256, 128, rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(128, 20, rng)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(1)
    }

    #[test]
    fn mlp1_shapes() {
        let mut net = mlp1(&mut rng());
        let x = Tensor::zeros(vec![2, 1, 28, 28]);
        let y = net.forward(&x);
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn mlp2_shapes() {
        let mut net = mlp2(&mut rng());
        let x = Tensor::zeros(vec![1, 1, 28, 28]);
        assert_eq!(net.forward(&x).shape(), &[1, 10]);
    }

    #[test]
    fn cnn1_shapes() {
        let mut net = cnn1(&mut rng());
        let x = Tensor::zeros(vec![2, 1, 28, 28]);
        assert_eq!(net.forward(&x).shape(), &[2, 10]);
    }

    #[test]
    fn alexnet_proxy_shapes_and_depth() {
        let mut net = alexnet_proxy(&mut rng());
        let x = Tensor::zeros(vec![1, 3, 16, 16]);
        assert_eq!(net.forward(&x).shape(), &[1, 20]);
        // 5 conv + 3 fc parameterized layers.
        let parameterized = net
            .layers()
            .iter()
            .filter(|l| !l.params().is_empty())
            .count();
        assert_eq!(parameterized, 8);
    }

    #[test]
    fn models_quantize_cleanly() {
        use crate::QuantizedNetwork;
        for net in [mlp1(&mut rng()), cnn1(&mut rng()), alexnet_proxy(&mut rng())] {
            let q = QuantizedNetwork::from_network(&net);
            assert!(!q.mvm_matrices().is_empty());
        }
    }

    #[test]
    fn mlp1_learns_digits() {
        // A quick smoke check that the Table II topology trains on the
        // synthetic digits stand-in.
        let mut rng = rng();
        let mut net = mlp1(&mut rng);
        let mut train = crate::data::digits(1600, 42);
        crate::data::shuffle(&mut train, 7);
        let test = crate::data::digits(200, 43);
        for _ in 0..8 {
            net.train_epoch(&train.images, &train.labels, 32, 0.1);
        }
        let acc = net.evaluate(&test.images, &test.labels);
        assert!(acc > 0.8, "accuracy {acc}");
    }
}
