//! A minimal neural-network framework for the memristive-accelerator
//! reproduction.
//!
//! The paper trains its workloads in TensorFlow, converts the weights to
//! 16-bit fixed point, and maps them onto an analog accelerator. This
//! crate plays TensorFlow's role — and defines the quantized-execution
//! interface the accelerator implements:
//!
//! - [`Tensor`], [`Layer`], [`Network`] — dense/conv/pool layers with
//!   backprop and minibatch SGD, enough to train the Table II topologies
//!   ([`models`]) on the procedural datasets ([`data`]).
//! - [`QuantizedNetwork`] — the 16-bit fixed-point lowering with ISAAC's
//!   negative-value normalization (biased weights, digital de-biasing).
//! - [`MvmEngine`] / [`MvmEngineProvider`] — the seam where dot products
//!   execute. [`ExactEngine`] is the noise-free software baseline; the
//!   `accel` crate plugs in noisy, AN-code-protected crossbars.
//!
//! # Quickstart
//!
//! ```
//! use neural::{data, models, ExactProvider, QuantizedNetwork};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let mut net = models::mlp1(&mut rng);
//! let train = data::digits(200, 1);
//! net.train_epoch(&train.images, &train.labels, 32, 0.05);
//!
//! // Lower to fixed point and run on the exact reference engine.
//! let qnet = QuantizedNetwork::from_network(&net);
//! let mut engines = qnet.build_engines(&ExactProvider);
//! let class = qnet.predict(train.image(0), &mut engines);
//! assert!(class < 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conv;
pub mod data;
mod layer;
pub mod models;
mod network;
mod quant;
mod tensor;

pub use conv::{im2col, im2col_patch_into, Conv2d, ConvGeometry, MaxPool2};
pub use layer::{softmax_cross_entropy, softmax_row, Dense, Flatten, Layer, Relu, Sigmoid};
pub use network::{EpochStats, Network, SavedWeights};
pub use quant::{
    quantize_activations, quantize_activations_into, Activation, ExactEngine, ExactProvider,
    MvmEngine, MvmEngineProvider, MvmGeometry, QuantError, QuantOp, QuantizedMatrix,
    QuantizedNetwork, RunScratch, QUANT_BITS, WEIGHT_BIAS,
};
pub use tensor::Tensor;
