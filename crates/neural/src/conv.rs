//! Convolution and pooling layers, and the im2col lowering that maps
//! convolutions onto matrix-vector multiplication (how ISAAC-class
//! accelerators execute them).

use std::any::Any;

use rand::Rng;

use crate::{Layer, Tensor};

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Zero padding on each side.
    pub padding: usize,
    /// Input height and width.
    pub in_hw: (usize, usize),
}

impl ConvGeometry {
    /// Output height and width (stride 1).
    pub fn out_hw(&self) -> (usize, usize) {
        (
            self.in_hw.0 + 2 * self.padding + 1 - self.kernel,
            self.in_hw.1 + 2 * self.padding + 1 - self.kernel,
        )
    }

    /// Number of columns of the im2col patch matrix:
    /// `in_channels · kernel²`.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Lowers one `[C, H, W]` image (flat slice) to its im2col patch matrix
/// `[out_h·out_w, C·k·k]`.
///
/// Row `p` of the result is the receptive field of output pixel `p`;
/// multiplying by the `[out_channels, C·k·k]` filter matrix computes the
/// convolution as a plain MVM.
pub fn im2col(image: &[f32], geo: &ConvGeometry) -> Tensor {
    let (h, w) = geo.in_hw;
    assert_eq!(image.len(), geo.in_channels * h * w, "image size mismatch");
    let (oh, ow) = geo.out_hw();
    let k = geo.kernel;
    let pad = geo.padding as isize;
    let mut out = Tensor::zeros(vec![oh * ow, geo.patch_len()]);
    for oy in 0..oh {
        for ox in 0..ow {
            let row = oy * ow + ox;
            for c in 0..geo.in_channels {
                for ky in 0..k {
                    for kx in 0..k {
                        let iy = oy as isize + ky as isize - pad;
                        let ix = ox as isize + kx as isize - pad;
                        let col = c * k * k + ky * k + kx;
                        let v = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            image[c * h * w + iy as usize * w + ix as usize]
                        } else {
                            0.0
                        };
                        *out.at2_mut(row, col) = v;
                    }
                }
            }
        }
    }
    out
}

/// Writes row `p` of the [`im2col`] patch matrix into `out` without
/// materialising the full matrix.
///
/// `out` is cleared and refilled with the `patch_len()` receptive-field
/// values of output pixel `p`, identical to `im2col(image, geo).at2(p, ..)`.
/// The quantized inference path extracts patches one at a time through
/// this function so that a convolution needs only one patch-sized buffer
/// rather than an `[out_h·out_w, C·k·k]` tensor per call.
///
/// # Panics
///
/// Panics if the image does not match the geometry or `p` is out of
/// range.
pub fn im2col_patch_into(image: &[f32], geo: &ConvGeometry, p: usize, out: &mut Vec<f32>) {
    let (h, w) = geo.in_hw;
    assert_eq!(image.len(), geo.in_channels * h * w, "image size mismatch");
    let (oh, ow) = geo.out_hw();
    assert!(p < oh * ow, "patch index {p} out of range");
    let k = geo.kernel;
    let pad = geo.padding as isize;
    let (oy, ox) = (p / ow, p % ow);
    out.clear();
    for c in 0..geo.in_channels {
        for ky in 0..k {
            for kx in 0..k {
                let iy = oy as isize + ky as isize - pad;
                let ix = ox as isize + kx as isize - pad;
                let v = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                    image[c * h * w + iy as usize * w + ix as usize]
                } else {
                    0.0
                };
                out.push(v);
            }
        }
    }
}

/// A stride-1 2-D convolution layer.
///
/// Both forward and backward are implemented via im2col so that training
/// exercises the exact lowering the accelerator uses at inference.
#[derive(Debug, Clone)]
pub struct Conv2d {
    geo: ConvGeometry,
    /// Filter matrix `[out_channels, in_channels·k·k]`.
    weights: Tensor,
    bias: Tensor,
    grad_w: Tensor,
    grad_b: Tensor,
    cached_patches: Vec<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with He-initialized filters.
    pub fn new<R: Rng + ?Sized>(geo: ConvGeometry, rng: &mut R) -> Conv2d {
        let fan_in = geo.patch_len();
        let scale = (2.0 / fan_in as f32).sqrt();
        let data = (0..geo.out_channels * fan_in)
            .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
            .collect();
        Conv2d {
            geo,
            weights: Tensor::from_vec(vec![geo.out_channels, fan_in], data),
            bias: Tensor::zeros(vec![geo.out_channels]),
            grad_w: Tensor::zeros(vec![geo.out_channels, fan_in]),
            grad_b: Tensor::zeros(vec![geo.out_channels]),
            cached_patches: Vec::new(),
        }
    }

    /// The geometry.
    pub fn geometry(&self) -> ConvGeometry {
        self.geo
    }

    /// The filter matrix `[out_channels, in_channels·k·k]` — the weight
    /// matrix the accelerator maps to crossbars.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// The bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let batch = input.shape()[0];
        let (h, w) = self.geo.in_hw;
        let per_image = self.geo.in_channels * h * w;
        assert_eq!(
            input.len(),
            batch * per_image,
            "input does not match conv geometry"
        );
        let (oh, ow) = self.geo.out_hw();
        let mut out = Tensor::zeros(vec![batch, self.geo.out_channels, oh, ow]);
        if train {
            self.cached_patches.clear();
        }
        for b in 0..batch {
            let image = &input.data()[b * per_image..(b + 1) * per_image];
            let patches = im2col(image, &self.geo);
            // [oh·ow, patch] × [out_c, patch]ᵀ → [oh·ow, out_c]
            let conv = patches.matmul_transpose(&self.weights);
            let out_data = out.data_mut();
            for p in 0..oh * ow {
                for c in 0..self.geo.out_channels {
                    out_data[b * self.geo.out_channels * oh * ow + c * oh * ow + p] =
                        conv.at2(p, c) + self.bias.data()[c];
                }
            }
            if train {
                self.cached_patches.push(patches);
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let batch = grad_out.shape()[0];
        let (oh, ow) = self.geo.out_hw();
        let (h, w) = self.geo.in_hw;
        let k = self.geo.kernel;
        let pad = self.geo.padding as isize;
        let per_image = self.geo.in_channels * h * w;
        let mut grad_in = Tensor::zeros(vec![batch, self.geo.in_channels, h, w]);

        for b in 0..batch {
            let patches = &self.cached_patches[b];
            // Reassemble grad_out for this image as [oh·ow, out_c].
            let mut g = Tensor::zeros(vec![oh * ow, self.geo.out_channels]);
            for c in 0..self.geo.out_channels {
                for p in 0..oh * ow {
                    *g.at2_mut(p, c) = grad_out.data()
                        [b * self.geo.out_channels * oh * ow + c * oh * ow + p];
                }
            }
            // dW += gᵀ · patches.
            let gw = g.transpose_matmul(patches);
            for (acc, &v) in self.grad_w.data_mut().iter_mut().zip(gw.data()) {
                *acc += v;
            }
            // db += column sums of g.
            for c in 0..self.geo.out_channels {
                let mut s = 0.0;
                for p in 0..oh * ow {
                    s += g.at2(p, c);
                }
                self.grad_b.data_mut()[c] += s;
            }
            // dPatches = g · W, then col2im scatter.
            let dp = g.matmul(&self.weights);
            let gi = &mut grad_in.data_mut()[b * per_image..(b + 1) * per_image];
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = oy * ow + ox;
                    for c in 0..self.geo.in_channels {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = oy as isize + ky as isize - pad;
                                let ix = ox as isize + kx as isize - pad;
                                if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                    let col = c * k * k + ky * k + kx;
                                    gi[c * h * w + iy as usize * w + ix as usize] +=
                                        dp.at2(row, col);
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn update(&mut self, lr: f32) {
        for (w, g) in self.weights.data_mut().iter_mut().zip(self.grad_w.data_mut()) {
            *w -= lr * *g;
            *g = 0.0;
        }
        for (b, g) in self.bias.data_mut().iter_mut().zip(self.grad_b.data_mut()) {
            *b -= lr * *g;
            *g = 0.0;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weights, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weights, &mut self.bias]
    }
}

/// 2×2 max pooling with stride 2.
#[derive(Debug, Clone)]
pub struct MaxPool2 {
    /// `(channels, height, width)` of the input.
    in_shape: (usize, usize, usize),
    argmax: Vec<usize>,
}

impl MaxPool2 {
    /// Creates a pool layer for `[batch, c, h, w]` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `h` or `w` is odd.
    pub fn new(channels: usize, h: usize, w: usize) -> MaxPool2 {
        assert!(h % 2 == 0 && w % 2 == 0, "pooling needs even dimensions");
        MaxPool2 {
            in_shape: (channels, h, w),
            argmax: Vec::new(),
        }
    }

    /// Output `(channels, height, width)`.
    pub fn out_shape(&self) -> (usize, usize, usize) {
        let (c, h, w) = self.in_shape;
        (c, h / 2, w / 2)
    }
}

impl Layer for MaxPool2 {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (c, h, w) = self.in_shape;
        let batch = input.shape()[0];
        assert_eq!(input.len(), batch * c * h * w, "pool input shape mismatch");
        let (oc, oh, ow) = self.out_shape();
        let mut out = Tensor::zeros(vec![batch, oc, oh, ow]);
        if train {
            self.argmax = vec![0; batch * oc * oh * ow];
        }
        for b in 0..batch {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let iy = oy * 2 + dy;
                                let ix = ox * 2 + dx;
                                let idx = ((b * c + ch) * h + iy) * w + ix;
                                let v = input.data()[idx];
                                if v > best {
                                    best = v;
                                    best_idx = idx;
                                }
                            }
                        }
                        let out_idx = ((b * oc + ch) * oh + oy) * ow + ox;
                        out.data_mut()[out_idx] = best;
                        if train {
                            self.argmax[out_idx] = best_idx;
                        }
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (c, h, w) = self.in_shape;
        let batch = grad_out.shape()[0];
        let mut grad_in = Tensor::zeros(vec![batch, c, h, w]);
        for (out_idx, &in_idx) in self.argmax.iter().enumerate() {
            grad_in.data_mut()[in_idx] += grad_out.data()[out_idx];
        }
        grad_in
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn name(&self) -> &'static str {
        "maxpool2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::softmax_cross_entropy;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(21)
    }

    fn small_geo() -> ConvGeometry {
        ConvGeometry {
            in_channels: 1,
            out_channels: 1,
            kernel: 3,
            padding: 0,
            in_hw: (4, 4),
        }
    }

    #[test]
    fn geometry_output_sizes() {
        assert_eq!(small_geo().out_hw(), (2, 2));
        let padded = ConvGeometry {
            padding: 2,
            kernel: 5,
            in_hw: (28, 28),
            in_channels: 1,
            out_channels: 6,
        };
        assert_eq!(padded.out_hw(), (28, 28));
        assert_eq!(padded.patch_len(), 25);
    }

    #[test]
    fn im2col_identity_kernel() {
        let geo = ConvGeometry {
            in_channels: 1,
            out_channels: 1,
            kernel: 1,
            padding: 0,
            in_hw: (2, 2),
        };
        let patches = im2col(&[1., 2., 3., 4.], &geo);
        assert_eq!(patches.shape(), &[4, 1]);
        assert_eq!(patches.data(), &[1., 2., 3., 4.]);
    }

    #[test]
    fn conv_known_filter() {
        let mut rng = rng();
        let mut conv = Conv2d::new(small_geo(), &mut rng);
        // Sum filter: all ones.
        conv.params_mut()[0].data_mut().fill(1.0);
        conv.params_mut()[1].data_mut().fill(0.0);
        let img: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let x = Tensor::from_vec(vec![1, 1, 4, 4], img);
        let y = conv.forward(&x, false);
        // Top-left 3×3 window sum: 0+1+2+4+5+6+8+9+10 = 45.
        assert_eq!(y.data()[0], 45.0);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
    }

    #[test]
    fn conv_padding_preserves_size() {
        let geo = ConvGeometry {
            in_channels: 1,
            out_channels: 2,
            kernel: 3,
            padding: 1,
            in_hw: (5, 5),
        };
        let mut rng = rng();
        let mut conv = Conv2d::new(geo, &mut rng);
        let x = Tensor::zeros(vec![2, 1, 5, 5]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[2, 2, 5, 5]);
    }

    #[test]
    fn conv_gradient_check() {
        let mut rng = rng();
        let geo = ConvGeometry {
            in_channels: 2,
            out_channels: 2,
            kernel: 2,
            padding: 1,
            in_hw: (3, 3),
        };
        let mut conv = Conv2d::new(geo, &mut rng);
        let x = Tensor::from_vec(
            vec![1, 2, 3, 3],
            (0..18).map(|i| (i as f32 * 0.13).sin()).collect(),
        );
        let labels = vec![1usize];
        let (oh, ow) = geo.out_hw();
        let flat = geo.out_channels * oh * ow;

        let loss_of = |conv: &mut Conv2d, x: &Tensor| {
            let y = conv.forward(x, true);
            let logits = y.reshape(vec![1, flat]);
            softmax_cross_entropy(&logits, &labels).0
        };

        let y = conv.forward(&x, true);
        let logits = y.reshape(vec![1, flat]);
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let grad = grad.reshape(vec![1, geo.out_channels, oh, ow]);
        let grad_in = conv.backward(&grad);

        let eps = 1e-2;
        for check_idx in [0usize, 7, 17] {
            let mut xp = x.clone();
            xp.data_mut()[check_idx] += eps;
            let lp = loss_of(&mut conv, &xp);
            xp.data_mut()[check_idx] -= 2.0 * eps;
            let lm = loss_of(&mut conv, &xp);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad_in.data()[check_idx];
            assert!(
                (numeric - analytic).abs() < 2e-3,
                "idx {check_idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn maxpool_forward_and_routing() {
        let mut pool = MaxPool2::new(1, 4, 4);
        let data: Vec<f32> = vec![
            1., 2., 5., 3., //
            4., 0., 1., 1., //
            7., 2., 9., 8., //
            1., 6., 2., 0.,
        ];
        let x = Tensor::from_vec(vec![1, 1, 4, 4], data);
        let y = pool.forward(&x, true);
        assert_eq!(y.data(), &[4., 5., 7., 9.]);
        let g = pool.backward(&Tensor::from_vec(vec![1, 1, 2, 2], vec![1., 1., 1., 1.]));
        // Gradient routed only to the argmax positions.
        assert_eq!(g.data()[4], 1.0); // the 4
        assert_eq!(g.data()[2], 1.0); // the 5
        assert_eq!(g.data()[8], 1.0); // the 7
        assert_eq!(g.data()[10], 1.0); // the 9
        assert_eq!(g.data().iter().sum::<f32>(), 4.0);
    }

    #[test]
    fn conv_trains_on_toy_task() {
        // Distinguish a vertical from a horizontal bar.
        let mut rng = rng();
        let geo = ConvGeometry {
            in_channels: 1,
            out_channels: 4,
            kernel: 3,
            padding: 0,
            in_hw: (6, 6),
        };
        let mut conv = Conv2d::new(geo, &mut rng);
        let (oh, ow) = geo.out_hw();
        let flat = 4 * oh * ow;
        let mut dense = crate::Dense::new(flat, 2, &mut rng);

        let mut vert = vec![0.0f32; 36];
        let mut horiz = vec![0.0f32; 36];
        for i in 0..6 {
            vert[i * 6 + 2] = 1.0;
            horiz[2 * 6 + i] = 1.0;
        }
        let x = Tensor::from_vec(vec![2, 1, 6, 6], [vert, horiz].concat());
        let labels = vec![0usize, 1];

        let mut last = f32::INFINITY;
        for _ in 0..60 {
            let h = conv.forward(&x, true);
            let hf = h.clone().reshape(vec![2, flat]);
            let logits = dense.forward(&hf, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            let gd = dense.backward(&grad);
            conv.backward(&gd.reshape(vec![2, 4, oh, ow]));
            dense.update(0.1);
            conv.update(0.1);
            last = loss;
        }
        assert!(last < 0.1, "loss {last}");
    }
}
