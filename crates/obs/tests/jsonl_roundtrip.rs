//! Property test: every JSONL line the hand-rolled event renderer
//! produces parses back — via the vendored `serde_json` stub, whose
//! number type is an IEEE double — to exactly the values that went in.
//!
//! This is the contract that keeps the event log consumable by any
//! JSON tooling: u64 fields stay below 2^53 (the producers guarantee
//! it; the generator enforces it here), f64 fields are finite and use
//! shortest-round-trip formatting, strings survive escaping.

#![cfg(feature = "enabled")]

use proptest::prelude::*;
use serde::Value;

/// `serde_json::from_str` needs a `Deserialize` target; echo the raw
/// value tree (the vendored stub's `Value` has no own impl).
struct Echo(Value);

impl serde::Deserialize for Echo {
    fn from_value(value: &Value) -> Result<Echo, String> {
        Ok(Echo(value.clone()))
    }
}

/// The event sink is process-global; serialize test bodies.
static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Field keys must be `&'static str`; draw them from a fixed pool.
const KEYS: [&str; 8] = [
    "epoch", "writes", "scheme", "flip_rate", "shard", "label", "ok", "duration_ns",
];

#[derive(Debug, Clone)]
enum FieldValue {
    U64(u64),
    F64(f64),
    Str(String),
    Bool(bool),
}

fn field_value() -> impl Strategy<Value = FieldValue> {
    // The vendored proptest has no `prop_oneof`; pick a variant by tag.
    // Char codes up to 0x250 deliberately cover the escaped range
    // (quotes, backslash, control characters) plus some non-ASCII.
    (
        0usize..4,
        0u64..(1u64 << 53),
        -1.0e12f64..1.0e12,
        collection::vec(0u32..0x250, 0..12),
    )
        .prop_map(|(tag, u, f, chars)| match tag {
            0 => FieldValue::U64(u),
            1 => FieldValue::F64(f),
            2 => FieldValue::Bool(u & 1 == 1),
            _ => FieldValue::Str(chars.into_iter().filter_map(char::from_u32).collect()),
        })
}

/// A subset of the key pool (distinct keys), each with a value.
fn entries() -> impl Strategy<Value = Vec<(usize, FieldValue)>> {
    (any::<[bool; 8]>(), collection::vec(field_value(), 8)).prop_map(|(mask, values)| {
        mask.into_iter()
            .zip(values)
            .enumerate()
            .filter(|(_, (keep, _))| *keep)
            .map(|(i, (_, v))| (i, v))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn emitted_lines_round_trip_through_double_based_json(entries in entries()) {
        let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
        obs::events::log_to_memory();
        let mut event = obs::Event::new("roundtrip_probe");
        for (key_idx, value) in &entries {
            let key = KEYS[*key_idx];
            event = match value {
                FieldValue::U64(v) => event.u64(key, *v),
                FieldValue::F64(v) => event.f64(key, *v),
                FieldValue::Str(v) => event.str(key, v),
                FieldValue::Bool(v) => event.bool(key, *v),
            };
        }
        obs::events::emit(event);
        let lines = obs::events::take_memory();
        obs::events::stop_logging();
        prop_assert_eq!(lines.len(), 1);

        let parsed = serde_json::from_str::<Echo>(&lines[0]);
        prop_assert!(parsed.is_ok(), "unparseable line: {}", &lines[0]);
        let parsed = parsed.map(|e| e.0).unwrap_or(Value::Null);
        prop_assert_eq!(
            parsed.get("v"),
            Some(&Value::Number(obs::schema::VERSION as f64))
        );
        prop_assert_eq!(
            parsed.get("type"),
            Some(&Value::String("roundtrip_probe".to_string()))
        );
        let ts_ok = match parsed.get("ts_ns") {
            Some(&Value::Number(n)) => n >= 0.0 && n.fract() == 0.0,
            _ => false,
        };
        prop_assert!(ts_ok, "bad ts_ns in {}", &lines[0]);
        for (key_idx, value) in &entries {
            let key = KEYS[*key_idx];
            let got = parsed.get(key);
            match value {
                FieldValue::U64(v) => {
                    // Exact: every u64 below 2^53 is a double.
                    prop_assert_eq!(got, Some(&Value::Number(*v as f64)), "key {}", key);
                }
                FieldValue::F64(v) => {
                    // Exact: shortest-round-trip Display.
                    prop_assert_eq!(got, Some(&Value::Number(*v)), "key {}", key);
                }
                FieldValue::Str(v) => {
                    prop_assert_eq!(got, Some(&Value::String(v.clone())), "key {}", key);
                }
                FieldValue::Bool(v) => {
                    prop_assert_eq!(got, Some(&Value::Bool(*v)), "key {}", key);
                }
            }
        }
    }
}
