//! Behavioral tests for the metric registry (enabled build) and the
//! no-op contract (disabled build).
//!
//! All enabled-mode tests mutate process-global state (the registry,
//! the event sink), so each one holds `GUARD` and starts with
//! `obs::reset()`. Tests in *other* binaries run in other processes
//! and cannot interfere.

use std::sync::Mutex;

static GUARD: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

#[test]
fn enabled_matches_build_features() {
    assert_eq!(obs::enabled(), cfg!(feature = "enabled"));
    if !obs::enabled() {
        // Disabled contract: everything is inert and snapshots render
        // to nothing.
        obs::counter!(disabled_counter).add(7);
        obs::histogram!(disabled_hist).record(3);
        let _span = obs::span!("disabled_span");
        drop(_span);
        obs::flush_thread();
        assert_eq!(obs::counter_value("disabled_counter"), 0);
        let snap = obs::snapshot();
        assert!(snap.counters.is_empty() && snap.series.is_empty());
        assert!(snap.to_prometheus_text().is_empty());
        assert_eq!(obs::now_ns(), 0);
        obs::events::log_to_memory();
        obs::events::emit(obs::Event::new("anything").u64("x", 1));
        assert!(obs::events::take_memory().is_empty());
    }
}

#[cfg(feature = "enabled")]
mod enabled {
    use super::guard;

    #[test]
    fn counters_merge_across_threads_independent_of_order() {
        let _g = guard();
        obs::reset();
        // Same name from different call sites (and different threads)
        // must land in one slot.
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for _ in 0..(t + 1) * 10 {
                        obs::counter!(merge_test_total).incr();
                    }
                    obs::counter!(merge_test_total).add(2);
                    obs::flush_thread();
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker thread");
        }
        obs::counter!(merge_test_total).add(5);
        // (10+20+30+40) + 4*2 + 5 = 113, regardless of join order.
        assert_eq!(obs::counter_value("merge_test_total"), 113);
    }

    #[test]
    fn discard_thread_drops_partial_shard() {
        let _g = guard();
        obs::reset();
        obs::counter!(discard_test).add(100);
        obs::discard_thread();
        obs::counter!(discard_test).add(3);
        assert_eq!(obs::counter_value("discard_test"), 3);
    }

    #[test]
    fn histogram_stats_are_exact_where_promised() {
        let _g = guard();
        obs::reset();
        for v in [0u64, 1, 5, 200, 7] {
            obs::histogram!(hist_exact).record(v);
        }
        let snap = obs::snapshot();
        let s = snap
            .series
            .iter()
            .find(|s| s.name == "hist_exact")
            .expect("series registered");
        assert_eq!(s.kind, obs::SeriesKind::Histogram);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 213);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 200);
        // Approximate quantiles: upper bucket bounds, within 2x.
        assert!(s.p50 >= 1 && s.p50 <= 15, "p50 = {}", s.p50);
        assert!(s.p99 >= 200 && s.p99 <= 511, "p99 = {}", s.p99);
    }

    #[test]
    fn span_guard_records_on_drop_and_nests() {
        let _g = guard();
        obs::reset();
        {
            let _outer = obs::span!("span_outer");
            let _inner = obs::span!("span_inner");
        }
        let snap = obs::snapshot();
        let outer = snap
            .series
            .iter()
            .find(|s| s.name == "span_outer")
            .expect("outer span");
        let inner = snap
            .series
            .iter()
            .find(|s| s.name == "span_inner")
            .expect("inner span");
        assert_eq!(outer.kind, obs::SeriesKind::Span);
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // Inner drops last in that block... actually declaration order
        // drops in reverse: inner first. Either way both recorded and
        // outer covers at least the inner scope start-to-start.
        assert_eq!(obs::span_total_ns("span_outer"), outer.sum);
    }

    #[test]
    fn snapshot_is_sorted_and_renders() {
        let _g = guard();
        obs::reset();
        obs::counter!(zz_last).incr();
        obs::counter!(aa_first).add(2);
        obs::histogram!(mm_mid).record(9);
        let snap = obs::snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        let text = snap.to_prometheus_text();
        assert!(text.contains("aa_first 2"));
        assert!(text.contains("zz_last 1"));
        assert!(text.contains("# TYPE mm_mid summary"));
        assert!(text.contains("mm_mid_count 1"));
        let json = snap.to_json();
        assert!(json.contains("\"name\":\"aa_first\",\"value\":2"));
        assert!(json.contains("\"kind\":\"histogram\""));
    }

    #[test]
    fn reset_zeroes_totals_but_keeps_registrations() {
        let _g = guard();
        obs::reset();
        obs::counter!(reset_test).add(11);
        assert_eq!(obs::counter_value("reset_test"), 11);
        obs::reset();
        assert_eq!(obs::counter_value("reset_test"), 0);
        obs::counter!(reset_test).add(4);
        assert_eq!(obs::counter_value("reset_test"), 4);
    }

    #[test]
    fn memory_sink_round_trip_and_escaping() {
        let _g = guard();
        obs::events::log_to_memory();
        obs::events::emit(
            obs::Event::new("shard_retry")
                .u64("shard", 2)
                .str("seed", "13")
                .u64("attempt", 1),
        );
        obs::events::emit(
            obs::Event::new("freeform")
                .str("label", "quote\" slash\\ newline\n")
                .f64("ratio", 0.25)
                .bool("ok", true),
        );
        let lines = obs::events::take_memory();
        obs::events::stop_logging();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"v\":4,\"ts_ns\":"));
        assert!(lines[0].ends_with(
            "\"type\":\"shard_retry\",\"shard\":2,\"seed\":\"13\",\"attempt\":1}"
        ));
        assert!(lines[1].contains("\"label\":\"quote\\\" slash\\\\ newline\\n\""));
        assert!(lines[1].contains("\"ratio\":0.25"));
        assert!(lines[1].contains("\"ok\":true"));
    }

    #[test]
    fn file_sink_appends_lines_immediately() {
        let _g = guard();
        let dir = std::env::temp_dir().join("obs_file_sink_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("events.jsonl");
        obs::events::log_to_file(&path).expect("create event log");
        obs::events::emit(obs::Event::new("shard_done").u64("shard", 0).u64("lo", 0).u64("hi", 8).u64("duration_ns", 42));
        // No explicit flush: lines are written through on emit.
        let contents = std::fs::read_to_string(&path).expect("read event log");
        obs::events::stop_logging();
        assert_eq!(contents.lines().count(), 1);
        assert!(contents.contains("\"type\":\"shard_done\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = obs::now_ns();
        let b = obs::now_ns();
        assert!(b >= a);
    }
}

#[test]
fn schema_spec_lookup() {
    assert_eq!(obs::schema::VERSION, 4);
    let spec = obs::schema::spec_for("campaign_epoch").expect("campaign_epoch in schema");
    assert!(spec.fields.iter().any(|f| f.name == "flip_rate"));
    assert!(spec
        .fields
        .iter()
        .any(|f| f.name == "scheme" && f.kind == obs::schema::FieldKind::Str));
    assert!(obs::schema::spec_for("no_such_event").is_none());
    // Field names are unique within each event type.
    for spec in obs::schema::EVENTS {
        for (i, f) in spec.fields.iter().enumerate() {
            assert!(
                spec.fields[i + 1..].iter().all(|g| g.name != f.name),
                "duplicate field {} in {}",
                f.name,
                spec.event_type
            );
        }
    }
}
