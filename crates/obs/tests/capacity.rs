//! Capacity-overflow diagnostics: registering more counter / series
//! names than the fixed shard arrays hold must not crash or allocate
//! in callers' hot loops — but it must be *visible*. Every refused
//! registration increments the synthetic `obs_dropped_registrations`
//! counter, which `snapshot()` and `counter_value` report alongside
//! the real metrics (plus a one-time stderr warning).
//!
//! This lives in its own test binary on purpose: it deliberately
//! exhausts the process-global registries, which would starve every
//! other obs-using test sharing the process of registration slots.

#![cfg(feature = "enabled")]

#[test]
fn overflowing_the_registries_is_counted_not_silent() {
    assert_eq!(obs::counter_value(obs::DROPPED_REGISTRATIONS_COUNTER), 0);

    // Arm the in-memory event sink before the first overflow so the
    // one-time `obs_overflow` warning event is captured below.
    obs::events::log_to_memory();

    // Fill the counter registry past its cap. Handle names must be
    // 'static, so leak them (bounded count, test process).
    let extra_counters = 3usize;
    let mut counters = Vec::new();
    for i in 0..obs::MAX_COUNTERS + extra_counters {
        let name: &'static str = Box::leak(format!("cap_counter_{i:03}").into_boxed_str());
        let counter: &'static obs::Counter = Box::leak(Box::new(obs::Counter::new(name)));
        counter.incr();
        counters.push((name, counter));
    }

    // And the series registry (histograms and spans share it).
    let extra_series = 2usize;
    for i in 0..obs::MAX_SERIES + extra_series {
        let name: &'static str = Box::leak(format!("cap_series_{i:03}").into_boxed_str());
        let hist: &'static obs::Histogram = Box::leak(Box::new(obs::Histogram::new(name)));
        hist.record(7);
    }

    let dropped = (extra_counters + extra_series) as u64;
    assert_eq!(
        obs::counter_value(obs::DROPPED_REGISTRATIONS_COUNTER),
        dropped
    );

    // The synthetic counter rides along in snapshots, sorted like any
    // other.
    let snap = obs::snapshot();
    let stat = snap
        .counters
        .iter()
        .find(|c| c.name == obs::DROPPED_REGISTRATIONS_COUNTER)
        .expect("synthetic counter in snapshot");
    assert_eq!(stat.value, dropped);
    let names: Vec<&str> = snap.counters.iter().map(|c| c.name).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);

    // Registered handles keep counting; dead handles stay usable (no
    // panic) but contribute nothing.
    let (first_name, first) = counters[0];
    let (dead_name, dead) = counters[counters.len() - 1];
    first.add(9);
    dead.add(100);
    assert_eq!(obs::counter_value(first_name), 10);
    assert_eq!(obs::counter_value(dead_name), 0);
    // Re-using a dead handle does not inflate the drop count — only
    // the refused registration does.
    assert_eq!(
        obs::counter_value(obs::DROPPED_REGISTRATIONS_COUNTER),
        dropped
    );

    // The structured twin of the stderr warning: exactly one
    // `obs_overflow` event for the whole burst of refusals, carrying
    // the first refused name, and matching its schema spec.
    let lines = obs::events::take_memory();
    let overflow: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains("\"type\":\"obs_overflow\""))
        .collect();
    assert_eq!(overflow.len(), 1, "one-time event emitted once: {lines:?}");
    let line = overflow[0];
    assert!(
        line.contains(&format!("\"what\":\"counter\",\"name\":\"cap_counter_{:03}\"", obs::MAX_COUNTERS)),
        "first refused counter named: {line}"
    );
    assert!(
        line.contains(&format!("\"cap\":{}", obs::MAX_COUNTERS)),
        "cap recorded: {line}"
    );
    let spec = obs::schema::spec_for("obs_overflow").expect("obs_overflow in schema");
    for f in spec.fields {
        assert!(line.contains(&format!("\"{}\":", f.name)), "field {} on {line}", f.name);
    }
    obs::events::stop_logging();
}
