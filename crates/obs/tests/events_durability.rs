//! Event-log durability: the JSON-safe integer bound enforced by the
//! builder, crash-tolerant resume (partial trailing line truncation),
//! and injected write faults (the chaos seam behind
//! `obs::events::set_write_fault_hook`).
//!
//! The event sink is process-global; every test holds `GUARD`.

#![cfg(feature = "enabled")]

use obs::events::{self, WriteFault, MAX_JSON_INT};

static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("obs_events_durability");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// The exact boundary value renders as an exact JSON integer — the
/// largest one an IEEE-double parser round-trips.
#[test]
fn u64_boundary_renders_exactly() {
    let _g = guard();
    events::log_to_memory();
    events::emit(obs::Event::new("bound_probe").u64("x", MAX_JSON_INT));
    let lines = events::take_memory();
    events::stop_logging();
    assert_eq!(lines.len(), 1);
    assert!(
        lines[0].contains("\"x\":9007199254740991"),
        "line: {}",
        lines[0]
    );
}

/// Debug builds refuse an out-of-bound integer at the builder — the
/// producer bug is caught at the emit site, not in a downstream
/// parser.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "exceeds 2^53-1")]
fn u64_over_bound_panics_in_debug() {
    let _ = obs::Event::new("bound_probe").u64("x", MAX_JSON_INT + 1);
}

/// Release builds saturate instead: the log line stays parseable and
/// the run is not aborted over a diagnostic.
#[cfg(not(debug_assertions))]
#[test]
fn u64_over_bound_saturates_in_release() {
    let _g = guard();
    events::log_to_memory();
    events::emit(obs::Event::new("bound_probe").u64("x", u64::MAX));
    let lines = events::take_memory();
    events::stop_logging();
    assert!(
        lines[0].contains("\"x\":9007199254740991"),
        "line: {}",
        lines[0]
    );
}

/// Resuming onto a log whose last line was torn by a crash truncates
/// the partial line and appends after the last complete one.
#[test]
fn resume_truncates_partial_trailing_line() {
    let _g = guard();
    let path = temp_path("resume.jsonl");
    let intact = "{\"v\":1,\"ts_ns\":5,\"type\":\"shard_done\",\"shard\":0}\n";
    let partial = "{\"v\":1,\"ts_ns\":9,\"type\":\"shard_d";
    std::fs::write(&path, format!("{intact}{partial}")).expect("seed log");

    events::log_to_file_resume(&path).expect("resume event log");
    events::emit(obs::Event::new("resume_probe").u64("epoch", 3));
    events::stop_logging();

    let contents = std::fs::read_to_string(&path).expect("read log");
    let lines: Vec<&str> = contents.lines().collect();
    assert_eq!(lines.len(), 2, "contents: {contents:?}");
    assert_eq!(format!("{}\n", lines[0]), intact);
    assert!(lines[1].contains("\"type\":\"resume_probe\""));
    assert!(lines[1].contains("\"epoch\":3"));
    assert!(contents.ends_with('\n'));
    let _ = std::fs::remove_file(&path);
}

/// Resume on a missing file just creates it (first run and resumed
/// run share one code path in the CLI).
#[test]
fn resume_creates_missing_file() {
    let _g = guard();
    let path = temp_path("resume_fresh.jsonl");
    let _ = std::fs::remove_file(&path);
    events::log_to_file_resume(&path).expect("resume event log");
    events::emit(obs::Event::new("fresh_probe").u64("n", 1));
    events::stop_logging();
    let contents = std::fs::read_to_string(&path).expect("read log");
    assert_eq!(contents.lines().count(), 1);
    let _ = std::fs::remove_file(&path);
}

/// Injected write faults: an `Error` drops exactly one line, a `Torn`
/// write mangles exactly one line and framing self-heals on the next
/// emit. Failures are counted, never raised.
#[test]
fn write_faults_lose_at_most_one_line_each() {
    let _g = guard();
    let path = temp_path("faults.jsonl");
    events::log_to_file(&path).expect("create event log");
    let failures_before = events::write_failures();
    // Line 0 fails outright, line 1 is torn mid-byte, the rest land.
    events::set_write_fault_hook(Some(Box::new(|index| match index {
        0 => Some(WriteFault::Error),
        1 => Some(WriteFault::Torn { roll: 12345 }),
        _ => None,
    })));
    for n in 0..4u64 {
        events::emit(obs::Event::new("fault_probe").u64("n", n));
    }
    events::set_write_fault_hook(None);
    events::stop_logging();

    assert_eq!(events::write_failures() - failures_before, 2);
    let contents = std::fs::read_to_string(&path).expect("read log");
    let lines: Vec<&str> = contents.lines().collect();
    // Line n=0 lost, n=1 torn (a strict prefix of the rendered line,
    // re-framed by the next emit), n=2 and n=3 intact: 3 physical
    // lines, and a parser skipping bad lines loses only the faulted
    // ones.
    assert_eq!(lines.len(), 3, "contents: {contents:?}");
    // Derived from the live schema version: a hard-coded prefix went
    // stale when the version bumped, and only matched by luck when the
    // torn prefix was shorter than the version digit.
    let head = format!("{{\"v\":{},", obs::schema::VERSION);
    assert!(
        lines[0].starts_with(&head) || head.starts_with(lines[0]),
        "torn line: {:?}",
        lines[0]
    );
    assert!(!lines[0].contains("\"n\":0"), "n=0 must be lost entirely");
    assert!(lines[1].ends_with("\"n\":2}"), "line: {:?}", lines[1]);
    assert!(lines[2].ends_with("\"n\":3}"), "line: {:?}", lines[2]);
    assert!(contents.ends_with('\n'));
    let _ = std::fs::remove_file(&path);
}
