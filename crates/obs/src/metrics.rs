//! Counters, histograms and spans: thread-sharded hot path, merged
//! into a global registry at join points.
//!
//! # How a metric flows
//!
//! 1. A macro (`counter!` / `histogram!` / `span!`) declares a static
//!    handle holding the name and an atomic *slot token*.
//! 2. The first `add`/`record`/`enter` on any thread registers the
//!    name in the global registry (one short lock, one possible
//!    allocation — this is why the alloc-sanitizer protocol warms the
//!    kernel up before arming the guard). Handles with the same name
//!    — even in different crates — resolve to the same slot, so they
//!    are merged by construction.
//! 3. Steady-state updates write only to a fixed-size thread-local
//!    `Cell` array: no lock, no hash, no allocation.
//! 4. At a join point the worker calls [`flush_thread`] (merge shard
//!    into the registry totals, zero the shard) or [`discard_thread`]
//!    (zero the shard without merging — the retry path after
//!    `catch_unwind`, so an abandoned partial shard never
//!    double-counts).
//!
//! Counter merging is `u64` addition and series merging is
//! count/sum/min/max/bucket addition, so totals are independent of
//! merge order and thread count: after all workers flush, the registry
//! holds exactly what a sequential run would have counted.
//!
//! # Capacity
//!
//! The shard arrays are fixed-size ([`MAX_COUNTERS`] / [`MAX_SERIES`]).
//! If registration would overflow them the handle is marked dead and
//! drops its updates — instrumentation must never turn into a crash or
//! an allocation in someone's hot loop. A dropped registration is
//! *loud*, though: the first overflow prints a one-time `stderr`
//! warning, and every overflow increments the synthetic
//! `obs_dropped_registrations` counter, which `snapshot()` and
//! [`counter_value`] report alongside the real counters. The workspace
//! uses well under half of each budget.

#[cfg(feature = "enabled")]
pub use imp::*;
#[cfg(not(feature = "enabled"))]
pub use noop::*;

#[cfg(feature = "enabled")]
mod imp {
    use crate::clock::now_ns;
    use crate::types::{CounterStat, SeriesKind, SeriesStat, Snapshot};
    use std::cell::Cell;
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Mutex, MutexGuard};

    /// Maximum distinct counter names in one process.
    pub const MAX_COUNTERS: usize = 64;
    /// Maximum distinct span/histogram names in one process.
    pub const MAX_SERIES: usize = 32;
    /// Power-of-two log buckets: index = bit length of the value,
    /// i.e. `64 - v.leading_zeros()`, so index 0 holds only zeros and
    /// index i (1..=64) holds values in `[2^(i-1), 2^i)`.
    const BUCKETS: usize = 65;

    /// Slot token meaning "not registered yet".
    const UNREGISTERED: usize = 0;
    /// Slot token meaning "registry full, updates dropped".
    const DEAD: usize = usize::MAX;

    // ---- global registry -------------------------------------------------

    struct SeriesTotal {
        kind: SeriesKind,
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: [u64; BUCKETS],
    }

    impl SeriesTotal {
        fn new(kind: SeriesKind) -> Self {
            SeriesTotal {
                kind,
                count: 0,
                sum: 0,
                min: u64::MAX,
                max: 0,
                buckets: [0; BUCKETS],
            }
        }
    }

    struct Registry {
        counter_names: Vec<&'static str>,
        counter_totals: Vec<u64>,
        series_names: Vec<&'static str>,
        series_totals: Vec<SeriesTotal>,
    }

    static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
        counter_names: Vec::new(),
        counter_totals: Vec::new(),
        series_names: Vec::new(),
        series_totals: Vec::new(),
    });

    fn lock() -> MutexGuard<'static, Registry> {
        // A panic while holding the registry lock cannot corrupt the
        // counters (plain adds), so recover from poison rather than
        // propagate it into the instrumented program.
        REGISTRY.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Name of the synthetic counter counting registrations refused
    /// because [`MAX_COUNTERS`] / [`MAX_SERIES`] was already reached.
    pub const DROPPED_REGISTRATIONS_COUNTER: &str = "obs_dropped_registrations";

    /// Registrations refused for lack of capacity, process-lifetime
    /// (a `reset()` does not clear it — the dead handles stay dead).
    static DROPPED_REGISTRATIONS: AtomicU64 = AtomicU64::new(0);
    static DROPPED_WARNED: AtomicBool = AtomicBool::new(false);

    #[cold]
    fn note_dropped_registration(what: &str, name: &str, cap: usize) {
        DROPPED_REGISTRATIONS.fetch_add(1, Ordering::Relaxed);
        if !DROPPED_WARNED.swap(true, Ordering::Relaxed) {
            eprintln!(
                "obs: {what} registry full ({cap} names); dropping \
                 {what} {name:?} and any further overflow (counted in \
                 {DROPPED_REGISTRATIONS_COUNTER}; this warning prints once)"
            );
            // One-time structured twin of the stderr warning, so log
            // consumers see the overflow without scraping stderr. The
            // registry lock is held here; the event sink uses its own
            // lock and never takes the registry's, so the order is
            // acyclic.
            crate::events::emit(
                crate::events::Event::new("obs_overflow")
                    .str("what", what)
                    .str("name", name)
                    .u64("cap", cap as u64),
            );
        }
    }

    fn dropped_registrations() -> u64 {
        DROPPED_REGISTRATIONS.load(Ordering::Relaxed)
    }

    // ---- thread-local shards ---------------------------------------------

    struct SeriesCell {
        count: Cell<u64>,
        sum: Cell<u64>,
        min: Cell<u64>,
        max: Cell<u64>,
        buckets: [Cell<u64>; BUCKETS],
    }

    impl SeriesCell {
        const fn new() -> Self {
            SeriesCell {
                count: Cell::new(0),
                sum: Cell::new(0),
                min: Cell::new(u64::MAX),
                max: Cell::new(0),
                buckets: [const { Cell::new(0) }; BUCKETS],
            }
        }

        fn clear(&self) {
            self.count.set(0);
            self.sum.set(0);
            self.min.set(u64::MAX);
            self.max.set(0);
            for b in &self.buckets {
                b.set(0);
            }
        }
    }

    thread_local! {
        // `const` initializers: no lazy-init branch that could allocate
        // and (plain-data contents) no TLS destructor registration, so
        // shard access stays allocation-free on the MVM hot path.
        static COUNTER_SHARD: [Cell<u64>; MAX_COUNTERS] =
            const { [const { Cell::new(0) }; MAX_COUNTERS] };
        static SERIES_SHARD: [SeriesCell; MAX_SERIES] =
            const { [const { SeriesCell::new() }; MAX_SERIES] };
    }

    #[inline]
    fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    fn series_record(idx: usize, v: u64) {
        SERIES_SHARD.with(|shard| {
            let s = &shard[idx];
            s.count.set(s.count.get().wrapping_add(1));
            s.sum.set(s.sum.get().wrapping_add(v));
            if v < s.min.get() {
                s.min.set(v);
            }
            if v > s.max.get() {
                s.max.set(v);
            }
            let b = &s.buckets[bucket_index(v)];
            b.set(b.get().wrapping_add(1));
        });
    }

    // ---- handles ----------------------------------------------------------

    /// A named monotonically increasing counter (see [`crate::counter!`]).
    pub struct Counter {
        name: &'static str,
        slot: AtomicUsize,
    }

    impl Counter {
        /// Creates an unregistered handle; use via the
        /// [`crate::counter!`] macro rather than directly.
        pub const fn new(name: &'static str) -> Self {
            Counter {
                name,
                slot: AtomicUsize::new(UNREGISTERED),
            }
        }

        /// Adds 1.
        #[inline]
        pub fn incr(&self) {
            self.add(1);
        }

        /// Adds `n` to this thread's shard slot.
        #[inline]
        pub fn add(&self, n: u64) {
            let mut token = self.slot.load(Ordering::Relaxed);
            if token == UNREGISTERED {
                token = self.register();
            }
            if token == DEAD {
                return;
            }
            COUNTER_SHARD.with(|shard| {
                let c = &shard[token - 1];
                c.set(c.get().wrapping_add(n));
            });
        }

        #[cold]
        fn register(&self) -> usize {
            let mut reg = lock();
            let idx = match reg.counter_names.iter().position(|n| *n == self.name) {
                Some(i) => i,
                None if reg.counter_names.len() < MAX_COUNTERS => {
                    reg.counter_names.push(self.name);
                    reg.counter_totals.push(0);
                    reg.counter_names.len() - 1
                }
                None => {
                    self.slot.store(DEAD, Ordering::Relaxed);
                    note_dropped_registration("counter", self.name, MAX_COUNTERS);
                    return DEAD;
                }
            };
            self.slot.store(idx + 1, Ordering::Relaxed);
            idx + 1
        }
    }

    /// A named value-distribution series (see [`crate::histogram!`]).
    pub struct Histogram {
        name: &'static str,
        slot: AtomicUsize,
    }

    impl Histogram {
        /// Creates an unregistered handle; use via the
        /// [`crate::histogram!`] macro rather than directly.
        pub const fn new(name: &'static str) -> Self {
            Histogram {
                name,
                slot: AtomicUsize::new(UNREGISTERED),
            }
        }

        /// Records one observation into this thread's shard.
        #[inline]
        pub fn record(&self, v: u64) {
            let mut token = self.slot.load(Ordering::Relaxed);
            if token == UNREGISTERED {
                token = register_series(&self.slot, self.name, SeriesKind::Histogram);
            }
            if token == DEAD {
                return;
            }
            series_record(token - 1, v);
        }
    }

    /// The static series behind a [`crate::span!`] site.
    pub struct SpanSeries {
        name: &'static str,
        slot: AtomicUsize,
    }

    impl SpanSeries {
        /// Creates an unregistered handle; use via the
        /// [`crate::span!`] macro rather than directly.
        pub const fn new(name: &'static str) -> Self {
            SpanSeries {
                name,
                slot: AtomicUsize::new(UNREGISTERED),
            }
        }
    }

    #[cold]
    fn register_series(slot: &AtomicUsize, name: &'static str, kind: SeriesKind) -> usize {
        let mut reg = lock();
        let idx = match reg.series_names.iter().position(|n| *n == name) {
            Some(i) => i,
            None if reg.series_names.len() < MAX_SERIES => {
                reg.series_names.push(name);
                reg.series_totals.push(SeriesTotal::new(kind));
                reg.series_names.len() - 1
            }
            None => {
                slot.store(DEAD, Ordering::Relaxed);
                note_dropped_registration("series", name, MAX_SERIES);
                return DEAD;
            }
        };
        slot.store(idx + 1, Ordering::Relaxed);
        idx + 1
    }

    /// Scope guard returned by [`crate::span!`]; records elapsed
    /// monotonic nanoseconds into the span's series when dropped.
    pub struct SpanGuard {
        token: usize,
        start: u64,
    }

    impl SpanGuard {
        /// Starts timing a scope against `series`.
        #[inline]
        pub fn enter(series: &SpanSeries) -> SpanGuard {
            let mut token = series.slot.load(Ordering::Relaxed);
            if token == UNREGISTERED {
                token = register_series(&series.slot, series.name, SeriesKind::Span);
            }
            SpanGuard {
                token,
                start: now_ns(),
            }
        }
    }

    impl Drop for SpanGuard {
        #[inline]
        fn drop(&mut self) {
            if self.token == DEAD {
                return;
            }
            let elapsed = now_ns().saturating_sub(self.start);
            series_record(self.token - 1, elapsed);
        }
    }

    // ---- join points and queries ------------------------------------------

    /// Merges the calling thread's shard into the global registry and
    /// zeroes the shard. Workers call this once when their shard of
    /// work completes (the join point); cheap enough to call freely.
    pub fn flush_thread() {
        let mut reg = lock();
        COUNTER_SHARD.with(|shard| {
            for (idx, total) in reg.counter_totals.iter_mut().enumerate() {
                let c = &shard[idx];
                *total = total.wrapping_add(c.get());
                c.set(0);
            }
        });
        SERIES_SHARD.with(|shard| {
            for (idx, total) in reg.series_totals.iter_mut().enumerate() {
                let s = &shard[idx];
                if s.count.get() == 0 {
                    continue;
                }
                total.count = total.count.wrapping_add(s.count.get());
                total.sum = total.sum.wrapping_add(s.sum.get());
                total.min = total.min.min(s.min.get());
                total.max = total.max.max(s.max.get());
                for (b, tb) in s.buckets.iter().zip(total.buckets.iter_mut()) {
                    *tb = tb.wrapping_add(b.get());
                }
                s.clear();
            }
        });
    }

    /// Zeroes the calling thread's shard **without** merging it.
    ///
    /// This is the abandonment path: when a worker's shard is retried
    /// after `catch_unwind`, the partial updates from the failed
    /// attempt must not leak into the totals, or counters would stop
    /// matching the values the retried computation returns.
    pub fn discard_thread() {
        COUNTER_SHARD.with(|shard| {
            for c in shard {
                c.set(0);
            }
        });
        SERIES_SHARD.with(|shard| {
            for s in shard {
                s.clear();
            }
        });
    }

    fn quantile(total: &SeriesTotal, q_num: u64, q_den: u64) -> u64 {
        // Upper bound of the bucket where the cumulative count crosses
        // ceil(count * q): index 0 -> 0, index i -> 2^i - 1.
        let threshold = (total.count.saturating_mul(q_num)).div_ceil(q_den).max(1);
        let mut seen = 0u64;
        for (i, b) in total.buckets.iter().enumerate() {
            seen = seen.saturating_add(*b);
            if seen >= threshold {
                return match i {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
            }
        }
        total.max
    }

    /// Flushes the calling thread, then returns a copy of the registry
    /// sorted by name. Other threads' unflushed shards are *not*
    /// included — flush at join points before snapshotting. If any
    /// registration was ever refused for capacity, the synthetic
    /// [`DROPPED_REGISTRATIONS_COUNTER`] appears among the counters.
    pub fn snapshot() -> Snapshot {
        flush_thread();
        let reg = lock();
        let mut counters: Vec<CounterStat> = reg
            .counter_names
            .iter()
            .zip(reg.counter_totals.iter())
            .map(|(name, value)| CounterStat {
                name,
                value: *value,
            })
            .collect();
        let dropped = dropped_registrations();
        if dropped > 0 {
            counters.push(CounterStat {
                name: DROPPED_REGISTRATIONS_COUNTER,
                value: dropped,
            });
        }
        counters.sort_by_key(|c| c.name);
        let mut series: Vec<SeriesStat> = reg
            .series_names
            .iter()
            .zip(reg.series_totals.iter())
            .map(|(name, t)| SeriesStat {
                name,
                kind: t.kind,
                count: t.count,
                sum: t.sum,
                min: if t.count == 0 { 0 } else { t.min },
                max: t.max,
                p50: quantile(t, 1, 2),
                p99: quantile(t, 99, 100),
            })
            .collect();
        series.sort_by_key(|s| s.name);
        Snapshot { counters, series }
    }

    /// Flushes the calling thread, then returns the merged total for
    /// one counter (0 if it never registered). The synthetic
    /// [`DROPPED_REGISTRATIONS_COUNTER`] is readable here too.
    pub fn counter_value(name: &str) -> u64 {
        if name == DROPPED_REGISTRATIONS_COUNTER {
            return dropped_registrations();
        }
        flush_thread();
        let reg = lock();
        reg.counter_names
            .iter()
            .position(|n| *n == name)
            .map_or(0, |i| reg.counter_totals[i])
    }

    /// Flushes the calling thread, then returns the summed duration
    /// (nanoseconds) recorded under one span/histogram name (0 if it
    /// never registered).
    pub fn span_total_ns(name: &str) -> u64 {
        flush_thread();
        let reg = lock();
        reg.series_names
            .iter()
            .position(|n| *n == name)
            .map_or(0, |i| reg.series_totals[i].sum)
    }

    /// Discards the calling thread's shard and zeroes every registered
    /// total (names stay registered, so live handles remain valid).
    /// Test support: lets one process run independent measurement
    /// windows.
    pub fn reset() {
        discard_thread();
        let mut reg = lock();
        for total in reg.counter_totals.iter_mut() {
            *total = 0;
        }
        for t in reg.series_totals.iter_mut() {
            let kind = t.kind;
            *t = SeriesTotal::new(kind);
        }
    }

    /// `true`: this build carries live metrics (`enabled` feature on).
    pub const fn enabled() -> bool {
        true
    }
}

#[cfg(not(feature = "enabled"))]
mod noop {
    use crate::types::Snapshot;

    /// Name of the synthetic dropped-registrations counter (disabled
    /// build: nothing registers, so it never appears anywhere).
    pub const DROPPED_REGISTRATIONS_COUNTER: &str = "obs_dropped_registrations";

    /// Maximum distinct counter names (disabled build: nothing
    /// registers, the cap is nominal).
    pub const MAX_COUNTERS: usize = 64;
    /// Maximum distinct span/histogram names (disabled build: nothing
    /// registers, the cap is nominal).
    pub const MAX_SERIES: usize = 32;

    /// A named monotonically increasing counter (disabled build:
    /// zero-sized, every method an empty inline stub).
    pub struct Counter(());

    impl Counter {
        /// Creates a handle; use via the [`crate::counter!`] macro.
        pub const fn new(_name: &'static str) -> Self {
            Counter(())
        }

        /// Adds 1 (no-op).
        #[inline(always)]
        pub fn incr(&self) {}

        /// Adds `n` (no-op).
        #[inline(always)]
        pub fn add(&self, _n: u64) {}
    }

    /// A named value-distribution series (disabled build: zero-sized).
    pub struct Histogram(());

    impl Histogram {
        /// Creates a handle; use via the [`crate::histogram!`] macro.
        pub const fn new(_name: &'static str) -> Self {
            Histogram(())
        }

        /// Records one observation (no-op).
        #[inline(always)]
        pub fn record(&self, _v: u64) {}
    }

    /// The static series behind a [`crate::span!`] site (disabled
    /// build: zero-sized).
    pub struct SpanSeries(());

    impl SpanSeries {
        /// Creates a handle; use via the [`crate::span!`] macro.
        pub const fn new(_name: &'static str) -> Self {
            SpanSeries(())
        }
    }

    /// Scope guard returned by [`crate::span!`] (disabled build:
    /// zero-sized, records nothing on drop).
    pub struct SpanGuard(());

    impl SpanGuard {
        /// Starts timing a scope (no-op).
        #[inline(always)]
        pub fn enter(_series: &SpanSeries) -> SpanGuard {
            SpanGuard(())
        }
    }

    /// Merges the calling thread's shard (no-op).
    #[inline(always)]
    pub fn flush_thread() {}

    /// Zeroes the calling thread's shard without merging (no-op).
    #[inline(always)]
    pub fn discard_thread() {}

    /// Returns an empty snapshot (disabled build records nothing).
    #[inline(always)]
    pub fn snapshot() -> Snapshot {
        Snapshot::default()
    }

    /// Returns 0: no counter exists in a disabled build.
    #[inline(always)]
    pub fn counter_value(_name: &str) -> u64 {
        0
    }

    /// Returns 0: no series exists in a disabled build.
    #[inline(always)]
    pub fn span_total_ns(_name: &str) -> u64 {
        0
    }

    /// Resets nothing (no-op).
    #[inline(always)]
    pub fn reset() {}

    /// `false`: this build compiled metrics out.
    pub const fn enabled() -> bool {
        false
    }
}
