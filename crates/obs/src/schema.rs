//! The versioned JSONL event schema, as machine-readable data.
//!
//! DESIGN.md §8 documents this schema in prose; this module *is* the
//! schema, and tests validate emitted event logs against it so the
//! documentation cannot drift from the code. Compiled identically in
//! enabled and disabled builds (it is pure data).
//!
//! # Versioning
//!
//! Every line carries `"v":` [`VERSION`]. The version bumps when a
//! field is removed, renamed, or changes type/meaning; *adding* a new
//! event type or appending a new field to an existing type is
//! backwards-compatible and does not bump it. Consumers should ignore
//! unknown keys and unknown event types.
//!
//! # Common fields
//!
//! Every event line carries, before its per-type fields:
//!
//! - `v` (u64) — schema version;
//! - `ts_ns` (u64) — monotonic nanoseconds since the process's first
//!   clock read ([`crate::now_ns`]); process-relative, comparable
//!   within one log, not across runs;
//! - `type` (string) — one of the [`EVENTS`] entries below.
//!
//! All per-type fields are required: a producer emits every field of
//! its type on every line.

/// Current schema version, written as `"v"` on every line.
///
/// v2: `shard_retry.seed` re-typed u64 → string. Derived shard seeds
/// span the full u64 range (epoch seeds are wrapping golden-ratio
/// offsets from the campaign seed), which exceeds the 2^53 exact-
/// integer window JSON numbers guarantee; a decimal string carries
/// the exact value at any width.
///
/// v3: the serve request lifecycle joins the schema (`request_done`,
/// `request_rejected`, `engine_swap`) along with the one-time
/// `obs_overflow` registry warning. Bumped — rather than riding the
/// additive rule — because service logs are a new consumer surface:
/// a v3 reader knows rejected requests are *logged*, so an absence of
/// `request_rejected` lines means none happened, a conclusion a v2
/// reader could not draw.
///
/// v4: the grid coordination lifecycle joins the schema
/// (`grid_cell_done`, `grid_cell_lost`, `lease_takeover`). Bumped for
/// the same reason as v3: grid driver logs are a new consumer surface
/// — a v4 reader knows lost cells and lease takeovers are *logged*,
/// so their absence in a driver log proves a clean run, which a v3
/// reader could not conclude.
pub const VERSION: u64 = 4;

/// JSON type of one event field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// JSON integer, kept below 2^53 by producers so double-based
    /// parsers round-trip it exactly.
    U64,
    /// JSON number (finite; a non-finite value would render `null`,
    /// and no producer emits one).
    F64,
    /// JSON string.
    Str,
    /// JSON `true`/`false`.
    Bool,
}

/// One named, typed field of an event type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldSpec {
    /// Field key as it appears on the JSON line.
    pub name: &'static str,
    /// Required JSON type of the value.
    pub kind: FieldKind,
}

/// One event type: its `"type"` tag and its required fields (beyond
/// the common `v`/`ts_ns`/`type`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventSpec {
    /// Value of the line's `"type"` key.
    pub event_type: &'static str,
    /// Required per-type fields, in canonical emission order.
    pub fields: &'static [FieldSpec],
}

const U64: FieldKind = FieldKind::U64;
const F64: FieldKind = FieldKind::F64;
const STR: FieldKind = FieldKind::Str;

const fn field(name: &'static str, kind: FieldKind) -> FieldSpec {
    FieldSpec { name, kind }
}

/// Every event type the workspace emits, in schema version
/// [`VERSION`].
///
/// - `campaign_epoch` — one line per evaluated epoch of
///   `accel::campaign::run` / `resume`: the epoch's position on the
///   lifetime axis (`writes`, `fault_rate` = stuck-cell fraction),
///   accuracy (`misclassification`, `top5_misclassification`,
///   `flip_rate`, `samples`), the ECC decode tallies
///   (`clean`…`uncoded`, matching `accel::DecodeStats`), and wall
///   timings (`eval_ns`, `program_ns` = re-program + A-search time
///   inside the evaluation, `checkpoint_ns` = checkpoint write
///   latency, 0 when no checkpoint was due).
/// - `shard_done` — one line per completed Monte-Carlo worker shard in
///   `accel::sim::evaluate`: sample range `[lo, hi)` and the shard's
///   wall duration.
/// - `shard_retry` — one line per shard retry on the `catch_unwind`
///   path: the shard that failed, the seed it reuses (a decimal
///   *string*: derived shard seeds span the full u64 range, wider
///   than JSON's exact-integer window), the attempt number being
///   started (1 = first retry), and the failure `reason` (`"panic"`
///   or `"watchdog"`).
/// - `shard_lost` — one line per shard dropped under graceful
///   degradation (`max_lost_shards`): the unevaluated sample range
///   `[lo, hi)`, how many attempts were burned, and the final failure
///   reason. The campaign records the same range as a gap.
/// - `checkpoint_write_failed` — a periodic checkpoint write failed
///   every retry and the campaign continued without it (the previous
///   generation remains the recovery point).
/// - `checkpoint_fallback` — resume found a corrupt/torn checkpoint
///   artifact (CRC or parse failure) and fell back to the newest
///   generation that verified; `used_generation` is the epoch count
///   recovery actually proceeds from.
/// - `chaos_fault` — a `chaos::ChaosSchedule` injected a fault at an
///   I/O seam: where (`seam`), which operation (`index`), and what
///   (`fault`: `eio`/`enospc`/`torn`/`bitflip`). Emitted by the seam
///   owner so chaos runs are self-documenting.
/// - `request_done` — one line per request the serve loop answered
///   `ok`: the request id as the client sent it, the worker shard that
///   served it, the scheme and wear epoch of the engine set used, how
///   many input samples the request carried, and the wall time from
///   dequeue to response (`service_ns`).
/// - `request_rejected` — one line per request refused with a typed
///   error response: the request id (`"?"` when the frame was too
///   malformed to carry one), the rejection `reason` (`overloaded` /
///   `deadline_exceeded` / `bad_request` / `internal_error`), and the
///   bounded queue's depth at rejection time (meaningful for
///   `overloaded`, 0 otherwise).
/// - `engine_swap` — one line per completed wear-epoch engine swap: the
///   scheme whose engine set was replaced, the epoch it advanced to,
///   how many programming attempts the swap burned (1 = verified on
///   the first try), and the programming wall time (`program_ns`).
/// - `obs_overflow` — the one-time structured twin of the registry-cap
///   stderr warning: which registry overflowed (`what`: `counter` /
///   `series`), the first refused name, and the cap. At most one line
///   per process; the `obs_dropped_registrations` counter carries the
///   running total.
/// - `grid_cell_done` — one line per grid cell the driver verified
///   complete: the cell id and its index in spec-expansion order, the
///   lease generation that sealed it, how many worker attempts it
///   took (1 = first try), the epochs in the cell's final artifact,
///   and the cell's wall time from first claim to verification.
/// - `grid_cell_lost` — one line per cell dropped under
///   `--max-lost-cells` graceful degradation: the cell, how many
///   attempts were burned, and the final failure reason
///   (`spawn`/`exit`/`watchdog`/`verify`). The merged summary records
///   the same cell as an explicit gap.
/// - `lease_takeover` — the driver claimed a cell whose lease named a
///   different live-looking owner (a stale lease from a killed driver
///   or worker): the generations crossed and the new owner token.
///   Absence of these lines in a v4 log proves no takeover happened.
pub const EVENTS: &[EventSpec] = &[
    EventSpec {
        event_type: "campaign_epoch",
        fields: &[
            field("scheme", STR),
            field("epoch", U64),
            field("writes", F64),
            field("fault_rate", F64),
            field("misclassification", F64),
            field("top5_misclassification", F64),
            field("flip_rate", F64),
            field("samples", U64),
            field("clean", U64),
            field("corrected", U64),
            field("uncorrectable", U64),
            field("miscorrected", U64),
            field("silent_a", U64),
            field("retries", U64),
            field("uncoded", U64),
            field("eval_ns", U64),
            field("program_ns", U64),
            field("checkpoint_ns", U64),
            field("lost_samples", U64),
        ],
    },
    EventSpec {
        event_type: "shard_done",
        fields: &[
            field("shard", U64),
            field("lo", U64),
            field("hi", U64),
            field("duration_ns", U64),
        ],
    },
    EventSpec {
        event_type: "shard_retry",
        fields: &[
            field("shard", U64),
            field("seed", STR),
            field("attempt", U64),
            field("reason", STR),
        ],
    },
    EventSpec {
        event_type: "shard_lost",
        fields: &[
            field("shard", U64),
            field("lo", U64),
            field("hi", U64),
            field("attempts", U64),
            field("reason", STR),
        ],
    },
    EventSpec {
        event_type: "checkpoint_write_failed",
        fields: &[
            field("path", STR),
            field("attempts", U64),
            field("error", STR),
        ],
    },
    EventSpec {
        event_type: "checkpoint_fallback",
        fields: &[
            field("path", STR),
            field("reason", STR),
            field("used_generation", U64),
        ],
    },
    EventSpec {
        event_type: "chaos_fault",
        fields: &[
            field("seam", STR),
            field("index", U64),
            field("fault", STR),
        ],
    },
    EventSpec {
        event_type: "request_done",
        fields: &[
            field("request_id", STR),
            field("worker", U64),
            field("scheme", STR),
            field("epoch", U64),
            field("samples", U64),
            field("service_ns", U64),
        ],
    },
    EventSpec {
        event_type: "request_rejected",
        fields: &[
            field("request_id", STR),
            field("reason", STR),
            field("queue_depth", U64),
        ],
    },
    EventSpec {
        event_type: "engine_swap",
        fields: &[
            field("scheme", STR),
            field("epoch", U64),
            field("attempts", U64),
            field("program_ns", U64),
        ],
    },
    EventSpec {
        event_type: "obs_overflow",
        fields: &[
            field("what", STR),
            field("name", STR),
            field("cap", U64),
        ],
    },
    EventSpec {
        event_type: "grid_cell_done",
        fields: &[
            field("cell", STR),
            field("index", U64),
            field("generation", U64),
            field("attempts", U64),
            field("epochs", U64),
            field("duration_ns", U64),
        ],
    },
    EventSpec {
        event_type: "grid_cell_lost",
        fields: &[
            field("cell", STR),
            field("index", U64),
            field("attempts", U64),
            field("reason", STR),
        ],
    },
    EventSpec {
        event_type: "lease_takeover",
        fields: &[
            field("cell", STR),
            field("from_generation", U64),
            field("to_generation", U64),
            field("owner", STR),
        ],
    },
];

/// Looks up the spec for an event type tag, if it is part of this
/// schema version.
pub fn spec_for(event_type: &str) -> Option<&'static EventSpec> {
    EVENTS.iter().find(|spec| spec.event_type == event_type)
}
