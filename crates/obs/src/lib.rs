//! `repro-obs` — a zero-dependency observability layer for the
//! reproduction harness: spans, counters, histograms, registry
//! snapshots (Prometheus text + JSON) and an append-only JSONL event
//! log.
//!
//! # Model
//!
//! Three primitives, each declared *statically* at its use site by a
//! macro and registered lazily on first use:
//!
//! - [`counter!`] — a monotonically increasing `u64`;
//! - [`histogram!`] — a value distribution over power-of-two buckets
//!   (count/sum/min/max plus approximate p50/p99);
//! - [`span!`] — a scoped timer: the returned guard records the
//!   elapsed monotonic nanoseconds into a histogram series when it
//!   drops. Spans nest lexically (`span!("program")` inside
//!   `span!("mvm")` simply times both scopes) and aggregate **per
//!   name** — count/total/min/max/p50/p99, not per call path.
//!
//! # Sharding and determinism
//!
//! Hot-path updates touch only a fixed-size thread-local [`Cell`]
//! slot — no lock, no hashing, no allocation — so instrumented kernels
//! stay allocation-free (the `accel` alloc sanitizer runs with metrics
//! enabled). Each worker thread merges its shard into the global
//! registry at a *join point* ([`flush_thread`], called by
//! `accel::sim::evaluate` workers when their shard completes), and
//! [`discard_thread`] throws a shard away (the `catch_unwind` retry
//! path, so a retried worker never double-counts). Because counter
//! merging is `u64` addition, totals are independent of merge order
//! and thread count: totals always equal what a sequential run would
//! have counted. Timings are wall-clock and *not* deterministic — they
//! never feed back into any seeded computation (see `clock`).
//!
//! [`Cell`]: std::cell::Cell
//!
//! # Zero overhead when disabled
//!
//! Everything here is gated on this crate's `enabled` feature (off by
//! default). Disabled, every type is zero-sized and every function an
//! empty `#[inline]` stub: consumer crates call the API
//! unconditionally and the optimizer erases it.
//!
//! # Example
//!
//! ```
//! // Instrument: a span around work, a counter inside it.
//! fn decode_all(blocks: &[u32]) -> u64 {
//!     let _span = obs::span!("decode");
//!     let mut sum = 0;
//!     for b in blocks {
//!         obs::counter!(blocks_decoded).incr();
//!         sum += u64::from(*b);
//!     }
//!     sum
//! }
//!
//! decode_all(&[1, 2, 3]);
//! // At a join point, merge this thread's shard and snapshot:
//! let snap = obs::snapshot();
//! let text = snap.to_prometheus_text();
//! if obs::enabled() {
//!     assert!(text.contains("blocks_decoded 3"));
//! } else {
//!     assert!(text.is_empty()); // compiled to a no-op
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
pub mod events;
mod metrics;
pub mod schema;
mod types;

pub use clock::now_ns;
pub use events::Event;
pub use metrics::{
    counter_value, discard_thread, enabled, flush_thread, reset, snapshot, span_total_ns, Counter,
    Histogram, SpanGuard, SpanSeries, DROPPED_REGISTRATIONS_COUNTER, MAX_COUNTERS, MAX_SERIES,
};
pub use types::{CounterStat, SeriesKind, SeriesStat, Snapshot};

/// Declares (once, statically) and returns a named [`Counter`].
///
/// The name is the bare identifier: `counter!(ecc_corrected)` registers
/// a counter named `"ecc_corrected"`. Two call sites using the same
/// identifier are merged by name in snapshots.
///
/// ```
/// obs::counter!(widgets_made).add(2);
/// obs::counter!(widgets_made).incr();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:ident) => {{
        static __OBS_COUNTER: $crate::Counter = $crate::Counter::new(stringify!($name));
        &__OBS_COUNTER
    }};
}

/// Declares (once, statically) and returns a named [`Histogram`].
///
/// ```
/// obs::histogram!(lane_error_magnitude).record(17);
/// ```
#[macro_export]
macro_rules! histogram {
    ($name:ident) => {{
        static __OBS_HISTOGRAM: $crate::Histogram = $crate::Histogram::new(stringify!($name));
        &__OBS_HISTOGRAM
    }};
}

/// Starts a named span; the returned guard records elapsed monotonic
/// nanoseconds when dropped. Bind it (`let _span = …`) so the scope is
/// what you mean to time.
///
/// ```
/// let _outer = obs::span!("program");
/// {
///     let _inner = obs::span!("mvm"); // nested: both scopes are timed
/// }
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static __OBS_SPAN: $crate::SpanSeries = $crate::SpanSeries::new($name);
        $crate::SpanGuard::enter(&__OBS_SPAN)
    }};
}
