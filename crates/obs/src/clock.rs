//! The monotonic clock — the workspace's **single** wall-clock
//! boundary.
//!
//! Every duration in this crate is derived from [`now_ns`], which reads
//! `std::time::Instant` exactly once per call against a process-wide
//! epoch captured on first use. The `repro-lint` `nondeterminism` lint
//! covers this crate precisely so that this is the only place an
//! `Instant` can appear: timing flows *out* to metric sinks and event
//! logs only, never back into seeded simulation state (checkpoints,
//! RNG streams, campaign records), which is what keeps the
//! byte-identical-resume and double-run guarantees intact while
//! metrics are enabled.

#[cfg(feature = "enabled")]
mod imp {
    use std::sync::OnceLock;

    // lint: allow(nondeterminism, the audited clock boundary: this epoch only anchors observability timings, which never feed seeded computation)
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();

    pub fn now_ns() -> u64 {
        // lint: allow(nondeterminism, the workspace's single Instant::now site; see module docs)
        let epoch = EPOCH.get_or_init(std::time::Instant::now);
        // u128→u64: saturate instead of wrapping; 2^64 ns ≈ 584 years
        // of process uptime, so saturation is unreachable in practice.
        u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Monotonic nanoseconds since the process's first clock read.
///
/// Returns 0 when metrics are disabled (the `enabled` feature is off),
/// so durations computed from it are 0 and downstream sinks see
/// nothing. Never decreases within a thread; the first call returns 0.
#[cfg(feature = "enabled")]
#[inline]
pub fn now_ns() -> u64 {
    imp::now_ns()
}

/// Monotonic nanoseconds since the process's first clock read
/// (disabled build: always 0, no clock is read).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn now_ns() -> u64 {
    0
}
