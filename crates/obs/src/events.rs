//! The append-only JSONL event log.
//!
//! Events are discrete, *cold-path* records — one per campaign epoch,
//! per completed shard, per retry — in contrast to the metrics shards,
//! which absorb millions of hot-path updates. Allocation is therefore
//! fine here, and every [`emit`] renders and writes one line
//! immediately (no buffering), so a crashed run keeps every event up
//! to the failure point.
//!
//! # Line format
//!
//! Each line is a flat JSON object:
//!
//! ```json
//! {"v":1,"ts_ns":123456,"type":"shard_retry","shard":2,"seed":13,"attempt":1}
//! ```
//!
//! - `v` — schema version, [`crate::schema::VERSION`];
//! - `ts_ns` — monotonic nanoseconds from [`crate::now_ns`] at emit
//!   time (process-relative, *not* wall-clock time of day);
//! - `type` — event type, matched field-by-field against
//!   [`crate::schema::EVENTS`];
//! - remaining keys — the event's fields, in builder insertion order.
//!
//! Unsigned integers are rendered as JSON integers and are kept below
//! 2^53 by every producer in this workspace, so parsers with an IEEE
//! double number type (including the vendored `serde_json` stub) read
//! them back exactly. Floats use Rust's shortest-round-trip `Display`;
//! a non-finite float renders as `null` (no producer emits one).
//!
//! # Sinks
//!
//! One process-global sink: a file ([`log_to_file`]), an in-memory
//! buffer for tests ([`log_to_memory`] / [`take_memory`]), or nothing
//! (the default — [`emit`] is then a cheap early return). In a
//! disabled build ([`crate::enabled`]` == false`) all of this
//! compiles to no-ops and no file is ever created.

#[cfg(feature = "enabled")]
pub use imp::*;
#[cfg(not(feature = "enabled"))]
pub use noop::*;

#[cfg(feature = "enabled")]
mod imp {
    use crate::clock::now_ns;
    use std::fmt::Write as _;
    use std::fs::File;
    use std::io::{self, Write as _};
    use std::path::Path;
    use std::sync::{Mutex, MutexGuard};

    enum SinkState {
        Off,
        File(File),
        Memory(Vec<String>),
    }

    static SINK: Mutex<SinkState> = Mutex::new(SinkState::Off);

    fn lock() -> MutexGuard<'static, SinkState> {
        SINK.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    enum FieldValue {
        U64(u64),
        F64(f64),
        Str(String),
        Bool(bool),
    }

    /// One structured event, built field-by-field and handed to
    /// [`emit`]. Field order in the output line is insertion order.
    pub struct Event {
        ty: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
    }

    impl Event {
        /// Starts an event of the given type (see
        /// [`crate::schema::EVENTS`] for the documented types).
        pub fn new(ty: &'static str) -> Event {
            Event {
                ty,
                fields: Vec::new(),
            }
        }

        /// Appends an unsigned-integer field. Keep values below 2^53
        /// so double-based JSON parsers round-trip them exactly.
        #[must_use]
        pub fn u64(mut self, key: &'static str, value: u64) -> Event {
            self.fields.push((key, FieldValue::U64(value)));
            self
        }

        /// Appends a float field (rendered via shortest-round-trip
        /// `Display`; non-finite values render as `null`).
        #[must_use]
        pub fn f64(mut self, key: &'static str, value: f64) -> Event {
            self.fields.push((key, FieldValue::F64(value)));
            self
        }

        /// Appends a string field (JSON-escaped on render).
        #[must_use]
        pub fn str(mut self, key: &'static str, value: &str) -> Event {
            self.fields.push((key, FieldValue::Str(value.to_string())));
            self
        }

        /// Appends a boolean field.
        #[must_use]
        pub fn bool(mut self, key: &'static str, value: bool) -> Event {
            self.fields.push((key, FieldValue::Bool(value)));
            self
        }

        fn render(&self) -> String {
            let mut out = String::new();
            let _ = write!(
                out,
                "{{\"v\":{},\"ts_ns\":{},\"type\":",
                crate::schema::VERSION,
                now_ns()
            );
            push_json_str(&mut out, self.ty);
            for (key, value) in &self.fields {
                out.push(',');
                push_json_str(&mut out, key);
                out.push(':');
                match value {
                    FieldValue::U64(v) => {
                        let _ = write!(out, "{v}");
                    }
                    FieldValue::F64(v) if v.is_finite() => {
                        let _ = write!(out, "{v}");
                    }
                    FieldValue::F64(_) => out.push_str("null"),
                    FieldValue::Str(v) => push_json_str(&mut out, v),
                    FieldValue::Bool(v) => {
                        let _ = write!(out, "{v}");
                    }
                }
            }
            out.push('}');
            out
        }
    }

    fn push_json_str(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Writes one event line to the active sink; a cheap early return
    /// when no sink is active. Write errors are swallowed: the event
    /// log is diagnostic output and must never fail the run it
    /// observes.
    pub fn emit(event: Event) {
        let mut sink = lock();
        match &mut *sink {
            SinkState::Off => {}
            SinkState::File(file) => {
                let mut line = event.render();
                line.push('\n');
                let _ = file.write_all(line.as_bytes());
            }
            SinkState::Memory(lines) => lines.push(event.render()),
        }
    }

    /// Starts logging events to `path` (created or truncated).
    /// Replaces any previously active sink.
    pub fn log_to_file(path: &Path) -> io::Result<()> {
        let file = File::create(path)?;
        *lock() = SinkState::File(file);
        Ok(())
    }

    /// Starts logging events to an in-memory buffer (test support).
    /// Replaces any previously active sink.
    pub fn log_to_memory() {
        *lock() = SinkState::Memory(Vec::new());
    }

    /// Drains and returns the in-memory buffer's lines (empty if the
    /// active sink is not the memory sink). Logging continues.
    pub fn take_memory() -> Vec<String> {
        match &mut *lock() {
            SinkState::Memory(lines) => std::mem::take(lines),
            _ => Vec::new(),
        }
    }

    /// Deactivates the sink; a file sink is closed (every line was
    /// already written through).
    pub fn stop_logging() {
        *lock() = SinkState::Off;
    }
}

#[cfg(not(feature = "enabled"))]
mod noop {
    use std::io;
    use std::path::Path;

    /// One structured event (disabled build: zero-sized, the builder
    /// records nothing).
    pub struct Event(());

    impl Event {
        /// Starts an event of the given type (no-op).
        pub fn new(_ty: &'static str) -> Event {
            Event(())
        }

        /// Appends an unsigned-integer field (no-op).
        #[must_use]
        pub fn u64(self, _key: &'static str, _value: u64) -> Event {
            self
        }

        /// Appends a float field (no-op).
        #[must_use]
        pub fn f64(self, _key: &'static str, _value: f64) -> Event {
            self
        }

        /// Appends a string field (no-op).
        #[must_use]
        pub fn str(self, _key: &'static str, _value: &str) -> Event {
            self
        }

        /// Appends a boolean field (no-op).
        #[must_use]
        pub fn bool(self, _key: &'static str, _value: bool) -> Event {
            self
        }
    }

    /// Writes one event line (no-op: disabled builds have no sink).
    #[inline(always)]
    pub fn emit(_event: Event) {}

    /// Starts logging to a file (disabled build: returns `Ok` without
    /// creating or touching any file).
    #[inline(always)]
    pub fn log_to_file(_path: &Path) -> io::Result<()> {
        Ok(())
    }

    /// Starts logging to memory (no-op).
    #[inline(always)]
    pub fn log_to_memory() {}

    /// Returns the in-memory buffer (disabled build: always empty).
    #[inline(always)]
    pub fn take_memory() -> Vec<String> {
        Vec::new()
    }

    /// Deactivates the sink (no-op).
    #[inline(always)]
    pub fn stop_logging() {}
}
