//! The append-only JSONL event log.
//!
//! Events are discrete, *cold-path* records — one per campaign epoch,
//! per completed shard, per retry — in contrast to the metrics shards,
//! which absorb millions of hot-path updates. Allocation is therefore
//! fine here, and every [`emit`] renders and writes one line
//! immediately (no buffering), so a crashed run keeps every event up
//! to the failure point.
//!
//! # Line format
//!
//! Each line is a flat JSON object:
//!
//! ```json
//! {"v":4,"ts_ns":123456,"type":"shard_retry","shard":2,"seed":"13","attempt":1,"reason":"panic"}
//! ```
//!
//! - `v` — schema version, [`crate::schema::VERSION`];
//! - `ts_ns` — monotonic nanoseconds from [`crate::now_ns`] at emit
//!   time (process-relative, *not* wall-clock time of day);
//! - `type` — event type, matched field-by-field against
//!   [`crate::schema::EVENTS`];
//! - remaining keys — the event's fields, in builder insertion order.
//!
//! Unsigned integers are rendered as JSON integers and are kept below
//! 2^53 by every producer in this workspace, so parsers with an IEEE
//! double number type (including the vendored `serde_json` stub) read
//! them back exactly. Floats use Rust's shortest-round-trip `Display`;
//! a non-finite float renders as `null` (no producer emits one).
//!
//! # Sinks
//!
//! One process-global sink: a file ([`log_to_file`]), an in-memory
//! buffer for tests ([`log_to_memory`] / [`take_memory`]), or nothing
//! (the default — [`emit`] is then a cheap early return). In a
//! disabled build ([`crate::enabled`]` == false`) all of this
//! compiles to no-ops and no file is ever created.

/// The largest integer an IEEE-double-based JSON parser round-trips
/// exactly (2^53 − 1). [`Event::u64`] enforces this bound for every
/// producer: debug builds assert, release builds saturate to it.
pub const MAX_JSON_INT: u64 = (1u64 << 53) - 1;

#[cfg(feature = "enabled")]
pub use imp::*;
#[cfg(not(feature = "enabled"))]
pub use noop::*;

#[cfg(feature = "enabled")]
mod imp {
    use crate::clock::now_ns;
    use std::fmt::Write as _;
    use std::fs::File;
    use std::io::{self, Read as _, Seek as _, Write as _};
    use std::path::Path;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard};

    /// A simulated failure of one event-line write (chaos testing; see
    /// [`set_write_fault_hook`]).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum WriteFault {
        /// The line write fails outright; the line is lost but framing
        /// stays intact.
        Error,
        /// Only a prefix of the line reaches the file (torn mid-line);
        /// `roll` selects the cut. The sink restores framing with a
        /// newline, leaving one unparseable line behind.
        Torn {
            /// Entropy selecting the truncation point.
            roll: u64,
        },
    }

    /// Decides the fault (if any) for the `n`-th line written since the
    /// hook was installed.
    type FaultHook = Box<dyn FnMut(u64) -> Option<WriteFault> + Send>;

    enum SinkState {
        Off,
        File {
            file: File,
            hook: Option<FaultHook>,
            /// Lines attempted since this sink was installed (the
            /// hook's operation index).
            index: u64,
            /// A previous write left the file without a trailing
            /// newline; emit a bare `\n` before the next line to
            /// restore framing.
            pending_newline: bool,
        },
        Memory(Vec<String>),
    }

    static SINK: Mutex<SinkState> = Mutex::new(SinkState::Off);

    /// Event lines lost or mangled by real or injected write failures
    /// since process start (see [`write_failures`]).
    static WRITE_FAILURES: AtomicU64 = AtomicU64::new(0);

    fn lock() -> MutexGuard<'static, SinkState> {
        SINK.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    enum FieldValue {
        U64(u64),
        F64(f64),
        Str(String),
        Bool(bool),
    }

    /// One structured event, built field-by-field and handed to
    /// [`emit`]. Field order in the output line is insertion order.
    pub struct Event {
        ty: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
    }

    impl Event {
        /// Starts an event of the given type (see
        /// [`crate::schema::EVENTS`] for the documented types).
        pub fn new(ty: &'static str) -> Event {
            Event {
                ty,
                fields: Vec::new(),
            }
        }

        /// Appends an unsigned-integer field.
        ///
        /// Values are bounded at [`MAX_JSON_INT`](super::MAX_JSON_INT)
        /// (2^53 − 1) so double-based JSON parsers round-trip them
        /// exactly — the builder enforces this, so callers need no
        /// checks of their own: debug builds panic on a violation,
        /// release builds saturate to the bound. Fields that can
        /// legitimately span the full u64 range (64-bit seeds) go
        /// through [`Event::str`] as decimal strings instead.
        #[must_use]
        pub fn u64(mut self, key: &'static str, value: u64) -> Event {
            debug_assert!(
                value <= super::MAX_JSON_INT,
                "event field {key}={value} exceeds 2^53-1 and would not \
                 round-trip through an f64-based JSON parser"
            );
            let value = value.min(super::MAX_JSON_INT);
            self.fields.push((key, FieldValue::U64(value)));
            self
        }

        /// Appends a float field (rendered via shortest-round-trip
        /// `Display`; non-finite values render as `null`).
        #[must_use]
        pub fn f64(mut self, key: &'static str, value: f64) -> Event {
            self.fields.push((key, FieldValue::F64(value)));
            self
        }

        /// Appends a string field (JSON-escaped on render).
        #[must_use]
        pub fn str(mut self, key: &'static str, value: &str) -> Event {
            self.fields.push((key, FieldValue::Str(value.to_string())));
            self
        }

        /// Appends a boolean field.
        #[must_use]
        pub fn bool(mut self, key: &'static str, value: bool) -> Event {
            self.fields.push((key, FieldValue::Bool(value)));
            self
        }

        fn render(&self) -> String {
            let mut out = String::new();
            let _ = write!(
                out,
                "{{\"v\":{},\"ts_ns\":{},\"type\":",
                crate::schema::VERSION,
                now_ns()
            );
            push_json_str(&mut out, self.ty);
            for (key, value) in &self.fields {
                out.push(',');
                push_json_str(&mut out, key);
                out.push(':');
                match value {
                    FieldValue::U64(v) => {
                        let _ = write!(out, "{v}");
                    }
                    FieldValue::F64(v) if v.is_finite() => {
                        let _ = write!(out, "{v}");
                    }
                    FieldValue::F64(_) => out.push_str("null"),
                    FieldValue::Str(v) => push_json_str(&mut out, v),
                    FieldValue::Bool(v) => {
                        let _ = write!(out, "{v}");
                    }
                }
            }
            out.push('}');
            out
        }
    }

    fn push_json_str(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Writes one event line to the active sink; a cheap early return
    /// when no sink is active. Write errors — real or injected through
    /// [`set_write_fault_hook`] — are swallowed after being counted
    /// ([`write_failures`]): the event log is diagnostic output and
    /// must never fail the run it observes. A torn line is repaired by
    /// prefixing the *next* line with a bare newline, so one fault
    /// mangles at most one line and framing recovers by itself.
    pub fn emit(event: Event) {
        let mut sink = lock();
        match &mut *sink {
            SinkState::Off => {}
            SinkState::File {
                file,
                hook,
                index,
                pending_newline,
            } => {
                let fault = hook.as_mut().and_then(|h| h(*index));
                *index += 1;
                if *pending_newline {
                    // Restore framing after an earlier torn/failed
                    // write before appending this line.
                    if file.write_all(b"\n").is_err() {
                        WRITE_FAILURES.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    *pending_newline = false;
                }
                let mut line = event.render();
                line.push('\n');
                let bytes = line.as_bytes();
                match fault {
                    Some(WriteFault::Error) => {
                        // The whole line is lost; framing is intact.
                        WRITE_FAILURES.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(WriteFault::Torn { roll }) => {
                        // A strict prefix (without the newline) lands;
                        // the next emit repairs framing.
                        let keep = 1 + (roll as usize) % (bytes.len() - 1);
                        let _ = file.write_all(&bytes[..keep]);
                        WRITE_FAILURES.fetch_add(1, Ordering::Relaxed);
                        *pending_newline = true;
                    }
                    None => {
                        if file.write_all(bytes).is_err() {
                            // A real failure may have written any
                            // prefix; assume framing is broken.
                            WRITE_FAILURES.fetch_add(1, Ordering::Relaxed);
                            *pending_newline = true;
                        }
                    }
                }
            }
            SinkState::Memory(lines) => lines.push(event.render()),
        }
    }

    /// Starts logging events to `path` (created or truncated).
    /// Replaces any previously active sink.
    pub fn log_to_file(path: &Path) -> io::Result<()> {
        // lint: allow(chaos_seam_coverage, live append-only JSONL stream; rename semantics cannot apply, and torn writes are injected downstream via set_write_fault_hook at this very seam)
        let file = File::create(path)?;
        *lock() = SinkState::File {
            file,
            hook: None,
            index: 0,
            pending_newline: false,
        };
        Ok(())
    }

    /// Starts logging events to `path`, *appending* to an existing log
    /// instead of truncating it — the resume twin of [`log_to_file`].
    ///
    /// A crash (or an injected torn write) can leave the file's last
    /// line incomplete; that partial line is truncated away first, so
    /// the reopened log is valid JSONL from byte 0 and every complete
    /// line of the interrupted run is preserved. Replaces any
    /// previously active sink.
    pub fn log_to_file_resume(path: &Path) -> io::Result<()> {
        // lint: allow(chaos_seam_coverage, append-mode reopen of the live JSONL stream; partial-line truncation below is the torn-write recovery the durability tests drive through set_write_fault_hook)
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        // Keep everything up to (and including) the last newline; a
        // trailing partial line is dropped.
        let keep = match bytes.iter().rposition(|&b| b == b'\n') {
            Some(pos) => (pos + 1) as u64,
            None => 0,
        };
        file.set_len(keep)?;
        file.seek(io::SeekFrom::End(0))?;
        *lock() = SinkState::File {
            file,
            hook: None,
            index: 0,
            pending_newline: false,
        };
        Ok(())
    }

    /// Installs (or clears, with `None`) the write-fault hook on the
    /// active file sink. The hook is called with the index of each
    /// line about to be written (0-based, counted since the sink was
    /// installed) and returns the fault to inject, if any. No-op on a
    /// non-file sink. Chaos-testing support; the `repro-chaos` crate
    /// and DESIGN.md's failure-model section describe the seams.
    pub fn set_write_fault_hook(hook: Option<Box<dyn FnMut(u64) -> Option<WriteFault> + Send>>) {
        if let SinkState::File {
            hook: slot, index, ..
        } = &mut *lock()
        {
            *slot = hook;
            *index = 0;
        }
    }

    /// Event lines lost or mangled by write failures (real or
    /// injected) since process start. Monotonic; never reset.
    pub fn write_failures() -> u64 {
        WRITE_FAILURES.load(Ordering::Relaxed)
    }

    /// Starts logging events to an in-memory buffer (test support).
    /// Replaces any previously active sink.
    pub fn log_to_memory() {
        *lock() = SinkState::Memory(Vec::new());
    }

    /// Drains and returns the in-memory buffer's lines (empty if the
    /// active sink is not the memory sink). Logging continues.
    pub fn take_memory() -> Vec<String> {
        match &mut *lock() {
            SinkState::Memory(lines) => std::mem::take(lines),
            _ => Vec::new(),
        }
    }

    /// Deactivates the sink; a file sink is closed (every line was
    /// already written through).
    pub fn stop_logging() {
        *lock() = SinkState::Off;
    }
}

#[cfg(not(feature = "enabled"))]
mod noop {
    use std::io;
    use std::path::Path;

    /// A simulated write failure (disabled build: carried by the no-op
    /// hook signature only).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum WriteFault {
        /// The line write fails outright.
        Error,
        /// Only a prefix of the line reaches the file.
        Torn {
            /// Entropy selecting the truncation point.
            roll: u64,
        },
    }

    /// One structured event (disabled build: zero-sized, the builder
    /// records nothing).
    pub struct Event(());

    impl Event {
        /// Starts an event of the given type (no-op).
        pub fn new(_ty: &'static str) -> Event {
            Event(())
        }

        /// Appends an unsigned-integer field (no-op).
        #[must_use]
        pub fn u64(self, _key: &'static str, _value: u64) -> Event {
            self
        }

        /// Appends a float field (no-op).
        #[must_use]
        pub fn f64(self, _key: &'static str, _value: f64) -> Event {
            self
        }

        /// Appends a string field (no-op).
        #[must_use]
        pub fn str(self, _key: &'static str, _value: &str) -> Event {
            self
        }

        /// Appends a boolean field (no-op).
        #[must_use]
        pub fn bool(self, _key: &'static str, _value: bool) -> Event {
            self
        }
    }

    /// Writes one event line (no-op: disabled builds have no sink).
    #[inline(always)]
    pub fn emit(_event: Event) {}

    /// Starts logging to a file (disabled build: returns `Ok` without
    /// creating or touching any file).
    #[inline(always)]
    pub fn log_to_file(_path: &Path) -> io::Result<()> {
        Ok(())
    }

    /// Resumes logging to a file (disabled build: returns `Ok` without
    /// creating or touching any file).
    #[inline(always)]
    pub fn log_to_file_resume(_path: &Path) -> io::Result<()> {
        Ok(())
    }

    /// Installs the write-fault hook (no-op: there is no sink).
    #[inline(always)]
    pub fn set_write_fault_hook(
        _hook: Option<Box<dyn FnMut(u64) -> Option<WriteFault> + Send>>,
    ) {
    }

    /// Write-failure count (disabled build: always 0).
    #[inline(always)]
    pub fn write_failures() -> u64 {
        0
    }

    /// Starts logging to memory (no-op).
    #[inline(always)]
    pub fn log_to_memory() {}

    /// Returns the in-memory buffer (disabled build: always empty).
    #[inline(always)]
    pub fn take_memory() -> Vec<String> {
        Vec::new()
    }

    /// Deactivates the sink (no-op).
    #[inline(always)]
    pub fn stop_logging() {}
}
