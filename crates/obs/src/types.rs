//! Snapshot types shared by the enabled and disabled builds.
//!
//! These are plain data: a [`Snapshot`] is what [`crate::snapshot`]
//! returns after merging the calling thread's shard into the global
//! registry. In the disabled build the registry does not exist and
//! `snapshot()` returns `Snapshot::default()` (both renderers then
//! produce an empty string / an empty document).

use std::fmt::Write as _;

/// Which kind of series a [`SeriesStat`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// A timed scope; values are monotonic nanoseconds.
    Span,
    /// A value distribution recorded with `histogram!`.
    Histogram,
}

impl SeriesKind {
    /// Lower-case label used in the JSON rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            SeriesKind::Span => "span",
            SeriesKind::Histogram => "histogram",
        }
    }
}

/// A named monotonically increasing total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterStat {
    /// Counter name as declared at the `counter!` site.
    pub name: &'static str,
    /// Merged total across every flushed thread shard.
    pub value: u64,
}

/// Aggregated statistics for one span or histogram series.
///
/// `p50`/`p99` are approximate: values are bucketed into power-of-two
/// log buckets (bucket `i` holds values whose bit length is `i`), and a
/// quantile reports the *upper bound* of the bucket where the
/// cumulative count crosses it. The error is therefore at most 2x,
/// which is plenty for "where does the time go" questions; `sum`,
/// `min`, `max` and `count` are exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesStat {
    /// Series name as declared at the `span!`/`histogram!` site.
    pub name: &'static str,
    /// Span or histogram.
    pub kind: SeriesKind,
    /// Number of recorded values.
    pub count: u64,
    /// Exact sum of recorded values (nanoseconds for spans).
    pub sum: u64,
    /// Smallest recorded value (0 if `count == 0`).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Approximate median (upper bucket bound).
    pub p50: u64,
    /// Approximate 99th percentile (upper bucket bound).
    pub p99: u64,
}

/// A point-in-time copy of the metric registry, sorted by name.
///
/// Obtained from [`crate::snapshot`]; render with
/// [`to_prometheus_text`](Snapshot::to_prometheus_text) or
/// [`to_json`](Snapshot::to_json). An empty snapshot (the disabled
/// build, or no metrics recorded yet) renders to an empty Prometheus
/// document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All registered counters, sorted by name.
    pub counters: Vec<CounterStat>,
    /// All registered span/histogram series, sorted by name.
    pub series: Vec<SeriesStat>,
}

impl Snapshot {
    /// Renders the snapshot in the Prometheus text exposition style.
    ///
    /// Counters become `# TYPE name counter` / `name value` pairs;
    /// series become summary-style lines (`name{quantile="0.5"}`,
    /// `name_sum`, `name_count`) plus `name_min`/`name_max` gauges.
    /// Returns an empty string when the snapshot holds no metrics.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let _ = writeln!(out, "# TYPE {} counter", c.name);
            let _ = writeln!(out, "{} {}", c.name, c.value);
        }
        for s in &self.series {
            let _ = writeln!(out, "# TYPE {} summary", s.name);
            let _ = writeln!(out, "{}{{quantile=\"0.5\"}} {}", s.name, s.p50);
            let _ = writeln!(out, "{}{{quantile=\"0.99\"}} {}", s.name, s.p99);
            let _ = writeln!(out, "{}_sum {}", s.name, s.sum);
            let _ = writeln!(out, "{}_count {}", s.name, s.count);
            let _ = writeln!(out, "{}_min {}", s.name, s.min);
            let _ = writeln!(out, "{}_max {}", s.name, s.max);
        }
        out
    }

    /// Renders the snapshot as a single JSON object:
    /// `{"v":1,"counters":[{"name":…,"value":…},…],"series":[…]}`.
    ///
    /// Hand-rolled (this crate has no dependencies); all numbers are
    /// unsigned integers, so any JSON parser whose number type is an
    /// IEEE double reads them back exactly as long as they stay below
    /// 2^53 — counter totals and nanosecond sums in realistic runs do.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"v\":1,\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"value\":{}}}", c.name, c.value);
        }
        out.push_str("],\"series\":[");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{}}}",
                s.name,
                s.kind.as_str(),
                s.count,
                s.sum,
                s.min,
                s.max,
                s.p50,
                s.p99
            );
        }
        out.push_str("]}");
        out
    }
}
