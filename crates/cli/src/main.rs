//! `reram-ecc` — command-line front end for the arithmetic-code and
//! crossbar-reliability library.
//!
//! Subcommands:
//!
//! - `encode <A> <B> <value>` — encode a value with an A·B code.
//! - `decode <A> <B> <data_bits> <observed>` — residue, correction and
//!   detection for an observed computation result.
//! - `min-a <width>` — minimal single-error A for a coded width.
//! - `search <check_bits> [rows] [p]` — run the data-aware A search for
//!   a synthetic row-error model and print the winning table.
//! - `predict <cells_l0> <cells_l1> ...` — row error rate for a cell
//!   composition under the Table I device model.
//! - `overheads <check_bits>` — ECU area/power and tile/chip overheads.
//! - `lifetime <rewrites_per_day> <fault_rate>` — endurance lifetime.
//! - `campaign <scheme> <epochs> [flags]` — lifetime fault-injection
//!   campaign: per-epoch misclassification as stuck-at faults
//!   accumulate, with JSON checkpoints and `--resume`.
//! - `campaign-grid <spec.json> [flags]` — expand a JSON grid spec into
//!   cells (models × schemes × cell-bits × fault-rates × seeds), fan
//!   them across worker processes through the crash-safe lease/
//!   checkpoint substrate, and merge a columnar `grid_summary.json`.
//! - `serve [flags]` — resident inference service over line-delimited
//!   JSON on a loopback socket (programmed-engine pool, bounded
//!   queues, graceful wear-epoch swaps).
//! - `serve-send <port>` — pipe stdin request lines to a running
//!   service and print its response lines (smoke-test client).
//! - `serve-bench [flags]` — measure serve latency/throughput and
//!   write `BENCH_serve.json`.

use std::path::PathBuf;
use std::process::ExitCode;

use accel::analytic::ErrorModel;
use accel::campaign::{Campaign, CampaignConfig};
use accel::{AccelConfig, ProtectionScheme};
use ancode::data_aware::DataAwareConfig;
use ancode::{AbnCode, CorrectionPolicy, RowError, RowErrorModel};
use rand_chacha::rand_core::SeedableRng;
use wideint::{I256, U256};
use xbar::endurance::EnduranceParams;
use xbar::DeviceParams;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("encode") => cmd_encode(&args[1..]),
        Some("decode") => cmd_decode(&args[1..]),
        Some("min-a") => cmd_min_a(&args[1..]),
        Some("search") => cmd_search(&args[1..]),
        Some("predict") => cmd_predict(&args[1..]),
        Some("overheads") => cmd_overheads(&args[1..]),
        Some("lifetime") => cmd_lifetime(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("campaign-grid") => cmd_campaign_grid(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("serve-send") => cmd_serve_send(&args[1..]),
        Some("serve-bench") => cmd_serve_bench(&args[1..]),
        _ => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
reram-ecc — AN/ABN arithmetic codes for in-situ analog computation

usage:
  reram-ecc encode <A> <B> <value>
  reram-ecc decode <A> <B> <data_bits> <observed>
  reram-ecc min-a <coded_width>
  reram-ecc search <check_bits> [rows=9] [p_err=0.05]
  reram-ecc predict <count_level0> <count_level1> ...
  reram-ecc overheads <check_bits>
  reram-ecc lifetime <rewrites_per_day> <target_fault_rate>
  reram-ecc campaign <scheme> <epochs> [--samples N] [--train N] [--seed S]
             [--threads T] [--batch N] [--cell-bits B] [--model mlp1|mlp2]
             [--error-model analytic|mc|auto]
             [--writes-per-epoch W] [--initial-writes W]
             [--checkpoint-every K] [--remap] [--out PATH]
             [--resume | --resume-or-new]
             [--metrics PATH] [--events PATH] [--chaos-seed S]
             [--max-lost-shards N] [--watchdog-ms MS]
             [--shard-retries N] [--retry-backoff-ms MS]
  reram-ecc campaign-grid <spec.json> [--dir D] [--workers N]
             [--in-process] [--merge-only] [--chaos-seed S]
             [--max-lost-cells N] [--cell-retries N] [--lease-retries N]
             [--watchdog-ms MS] [--events PATH]

grid campaigns (see DESIGN.md, grid lease protocol; README, Grid
campaigns):
  The spec JSON lists every axis explicitly: models, schemes,
  cell_bits, writes_per_epoch, seeds, plus scalar epochs/samples/
  train/threads/checkpoint_every/initial_writes/error_model. Each
  cell is one `campaign` run; the driver spawns `reram-ecc campaign …
  --resume-or-new` workers (or threads with --in-process), coordinates
  through CRC'd lease files + checkpoint slots, and merges
  `<dir>/grid_summary.json`. SIGKILL workers or the driver at will:
  re-running the same command resumes and the merged summary is
  byte-identical to an uninterrupted run. --max-lost-cells N drops at
  most N unrecoverable cells (recorded in lost_cells); --merge-only
  aggregates an already-finished directory without running anything

campaign error model (see DESIGN.md, analytic error model):
  --error-model M  mc (default): Monte-Carlo sampling, the ground
                   truth for final numbers. analytic: closed-form
                   moment propagation — milliseconds per epoch, valid
                   only without retries/remap/chaos, and incompatible
                   with --resume (a checkpoint series must stay
                   single-estimator). auto: resolves to mc inside
                   campaigns so recorded series stay byte-identical

campaign throughput:
  --batch N       input vectors per MVM pass (default 1). Batching
                  amortizes each stack's RTN snapshot and row read-outs
                  across the batch; like --threads, it changes the
                  noise draws but not the estimator

campaign observability (see DESIGN.md §8):
  --metrics PATH  write a final metric snapshot (Prometheus text, or
                  JSON when PATH ends in .json)
  --events PATH   stream per-epoch/per-shard JSONL events to PATH
                  (with --resume, appends after truncating any line a
                  crash left incomplete)

campaign durability (see DESIGN.md, failure model & recovery):
  --chaos-seed S       inject the standard deterministic fault mix at
                       every I/O and worker seam, seeded by S; the
                       final results must still match a clean run
  --max-lost-shards N  graceful degradation: drop at most N failed
                       worker shards campaign-wide, recording their
                       sample ranges as explicit gaps (default 0)
  --watchdog-ms MS     deadline on each shard's evaluation loop; a
                       shard over it is killed at the next sample
                       boundary and retried seed-stable (default: no
                       deadline)
  --shard-retries N    seed-stable retries per failed shard (default 1)
  --retry-backoff-ms MS  backoff before retry k, doubling per attempt

serving:
  reram-ecc serve [--seed S] [--workers N] [--queue N] [--train N]
             [--samples N] [--hidden N] [--linger-ms MS] [--retries N]
             [--writes-per-epoch W] [--initial-writes W]
             [--events PATH] [--chaos-seed S]
  reram-ecc serve-send <port> [--idle-ms MS]
  reram-ecc serve-bench [--seed S] [--requests N] [--out PATH]

  serve prints {\"type\":\"ready\",\"port\":N} on stdout once listening,
  then runs until {\"admin\":\"shutdown\"} arrives on the socket. One
  request per line; see DESIGN.md (service architecture & overload
  model) for the protocol and rejection semantics. serve-send pipes
  stdin lines to a running service and echoes response lines until the
  socket has been idle for --idle-ms (default 600).
";

fn parse<T: std::str::FromStr>(args: &[String], i: usize, name: &str) -> Result<T, String> {
    args.get(i)
        .ok_or_else(|| format!("missing argument <{name}>"))?
        .parse()
        .map_err(|_| format!("invalid <{name}>: {}", args[i]))
}

fn cmd_encode(args: &[String]) -> Result<(), String> {
    let a: u64 = parse(args, 0, "A")?;
    let b: u64 = parse(args, 1, "B")?;
    let value: u64 = parse(args, 2, "value")?;
    let bits = 64 - value.leading_zeros().min(63);
    let code = AbnCode::classic(a, b, bits.max(1)).map_err(|e| e.to_string())?;
    let encoded = code.encode(U256::from(value)).map_err(|e| e.to_string())?;
    println!("A·B = {}", code.multiplier());
    println!("encoded = {encoded}");
    println!("check bits = {}", code.check_bits());
    Ok(())
}

fn cmd_decode(args: &[String]) -> Result<(), String> {
    let a: u64 = parse(args, 0, "A")?;
    let b: u64 = parse(args, 1, "B")?;
    let data_bits: u32 = parse(args, 2, "data_bits")?;
    let observed: i128 = parse(args, 3, "observed")?;
    let code = AbnCode::classic(a, b, data_bits).map_err(|e| e.to_string())?;
    let out = code.decode(I256::from_i128(observed), CorrectionPolicy::Revert);
    println!("residue mod {a} = {}", observed.rem_euclid(a as i128));
    println!("status  = {}", out.status);
    println!("decoded = {}", out.value);
    Ok(())
}

fn cmd_min_a(args: &[String]) -> Result<(), String> {
    let width: u32 = parse(args, 0, "coded_width")?;
    if !(1..=200).contains(&width) {
        return Err("width must be in 1..=200".into());
    }
    println!("{}", ancode::min_single_error_a(width));
    Ok(())
}

fn cmd_search(args: &[String]) -> Result<(), String> {
    let check_bits: u32 = parse(args, 0, "check_bits")?;
    let rows: u32 = if args.len() > 1 { parse(args, 1, "rows")? } else { 9 };
    let p: f64 = if args.len() > 2 { parse(args, 2, "p_err")? } else { 0.05 };
    if !(0.0..=1.0).contains(&p) {
        return Err("p_err must be in [0, 1]".into());
    }
    let model = RowErrorModel::new(
        (0..rows)
            .map(|r| RowError::symmetric(r * 2, p * (r + 1) as f64 / rows as f64))
            .collect(),
        16,
    );
    let result = ancode::search::select_a_full(
        check_bits,
        3,
        16,
        &DataAwareConfig::default(),
        |_| Ok(model.clone()),
    )
    .map_err(|e| e.to_string())?;
    println!(
        "best A = {} ({} candidates, coverage {:.5})",
        result.code.a(),
        result.evaluated,
        result.coverage
    );
    print!("{}", result.code.table());
    Ok(())
}

fn cmd_predict(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        return Err("need at least one level count".into());
    }
    let composition: Vec<u32> = args
        .iter()
        .map(|a| a.parse().map_err(|_| format!("invalid count: {a}")))
        .collect::<Result<_, _>>()?;
    let bits = (composition.len() as u32).next_power_of_two().trailing_zeros();
    let params = DeviceParams {
        bits_per_cell: bits.max(1),
        ..DeviceParams::default()
    };
    if composition.len() != params.levels() as usize {
        return Err(format!(
            "composition must have a power-of-two number of levels, got {}",
            composition.len()
        ));
    }
    let rate = xbar::rowerr::predict_composition(&composition, &params);
    println!("p_high = {:.6}", rate.p_high);
    println!("p_low  = {:.6}", rate.p_low);
    println!("p_any  = {:.6}", rate.p_any());
    Ok(())
}

fn cmd_overheads(args: &[String]) -> Result<(), String> {
    let bits: u32 = parse(args, 0, "check_bits")?;
    if !(1..=12).contains(&bits) {
        return Err("check_bits must be in 1..=12".into());
    }
    let r = accel::cost::overheads(bits);
    println!("ECU:   {:.4} mm²  {:.2} mW", r.ecu.area_mm2, r.ecu.power_mw);
    println!("table: {:.4} mm²  {:.2} mW", r.table.area_mm2, r.table.power_mw);
    println!("tile area overhead:  {:.2}%", r.tile_area_fraction * 100.0);
    println!("chip area overhead:  {:.2}%", r.chip_area_fraction * 100.0);
    println!("chip power overhead: {:.2}%", r.chip_power_fraction * 100.0);
    Ok(())
}

fn cmd_lifetime(args: &[String]) -> Result<(), String> {
    let rewrites: f64 = parse(args, 0, "rewrites_per_day")?;
    let rate: f64 = parse(args, 1, "target_fault_rate")?;
    if rewrites <= 0.0 {
        return Err("rewrites_per_day must be positive".into());
    }
    if !(0.0..1.0).contains(&rate) || rate == 0.0 {
        return Err("target_fault_rate must be in (0, 1)".into());
    }
    let params = EnduranceParams::default();
    println!(
        "writes to reach {:.3}% stuck cells: {:.3e}",
        rate * 100.0,
        params.writes_for_failure_rate(rate)
    );
    println!(
        "lifetime at {rewrites} rewrites/day: {:.1} years",
        params.lifetime_years(rewrites, rate)
    );
    Ok(())
}

/// Runs a lifetime fault-injection campaign on a small trained network.
///
/// Trains an MLP on the synthetic digits task (sized by `--train`),
/// then steps simulated wear forward for `<epochs>` epochs, evaluating
/// `--samples` test examples at each epoch's stuck-at fault rate. The
/// campaign state checkpoints to `--out` (default
/// `results/campaign-<scheme>.json`) after every `--checkpoint-every`
/// epochs; `--resume` continues an interrupted campaign from that file.
/// On a mid-campaign error, completed epochs are saved before exiting
/// non-zero, so partial results are never lost.
/// Trains the CLI's small demo workload for `model` and returns the
/// quantized network plus test split. This exact recipe (seeds 17 / 42
/// / 99, three epochs of batch-32 SGD at lr 0.1) is shared by
/// `campaign` and `campaign-grid`'s in-process mode, so a grid run is
/// byte-identical whichever launcher evaluated a cell.
fn train_problem(
    model: &str,
    train_n: usize,
    samples: usize,
) -> Result<(neural::QuantizedNetwork, neural::Tensor, Vec<usize>), String> {
    eprintln!("[campaign] training {model} on {train_n} synthetic digits…");
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
    let mut net = match model {
        "mlp1" => neural::models::mlp1(&mut rng),
        "mlp2" => neural::models::mlp2(&mut rng),
        other => return Err(format!("unknown model {other} (try mlp1, mlp2)")),
    };
    let mut train = neural::data::digits(train_n, 42);
    neural::data::shuffle(&mut train, 3);
    for _ in 0..3 {
        net.train_epoch(&train.images, &train.labels, 32, 0.1);
    }
    let qnet = neural::QuantizedNetwork::try_from_network(&net).map_err(|e| e.to_string())?;
    let test = neural::data::digits(samples, 99);
    Ok((qnet, test.images, test.labels))
}

fn cmd_campaign(args: &[String]) -> Result<(), String> {
    let scheme_label = args.first().ok_or("missing argument <scheme>")?;
    let scheme = ProtectionScheme::from_label(scheme_label).ok_or_else(|| {
        format!("unknown scheme {scheme_label} (try NoECC, Static16, Static128, ABN-7..ABN-10)")
    })?;
    let epochs: u64 = parse(args, 1, "epochs")?;

    let mut samples = 12usize;
    let mut train_n = 200usize;
    let mut seed = 7u64;
    let mut threads = 1usize;
    let mut batch = 1usize;
    let mut cell_bits = 2u32;
    let mut model = "mlp2".to_string();
    let mut error_model = ErrorModel::Mc;
    let mut writes_per_epoch = 2e5f64;
    let mut initial_writes = 1e6f64;
    let mut checkpoint_every = 1u64;
    let mut remap = false;
    let mut resume = false;
    let mut resume_or_new = false;
    let mut out: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut events: Option<String> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut max_lost_shards = 0usize;
    let mut watchdog_ms = 0u64;
    let mut shard_retries = 1u32;
    let mut retry_backoff_ms = 0u64;

    let mut i = 2;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |name: &str| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag {
            "--samples" => samples = parsed(value("--samples")?, "samples")?,
            "--train" => train_n = parsed(value("--train")?, "train")?,
            "--seed" => seed = parsed(value("--seed")?, "seed")?,
            "--threads" => threads = parsed(value("--threads")?, "threads")?,
            "--batch" => batch = parsed(value("--batch")?, "batch")?,
            "--cell-bits" => cell_bits = parsed(value("--cell-bits")?, "cell-bits")?,
            "--model" => model = value("--model")?.clone(),
            "--error-model" => {
                let label = value("--error-model")?;
                error_model = ErrorModel::from_label(label).ok_or_else(|| {
                    format!("unknown error model {label} (try analytic, mc, auto)")
                })?;
            }
            "--writes-per-epoch" => {
                writes_per_epoch = parsed(value("--writes-per-epoch")?, "writes-per-epoch")?;
            }
            "--initial-writes" => {
                initial_writes = parsed(value("--initial-writes")?, "initial-writes")?;
            }
            "--checkpoint-every" => {
                checkpoint_every = parsed(value("--checkpoint-every")?, "checkpoint-every")?;
            }
            "--out" => out = Some(value("--out")?.clone()),
            "--metrics" => metrics = Some(value("--metrics")?.clone()),
            "--events" => events = Some(value("--events")?.clone()),
            "--chaos-seed" => {
                chaos_seed = Some(parsed(value("--chaos-seed")?, "chaos-seed")?);
            }
            "--max-lost-shards" => {
                max_lost_shards = parsed(value("--max-lost-shards")?, "max-lost-shards")?;
            }
            "--watchdog-ms" => watchdog_ms = parsed(value("--watchdog-ms")?, "watchdog-ms")?,
            "--shard-retries" => {
                shard_retries = parsed(value("--shard-retries")?, "shard-retries")?;
            }
            "--retry-backoff-ms" => {
                retry_backoff_ms = parsed(value("--retry-backoff-ms")?, "retry-backoff-ms")?;
            }
            "--remap" => {
                remap = true;
                i += 1;
                continue;
            }
            "--resume" => {
                resume = true;
                i += 1;
                continue;
            }
            "--resume-or-new" => {
                resume_or_new = true;
                i += 1;
                continue;
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    if samples == 0 || train_n == 0 {
        return Err("--samples and --train must be positive".into());
    }
    if resume && resume_or_new {
        return Err("--resume and --resume-or-new are mutually exclusive".into());
    }
    if batch == 0 {
        return Err("--batch must be positive".into());
    }
    if !obs::enabled() && (metrics.is_some() || events.is_some()) {
        eprintln!("[campaign] note: this binary was built without metrics; --metrics/--events will record nothing");
    }
    let chaos = chaos_seed.map(chaos::ChaosSchedule::standard);
    if let Some(path) = &events {
        let p = std::path::Path::new(path);
        // On resume, append to the interrupted run's log (truncating a
        // line a crash left incomplete) instead of clobbering it.
        let opened = if resume || resume_or_new {
            obs::events::log_to_file_resume(p)
        } else {
            obs::events::log_to_file(p)
        };
        opened.map_err(|e| format!("cannot open event log {path}: {e}"))?;
        if let Some(schedule) = chaos {
            // Chaos covers the event-log seam too: inject line-write
            // faults from the same deterministic schedule.
            obs::events::set_write_fault_hook(Some(Box::new(move |index| {
                match schedule.io_fault(chaos::Seam::EventWrite, index) {
                    Some(chaos::IoFault::Error(_)) => Some(obs::events::WriteFault::Error),
                    Some(chaos::IoFault::Torn { roll }) => {
                        Some(obs::events::WriteFault::Torn { roll })
                    }
                    Some(chaos::IoFault::BitFlip { .. }) | None => None,
                }
            })));
        }
    }

    // A small trained workload keeps the CLI demo fast; the bench
    // driver (`lifetime_campaign`) runs the paper-scale networks.
    let (qnet, test_images, test_labels) = train_problem(&model, train_n, samples)?;

    let mut base = AccelConfig::new(scheme).with_cell_bits(cell_bits).with_batch(batch);
    base.remap = remap;
    base.watchdog_ns = watchdog_ms.saturating_mul(1_000_000);
    base.shard_retries = shard_retries;
    base.retry_backoff_ms = retry_backoff_ms;
    base.max_lost_shards = max_lost_shards;
    let mut config = CampaignConfig::new(base, epochs, seed);
    config.threads = threads;
    config.writes_per_epoch = writes_per_epoch;
    config.initial_writes = initial_writes;
    config.checkpoint_every = checkpoint_every;
    config.error_model = error_model;

    let out_path =
        PathBuf::from(out.unwrap_or_else(|| format!("results/campaign-{scheme_label}.json")));
    let mut campaign = if resume {
        Campaign::resume_with_chaos(config, &out_path, chaos).map_err(|e| e.to_string())?
    } else if resume_or_new {
        // Grid workers and other supervisors use this: resume when any
        // verifiable artifact exists, start fresh when the path is
        // empty or every artifact is corrupt (recomputable either way).
        Campaign::new_or_resume_with_chaos(config, &out_path, chaos).map_err(|e| e.to_string())?
    } else {
        let mut fresh = Campaign::new(config)
            .map_err(|e| e.to_string())?
            .with_checkpoint(out_path.clone());
        if let Some(schedule) = chaos {
            fresh = fresh.with_chaos(schedule);
        }
        fresh
    };
    if campaign.completed_epochs() > 0 {
        eprintln!(
            "[campaign] resuming after epoch {}",
            campaign.completed_epochs() - 1
        );
    }

    if let Err(e) = campaign.run(&qnet, &test_images, &test_labels) {
        // Partial-result dump: completed epochs survive the failure.
        // The event log already holds every line up to the failure
        // (written through per event); just detach the sink.
        let _ = campaign.save_checkpoint();
        write_metrics_snapshot(metrics.as_deref());
        obs::events::stop_logging();
        eprintln!(
            "[campaign] failed after {} completed epochs; partial results in the \
             checkpoint slots next to {} (rerun with --resume)",
            campaign.completed_epochs(),
            out_path.display()
        );
        return Err(e.to_string());
    }
    // A resume that found every epoch already in the checkpoint slots
    // has nothing to run; make sure the final artifact still lands
    // (byte-identical rewrite when it already exists).
    campaign.finalize().map_err(|e| e.to_string())?;

    println!(
        "{:>5} {:>12} {:>10} {:>10} {:>8} {:>11} {:>14}",
        "epoch", "writes", "faults", "misclass", "flips", "corrected", "uncorrectable"
    );
    for r in &campaign.state().completed {
        println!(
            "{:>5} {:>12.3e} {:>9.3}% {:>9.1}% {:>7.1}% {:>11} {:>14}",
            r.epoch,
            r.writes,
            r.fault_rate * 100.0,
            r.misclassification * 100.0,
            r.flip_rate * 100.0,
            r.corrected,
            r.uncorrectable
        );
    }
    let lost_samples: u64 = campaign.state().completed.iter().map(|r| r.lost_samples).sum();
    if lost_samples > 0 {
        let gap_count: usize = campaign.state().completed.iter().map(|r| r.gaps.len()).sum();
        println!(
            "graceful degradation: {lost_samples} samples dropped across {gap_count} \
             lost shard(s); per-epoch gaps are recorded in the checkpoint"
        );
    }
    println!("checkpoint: {}", out_path.display());
    write_metrics_snapshot(metrics.as_deref());
    obs::events::stop_logging();
    if obs::enabled() {
        print_metrics_summary();
    }
    if let Some(path) = &events {
        println!("event log:  {path}");
    }
    Ok(())
}

/// Runs (or merges) a sharded campaign grid: expand the spec, fan the
/// cells across workers through the crash-safe lease + checkpoint
/// substrate, and merge the columnar summary. Killing this driver —
/// or any of its workers — at any point is recoverable by re-running
/// the same command.
fn cmd_campaign_grid(args: &[String]) -> Result<(), String> {
    use accel::grid::{Grid, GridOptions, GridSpec, Launcher};

    let spec_path = args.first().ok_or("missing argument <spec.json>")?;
    let mut dir = PathBuf::from("results/grid");
    let mut workers = 2usize;
    let mut in_process = false;
    let mut merge_only = false;
    let mut chaos_seed: Option<u64> = None;
    let mut max_lost_cells = 0usize;
    let mut cell_retries = 2u32;
    let mut lease_retries = 3u32;
    let mut watchdog_ms = 0u64;
    let mut events: Option<String> = None;

    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |name: &str| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag {
            "--dir" => dir = PathBuf::from(value("--dir")?),
            "--workers" => workers = parsed(value("--workers")?, "workers")?,
            "--chaos-seed" => chaos_seed = Some(parsed(value("--chaos-seed")?, "chaos-seed")?),
            "--max-lost-cells" => {
                max_lost_cells = parsed(value("--max-lost-cells")?, "max-lost-cells")?;
            }
            "--cell-retries" => cell_retries = parsed(value("--cell-retries")?, "cell-retries")?,
            "--lease-retries" => {
                lease_retries = parsed(value("--lease-retries")?, "lease-retries")?;
            }
            "--watchdog-ms" => watchdog_ms = parsed(value("--watchdog-ms")?, "watchdog-ms")?,
            "--events" => events = Some(value("--events")?.clone()),
            "--in-process" => {
                in_process = true;
                i += 1;
                continue;
            }
            "--merge-only" => {
                merge_only = true;
                i += 1;
                continue;
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    if workers == 0 {
        return Err("--workers must be positive".into());
    }

    let spec_text = std::fs::read_to_string(spec_path)
        .map_err(|e| format!("cannot read spec {spec_path}: {e}"))?;
    let spec = GridSpec::from_json(&spec_text).map_err(|e| e.to_string())?;
    let cells = spec.cells();
    eprintln!(
        "[grid] {} cells ({} models × {} schemes × {} cell-bits × {} write rates × {} seeds), \
         {} workers{}",
        cells.len(),
        spec.models.len(),
        spec.schemes.len(),
        spec.cell_bits.len(),
        spec.writes_per_epoch.len(),
        spec.seeds.len(),
        workers,
        if in_process { " (in-process)" } else { "" }
    );

    if let Some(path) = &events {
        // The driver's own event log (grid_cell_done / grid_cell_lost /
        // lease_takeover / chaos_fault). Always resume-opened: a
        // restarted driver appends to the history it is recovering.
        obs::events::log_to_file_resume(std::path::Path::new(path))
            .map_err(|e| format!("cannot open event log {path}: {e}"))?;
    }

    let launcher = if in_process {
        // Train each model once and share it across worker threads —
        // the same recipe process workers run, so results match.
        let mut problems = std::collections::HashMap::new();
        for model in &spec.models {
            let problem = train_problem(model, spec.train as usize, spec.samples as usize)?;
            problems.insert(model.clone(), std::sync::Arc::new(problem));
        }
        Launcher::InProcess { problems }
    } else {
        let program = std::env::current_exe()
            .map_err(|e| format!("cannot locate own binary for worker spawn: {e}"))?;
        Launcher::Process { program }
    };

    let options = GridOptions {
        workers,
        cell_retries,
        max_lost_cells,
        watchdog_ms,
        lease_retries,
        chaos: chaos_seed.map(chaos::ChaosSchedule::standard),
        owner: format!("driver-{}", std::process::id()),
    };
    let mut grid = Grid::new(spec, dir, launcher, options).map_err(|e| e.to_string())?;
    let report = if merge_only {
        grid.merge_only().map_err(|e| e.to_string())?
    } else {
        grid.run().map_err(|e| e.to_string())?
    };
    obs::events::stop_logging();

    println!(
        "grid: {} cell(s) done ({} already complete), {} lost",
        report.done,
        report.skipped,
        report.lost.len()
    );
    for id in &report.lost {
        println!("lost: {id}");
    }
    println!("summary: {}", report.summary_path.display());
    Ok(())
}

/// Starts the resident inference service and blocks until an admin
/// shutdown frame (or the process is killed). Prints a one-line ready
/// marker with the bound port on stdout so scripted callers can
/// connect without racing the bind.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use std::io::Write as _;

    let mut config = accel::serve::ServeConfig::default();
    let mut chaos_seed: Option<u64> = None;
    let mut events: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |name: &str| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag {
            "--seed" => config.seed = parsed(value("--seed")?, "seed")?,
            "--workers" => config.workers = parsed(value("--workers")?, "workers")?,
            "--queue" => config.queue_capacity = parsed(value("--queue")?, "queue")?,
            "--train" => config.train_examples = parsed(value("--train")?, "train")?,
            "--samples" => config.test_examples = parsed(value("--samples")?, "samples")?,
            "--hidden" => config.hidden_units = parsed(value("--hidden")?, "hidden")?,
            "--linger-ms" => config.linger_ms = parsed(value("--linger-ms")?, "linger-ms")?,
            "--retries" => config.request_retries = parsed(value("--retries")?, "retries")?,
            "--writes-per-epoch" => {
                config.writes_per_epoch = parsed(value("--writes-per-epoch")?, "writes-per-epoch")?;
            }
            "--initial-writes" => {
                config.initial_writes = parsed(value("--initial-writes")?, "initial-writes")?;
            }
            "--chaos-seed" => chaos_seed = Some(parsed(value("--chaos-seed")?, "chaos-seed")?),
            "--events" => events = Some(value("--events")?.clone()),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    config.chaos = chaos_seed.map(chaos::ChaosSchedule::standard);
    if let Some(path) = &events {
        obs::events::log_to_file(std::path::Path::new(path))
            .map_err(|e| format!("cannot open event log {path}: {e}"))?;
    }
    let service = accel::serve::Service::start(config).map_err(|e| e.to_string())?;
    println!("{{\"type\":\"ready\",\"port\":{}}}", service.port());
    let _ = std::io::stdout().flush();
    let report = service.join();
    obs::events::stop_logging();
    eprintln!(
        "[serve] served {} ok, rejected {} overloaded / {} deadline / {} bad / {} internal, \
         {} swaps, {} retries",
        report.stats.served,
        report.stats.rejected_overloaded,
        report.stats.rejected_deadline,
        report.stats.rejected_bad,
        report.stats.rejected_internal,
        report.stats.swaps,
        report.stats.retries,
    );
    Ok(())
}

/// Pipes stdin lines to a running service and prints every response
/// line the socket yields, exiting once it has been idle for
/// `--idle-ms`. The smoke-test client behind `scripts/check.sh`.
fn cmd_serve_send(args: &[String]) -> Result<(), String> {
    use std::io::{BufRead as _, Write as _};

    let port: u16 = parse(args, 0, "port")?;
    let mut idle_ms = 600u64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--idle-ms" => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| "flag --idle-ms needs a value".to_string())?;
                idle_ms = parsed(v, "idle-ms")?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    let stream = std::net::TcpStream::connect(("127.0.0.1", port))
        .map_err(|e| format!("cannot connect to 127.0.0.1:{port}: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_millis(100)))
        .map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = std::io::BufReader::new(stream);

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        writer
            .write_all(line.as_bytes())
            .and_then(|_| writer.write_all(b"\n"))
            .map_err(|e| format!("send failed: {e}"))?;
    }
    let _ = writer.flush();

    // Drain responses until the socket stays quiet for idle_ms (there
    // is no response-count contract under chaos: injected write faults
    // legitimately drop lines).
    let mut line = String::new();
    let mut quiet = 0u64;
    while quiet < idle_ms {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                print!("{line}");
                if !line.ends_with('\n') {
                    println!();
                }
                line.clear();
                quiet = 0;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                quiet += 100;
            }
            Err(_) => break,
        }
    }
    Ok(())
}

/// Runs the serve benchmark and writes `BENCH_serve.json` (cold vs
/// pool-hit latency, p50/p99 and throughput at two load levels).
fn cmd_serve_bench(args: &[String]) -> Result<(), String> {
    let mut seed = 7u64;
    let mut requests = 120usize;
    let mut out = "BENCH_serve.json".to_string();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |name: &str| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag {
            "--seed" => seed = parsed(value("--seed")?, "seed")?,
            "--requests" => requests = parsed(value("--requests")?, "requests")?,
            "--out" => out = value("--out")?.clone(),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    let report = accel::serve::bench::run(seed, requests).map_err(|e| e.to_string())?;
    accel::serve::bench::write_report(std::path::Path::new(&out), &report)
        .map_err(|e| e.to_string())?;
    print!("{}", accel::serve::bench::render_json(&report));
    eprintln!(
        "[serve-bench] cold {:.2} ms, warm p50 {:.3} ms, pool-hit speedup {:.1}x → {out}",
        report.cold_ns as f64 / 1e6,
        report.warm_p50_ns as f64 / 1e6,
        report.pool_hit_speedup,
    );
    Ok(())
}

/// Writes the final metric snapshot to `path` (no-op without a path):
/// Prometheus text, or the JSON rendering when the path ends in
/// `.json`. Failures are reported but never fail the run — metrics are
/// diagnostics, not results.
fn write_metrics_snapshot(path: Option<&str>) {
    let Some(path) = path else {
        return;
    };
    let snap = obs::snapshot();
    let rendered = if path.ends_with(".json") {
        let mut json = snap.to_json();
        json.push('\n');
        json
    } else {
        snap.to_prometheus_text()
    };
    if let Err(e) = std::fs::write(path, rendered) {
        eprintln!("[campaign] cannot write metrics snapshot {path}: {e}");
    } else {
        println!("metrics:    {path}");
    }
}

/// Prints the end-of-run metric summary: counter totals, per-span
/// timing aggregates (count, total, p50/p99 — approximate log-bucket
/// quantiles), and unitless histogram aggregates.
fn print_metrics_summary() {
    let snap = obs::snapshot();
    if snap.counters.is_empty() && snap.series.is_empty() {
        return;
    }
    println!();
    println!("{:<24} {:>14}", "counter", "total");
    for c in &snap.counters {
        println!("{:<24} {:>14}", c.name, c.value);
    }
    let spans: Vec<_> = snap
        .series
        .iter()
        .filter(|s| s.kind == obs::SeriesKind::Span)
        .collect();
    if !spans.is_empty() {
        println!();
        println!(
            "{:<24} {:>10} {:>12} {:>10} {:>10}",
            "span", "count", "total_ms", "p50_us", "p99_us"
        );
        for s in spans {
            println!(
                "{:<24} {:>10} {:>12.3} {:>10.1} {:>10.1}",
                s.name,
                s.count,
                s.sum as f64 / 1e6,
                s.p50 as f64 / 1e3,
                s.p99 as f64 / 1e3
            );
        }
    }
    // Histograms record plain values, not nanoseconds: no unit scaling.
    let histograms: Vec<_> = snap
        .series
        .iter()
        .filter(|s| s.kind == obs::SeriesKind::Histogram)
        .collect();
    if !histograms.is_empty() {
        println!();
        println!(
            "{:<24} {:>10} {:>14} {:>10} {:>10}",
            "histogram", "count", "sum", "p50", "p99"
        );
        for s in histograms {
            println!(
                "{:<24} {:>10} {:>14} {:>10} {:>10}",
                s.name, s.count, s.sum, s.p50, s.p99
            );
        }
    }
}

/// Parses a flag value (the flag-argument counterpart of [`parse`]).
fn parsed<T: std::str::FromStr>(value: &str, name: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("invalid <{name}>: {value}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    /// Campaign runs share the process-global event sink; serialize the
    /// tests that actually run campaigns so one test's epochs cannot
    /// leak into another's event log.
    static CAMPAIGN_GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn encode_and_decode_roundtrip() {
        assert!(cmd_encode(&s(&["19", "3", "26"])).is_ok());
        assert!(cmd_decode(&s(&["19", "3", "5", "1484"])).is_ok());
    }

    #[test]
    fn min_a_validates() {
        assert!(cmd_min_a(&s(&["9"])).is_ok());
        assert!(cmd_min_a(&s(&["0"])).is_err());
        assert!(cmd_min_a(&s(&["999"])).is_err());
    }

    #[test]
    fn search_runs() {
        assert!(cmd_search(&s(&["8"])).is_ok());
        assert!(cmd_search(&s(&["8", "6", "0.02"])).is_ok());
        assert!(cmd_search(&s(&["8", "6", "2.0"])).is_err());
    }

    #[test]
    fn predict_validates_levels() {
        assert!(cmd_predict(&s(&["32", "32", "32", "32"])).is_ok());
        assert!(cmd_predict(&s(&["32", "32", "32"])).is_err());
        assert!(cmd_predict(&s(&[])).is_err());
    }

    #[test]
    fn overheads_and_lifetime() {
        assert!(cmd_overheads(&s(&["9"])).is_ok());
        assert!(cmd_overheads(&s(&["20"])).is_err());
        assert!(cmd_lifetime(&s(&["1.0", "0.001"])).is_ok());
        assert!(cmd_lifetime(&s(&["0", "0.001"])).is_err());
        assert!(cmd_lifetime(&s(&["1.0", "1.5"])).is_err());
    }

    #[test]
    fn missing_args_reported() {
        assert!(cmd_encode(&s(&["19"])).is_err());
        assert!(cmd_decode(&s(&["19", "3"])).is_err());
    }

    #[test]
    fn campaign_validates_arguments() {
        assert!(cmd_campaign(&s(&[])).is_err());
        assert!(cmd_campaign(&s(&["BogusScheme", "2"])).is_err());
        assert!(cmd_campaign(&s(&["NoECC"])).is_err());
        assert!(cmd_campaign(&s(&["NoECC", "2", "--bogus-flag"])).is_err());
        assert!(cmd_campaign(&s(&["NoECC", "2", "--samples"])).is_err());
        assert!(cmd_campaign(&s(&["NoECC", "2", "--samples", "0"])).is_err());
        assert!(cmd_campaign(&s(&["NoECC", "2", "--metrics"])).is_err());
        assert!(cmd_campaign(&s(&["NoECC", "2", "--events"])).is_err());
        assert!(cmd_campaign(&s(&["NoECC", "2", "--batch"])).is_err());
        assert!(cmd_campaign(&s(&["NoECC", "2", "--batch", "zero"])).is_err());
        // batch 0 parses but fails AccelConfig validation downstream.
        assert!(cmd_campaign(&s(&["NoECC", "2", "--batch", "0"])).is_err());
        // An unopenable event-log path fails before any training work.
        assert!(cmd_campaign(&s(&[
            "NoECC",
            "2",
            "--events",
            "/nonexistent-dir/events.jsonl"
        ]))
        .is_err());
        // --error-model accepts exactly the three documented labels.
        assert!(cmd_campaign(&s(&["NoECC", "2", "--error-model"])).is_err());
        let bad = cmd_campaign(&s(&["NoECC", "2", "--error-model", "exact"]));
        assert!(bad.unwrap_err().contains("unknown error model"));
        for label in ["analytic", "mc", "auto"] {
            assert!(ErrorModel::from_label(label).is_some(), "{label}");
        }
    }

    #[test]
    fn campaign_writes_metrics_and_events() {
        let _g = CAMPAIGN_GUARD.lock().unwrap_or_else(|p| p.into_inner());
        let pid = std::process::id();
        let out = std::env::temp_dir().join(format!("cli-campaign-obs-{pid}.json"));
        let metrics = std::env::temp_dir().join(format!("cli-campaign-obs-{pid}.prom"));
        let events = std::env::temp_dir().join(format!("cli-campaign-obs-{pid}.jsonl"));
        let (out_s, metrics_s, events_s) = (
            out.display().to_string(),
            metrics.display().to_string(),
            events.display().to_string(),
        );
        let args = [
            "NoECC", "2", "--samples", "3", "--train", "40", "--out", &out_s, "--metrics",
            &metrics_s, "--events", &events_s,
        ];
        assert_eq!(cmd_campaign(&s(&args)), Ok(()));
        // This test binary builds accel with the `obs` feature, so the
        // sinks must hold real telemetry.
        let prom = std::fs::read_to_string(&metrics).expect("metrics snapshot written");
        assert!(prom.contains("ecc_clean"), "snapshot:\n{prom}");
        assert!(prom.contains("# TYPE mvm summary"), "snapshot:\n{prom}");
        let log = std::fs::read_to_string(&events).expect("event log written");
        let epoch_lines = log
            .lines()
            .filter(|l| l.contains("\"type\":\"campaign_epoch\""))
            .count();
        assert_eq!(epoch_lines, 2, "log:\n{log}");
        assert!(log.contains("\"type\":\"shard_done\""), "log:\n{log}");
        for path in [&out, &metrics, &events] {
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn campaign_runs_and_resumes() {
        let _g = CAMPAIGN_GUARD.lock().unwrap_or_else(|p| p.into_inner());
        let out = std::env::temp_dir().join(format!("cli-campaign-{}.json", std::process::id()));
        let out_s = out.display().to_string();
        // Tiny run: 2 epochs, 3 samples, 40 training digits.
        let base = ["NoECC", "2", "--samples", "3", "--train", "40", "--out", &out_s];
        assert_eq!(cmd_campaign(&s(&base)), Ok(()));
        assert!(out.exists());
        // Resuming a complete campaign is a no-op that succeeds.
        let mut with_resume: Vec<&str> = base.to_vec();
        with_resume.push("--resume");
        assert_eq!(cmd_campaign(&s(&with_resume)), Ok(()));
        // Resuming under different parameters is rejected.
        let mismatched = [
            "NoECC", "2", "--samples", "3", "--train", "40", "--out", &out_s, "--resume",
            "--seed", "99",
        ];
        assert!(cmd_campaign(&s(&mismatched)).is_err());
        let _ = std::fs::remove_file(&out);
    }
}
