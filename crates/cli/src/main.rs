//! `reram-ecc` — command-line front end for the arithmetic-code and
//! crossbar-reliability library.
//!
//! Subcommands:
//!
//! - `encode <A> <B> <value>` — encode a value with an A·B code.
//! - `decode <A> <B> <data_bits> <observed>` — residue, correction and
//!   detection for an observed computation result.
//! - `min-a <width>` — minimal single-error A for a coded width.
//! - `search <check_bits> [rows] [p]` — run the data-aware A search for
//!   a synthetic row-error model and print the winning table.
//! - `predict <cells_l0> <cells_l1> ...` — row error rate for a cell
//!   composition under the Table I device model.
//! - `overheads <check_bits>` — ECU area/power and tile/chip overheads.
//! - `lifetime <rewrites_per_day> <fault_rate>` — endurance lifetime.

use std::process::ExitCode;

use ancode::data_aware::DataAwareConfig;
use ancode::{AbnCode, CorrectionPolicy, RowError, RowErrorModel};
use wideint::{I256, U256};
use xbar::endurance::EnduranceParams;
use xbar::DeviceParams;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("encode") => cmd_encode(&args[1..]),
        Some("decode") => cmd_decode(&args[1..]),
        Some("min-a") => cmd_min_a(&args[1..]),
        Some("search") => cmd_search(&args[1..]),
        Some("predict") => cmd_predict(&args[1..]),
        Some("overheads") => cmd_overheads(&args[1..]),
        Some("lifetime") => cmd_lifetime(&args[1..]),
        _ => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
reram-ecc — AN/ABN arithmetic codes for in-situ analog computation

usage:
  reram-ecc encode <A> <B> <value>
  reram-ecc decode <A> <B> <data_bits> <observed>
  reram-ecc min-a <coded_width>
  reram-ecc search <check_bits> [rows=9] [p_err=0.05]
  reram-ecc predict <count_level0> <count_level1> ...
  reram-ecc overheads <check_bits>
  reram-ecc lifetime <rewrites_per_day> <target_fault_rate>
";

fn parse<T: std::str::FromStr>(args: &[String], i: usize, name: &str) -> Result<T, String> {
    args.get(i)
        .ok_or_else(|| format!("missing argument <{name}>"))?
        .parse()
        .map_err(|_| format!("invalid <{name}>: {}", args[i]))
}

fn cmd_encode(args: &[String]) -> Result<(), String> {
    let a: u64 = parse(args, 0, "A")?;
    let b: u64 = parse(args, 1, "B")?;
    let value: u64 = parse(args, 2, "value")?;
    let bits = 64 - value.leading_zeros().min(63);
    let code = AbnCode::classic(a, b, bits.max(1)).map_err(|e| e.to_string())?;
    let encoded = code.encode(U256::from(value)).map_err(|e| e.to_string())?;
    println!("A·B = {}", code.multiplier());
    println!("encoded = {encoded}");
    println!("check bits = {}", code.check_bits());
    Ok(())
}

fn cmd_decode(args: &[String]) -> Result<(), String> {
    let a: u64 = parse(args, 0, "A")?;
    let b: u64 = parse(args, 1, "B")?;
    let data_bits: u32 = parse(args, 2, "data_bits")?;
    let observed: i128 = parse(args, 3, "observed")?;
    let code = AbnCode::classic(a, b, data_bits).map_err(|e| e.to_string())?;
    let out = code.decode(I256::from_i128(observed), CorrectionPolicy::Revert);
    println!("residue mod {a} = {}", observed.rem_euclid(a as i128));
    println!("status  = {}", out.status);
    println!("decoded = {}", out.value);
    Ok(())
}

fn cmd_min_a(args: &[String]) -> Result<(), String> {
    let width: u32 = parse(args, 0, "coded_width")?;
    if !(1..=200).contains(&width) {
        return Err("width must be in 1..=200".into());
    }
    println!("{}", ancode::min_single_error_a(width));
    Ok(())
}

fn cmd_search(args: &[String]) -> Result<(), String> {
    let check_bits: u32 = parse(args, 0, "check_bits")?;
    let rows: u32 = if args.len() > 1 { parse(args, 1, "rows")? } else { 9 };
    let p: f64 = if args.len() > 2 { parse(args, 2, "p_err")? } else { 0.05 };
    if !(0.0..=1.0).contains(&p) {
        return Err("p_err must be in [0, 1]".into());
    }
    let model = RowErrorModel::new(
        (0..rows)
            .map(|r| RowError::symmetric(r * 2, p * (r + 1) as f64 / rows as f64))
            .collect(),
        16,
    );
    let result = ancode::search::select_a_full(
        check_bits,
        3,
        16,
        &DataAwareConfig::default(),
        |_| model.clone(),
    )
    .map_err(|e| e.to_string())?;
    println!(
        "best A = {} ({} candidates, coverage {:.5})",
        result.code.a(),
        result.evaluated,
        result.coverage
    );
    print!("{}", result.code.table());
    Ok(())
}

fn cmd_predict(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        return Err("need at least one level count".into());
    }
    let composition: Vec<u32> = args
        .iter()
        .map(|a| a.parse().map_err(|_| format!("invalid count: {a}")))
        .collect::<Result<_, _>>()?;
    let bits = (composition.len() as u32).next_power_of_two().trailing_zeros();
    let params = DeviceParams {
        bits_per_cell: bits.max(1),
        ..DeviceParams::default()
    };
    if composition.len() != params.levels() as usize {
        return Err(format!(
            "composition must have a power-of-two number of levels, got {}",
            composition.len()
        ));
    }
    let rate = xbar::rowerr::predict_composition(&composition, &params);
    println!("p_high = {:.6}", rate.p_high);
    println!("p_low  = {:.6}", rate.p_low);
    println!("p_any  = {:.6}", rate.p_any());
    Ok(())
}

fn cmd_overheads(args: &[String]) -> Result<(), String> {
    let bits: u32 = parse(args, 0, "check_bits")?;
    if !(1..=12).contains(&bits) {
        return Err("check_bits must be in 1..=12".into());
    }
    let r = accel::cost::overheads(bits);
    println!("ECU:   {:.4} mm²  {:.2} mW", r.ecu.area_mm2, r.ecu.power_mw);
    println!("table: {:.4} mm²  {:.2} mW", r.table.area_mm2, r.table.power_mw);
    println!("tile area overhead:  {:.2}%", r.tile_area_fraction * 100.0);
    println!("chip area overhead:  {:.2}%", r.chip_area_fraction * 100.0);
    println!("chip power overhead: {:.2}%", r.chip_power_fraction * 100.0);
    Ok(())
}

fn cmd_lifetime(args: &[String]) -> Result<(), String> {
    let rewrites: f64 = parse(args, 0, "rewrites_per_day")?;
    let rate: f64 = parse(args, 1, "target_fault_rate")?;
    if rewrites <= 0.0 {
        return Err("rewrites_per_day must be positive".into());
    }
    if !(0.0..1.0).contains(&rate) || rate == 0.0 {
        return Err("target_fault_rate must be in (0, 1)".into());
    }
    let params = EnduranceParams::default();
    println!(
        "writes to reach {:.3}% stuck cells: {:.3e}",
        rate * 100.0,
        params.writes_for_failure_rate(rate)
    );
    println!(
        "lifetime at {rewrites} rewrites/day: {:.1} years",
        params.lifetime_years(rewrites, rate)
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn encode_and_decode_roundtrip() {
        assert!(cmd_encode(&s(&["19", "3", "26"])).is_ok());
        assert!(cmd_decode(&s(&["19", "3", "5", "1484"])).is_ok());
    }

    #[test]
    fn min_a_validates() {
        assert!(cmd_min_a(&s(&["9"])).is_ok());
        assert!(cmd_min_a(&s(&["0"])).is_err());
        assert!(cmd_min_a(&s(&["999"])).is_err());
    }

    #[test]
    fn search_runs() {
        assert!(cmd_search(&s(&["8"])).is_ok());
        assert!(cmd_search(&s(&["8", "6", "0.02"])).is_ok());
        assert!(cmd_search(&s(&["8", "6", "2.0"])).is_err());
    }

    #[test]
    fn predict_validates_levels() {
        assert!(cmd_predict(&s(&["32", "32", "32", "32"])).is_ok());
        assert!(cmd_predict(&s(&["32", "32", "32"])).is_err());
        assert!(cmd_predict(&s(&[])).is_err());
    }

    #[test]
    fn overheads_and_lifetime() {
        assert!(cmd_overheads(&s(&["9"])).is_ok());
        assert!(cmd_overheads(&s(&["20"])).is_err());
        assert!(cmd_lifetime(&s(&["1.0", "0.001"])).is_ok());
        assert!(cmd_lifetime(&s(&["0", "0.001"])).is_err());
        assert!(cmd_lifetime(&s(&["1.0", "1.5"])).is_err());
    }

    #[test]
    fn missing_args_reported() {
        assert!(cmd_encode(&s(&["19"])).is_err());
        assert!(cmd_decode(&s(&["19", "3"])).is_err());
    }
}
