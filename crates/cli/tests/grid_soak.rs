//! Grid-runner soak: kill anything, resume, get the same bytes.
//!
//! The tentpole invariant, end to end through the real binary: a
//! `campaign-grid` sweep whose worker processes AND driver are
//! SIGKILLed mid-run under the standard chaos schedule (seed 7), then
//! resumed with the same command line, produces a
//! `grid_summary.json` byte-identical to an uninterrupted fault-free
//! run. Leases, checkpoint slots, and the manifest absorb every kill;
//! nothing is re-randomized by a retry.
//!
//! Also here: merge resumability (the merge step regenerates the
//! summary byte-identically from per-cell artifacts whatever state a
//! kill left the old summary in) and field-by-field validation of the
//! driver's recorded grid events against `obs::schema`.
//!
//! Each test owns its own grid directory under the system temp dir, so
//! the tests are parallel-safe; runs are deterministic, so directories
//! are removed up front and rebuilt.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Two cells (NoECC and ABN-9 on one tiny mlp2 workload), two epochs,
/// per-epoch checkpoints — small enough for debug-mode soaks,
/// structured enough that a kill lands mid-cell with real state in the
/// A/B slots (debug-mode training alone keeps a worker alive for tens
/// of seconds, a wide kill window).
const SPEC: &str = r#"{
  "version": 1,
  "models": ["mlp2"],
  "schemes": ["NoECC", "ABN-9"],
  "cell_bits": [2],
  "writes_per_epoch": [200000.0],
  "seeds": [41],
  "epochs": 2,
  "samples": 4,
  "train": 120,
  "threads": 1,
  "checkpoint_every": 1,
  "initial_writes": 1000000.0,
  "error_model": "mc"
}"#;

fn soak_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("reram_grid_soak_{tag}_{}", std::process::id()))
}

fn write_spec(dir: &Path) -> PathBuf {
    std::fs::create_dir_all(dir).expect("create spec dir");
    let path = dir.join("spec.json");
    std::fs::write(&path, SPEC).expect("write spec");
    path
}

/// A `campaign-grid` driver invocation against `dir`.
fn driver(spec: &Path, dir: &Path, extra: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_reram-ecc"));
    cmd.arg("campaign-grid")
        .arg(spec)
        .arg("--dir")
        .arg(dir)
        .arg("--workers")
        .arg("2")
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for a in extra {
        cmd.arg(a);
    }
    cmd
}

fn run_to_completion(spec: &Path, dir: &Path, extra: &[&str]) {
    let status = driver(spec, dir, extra).status().expect("spawn driver");
    assert!(status.success(), "driver failed for {}", dir.display());
}

/// Finds a live worker subprocess of the grid at `dir`: a `campaign`
/// invocation writing its artifact under the grid directory (`--out`
/// is a worker-only flag; the driver's own argv carries `--dir`).
fn find_worker(dir: &Path) -> Option<u32> {
    let needle = dir.to_str().expect("utf8 dir");
    let proc_dir = std::fs::read_dir("/proc").ok()?;
    for entry in proc_dir.flatten() {
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        let Ok(raw) = std::fs::read(format!("/proc/{pid}/cmdline")) else {
            continue;
        };
        let argv: Vec<&str> = raw
            .split(|&b| b == 0)
            .filter_map(|s| std::str::from_utf8(s).ok())
            .collect();
        if argv.get(1) == Some(&"campaign")
            && argv.iter().any(|a| *a == "--out")
            && argv.iter().any(|a| a.contains(needle))
        {
            return Some(pid);
        }
    }
    None
}

fn sigkill(pid: u32) {
    let _ = Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status();
}

fn summary_bytes(dir: &Path) -> Vec<u8> {
    std::fs::read(dir.join("grid_summary.json")).expect("read grid summary")
}

/// Chaos-injection flags for the interrupted run and its resume: the
/// golden seed 7 (shared with the campaign and serve soaks), enough
/// cell retries to absorb injected spawn/lease faults, and a
/// zero-tolerance lost-cell budget — every cell must complete.
const CHAOS: [&str; 6] = [
    "--chaos-seed",
    "7",
    "--cell-retries",
    "6",
    "--max-lost-cells",
    "0",
];

/// Tentpole soak: SIGKILL a worker, then SIGKILL the driver, resume
/// with the same command line under the same chaos schedule, and
/// demand the merged summary match a fault-free run byte for byte.
#[test]
fn kill_worker_and_driver_resume_is_byte_identical() {
    let clean_dir = soak_dir("clean");
    let chaos_dir = soak_dir("chaos");
    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&chaos_dir);
    let spec = write_spec(&soak_dir("spec"));

    // Fault-free reference.
    run_to_completion(&spec, &clean_dir, &[]);
    let oracle = summary_bytes(&clean_dir);

    // Interrupted run: chaos on, one worker SIGKILLed mid-cell, then
    // the driver SIGKILLed while its leases are still claimed.
    let events = chaos_dir.with_extension("events.jsonl");
    let _ = std::fs::remove_file(&events);
    let events_arg = events.to_str().expect("utf8 events path").to_string();
    let mut chaos_args: Vec<&str> = CHAOS.to_vec();
    chaos_args.extend(["--events", &events_arg]);

    let mut interrupted = driver(&spec, &chaos_dir, &chaos_args)
        .spawn()
        .expect("spawn interrupted driver");
    let deadline = Instant::now() + Duration::from_secs(180);
    let worker = loop {
        if let Some(pid) = find_worker(&chaos_dir) {
            break pid;
        }
        if let Some(status) = interrupted.try_wait().expect("poll driver") {
            panic!("driver exited ({status}) before any worker could be killed");
        }
        assert!(Instant::now() < deadline, "no worker appeared within 180s");
        std::thread::sleep(Duration::from_millis(25));
    };
    sigkill(worker);
    // Give the retry machinery a beat so the driver dies with work
    // genuinely in flight, then kill it too.
    std::thread::sleep(Duration::from_millis(200));
    let _ = interrupted.kill();
    let _ = interrupted.wait();

    // Resume: same command line, same chaos seed. Stale leases from
    // the dead driver are taken over; killed cells resume from their
    // newest verifying checkpoint slot.
    run_to_completion(&spec, &chaos_dir, &chaos_args);
    assert_eq!(
        summary_bytes(&chaos_dir),
        oracle,
        "summary after kill+resume under chaos diverged from the fault-free run"
    );

    validate_events_against_schema(&events);
}

/// Merge resumability: whatever state a kill leaves the old summary in
/// (present, missing, or a torn legacy fragment), `--merge-only`
/// regenerates it byte-identically from the per-cell artifacts.
#[test]
fn merge_regenerates_summary_from_any_interrupted_state() {
    let dir = soak_dir("merge");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = write_spec(&soak_dir("merge_spec"));
    run_to_completion(&spec, &dir, &[]);
    let oracle = summary_bytes(&dir);
    let summary = dir.join("grid_summary.json");

    // Killed before the summary rename landed: no file at all.
    std::fs::remove_file(&summary).expect("remove summary");
    run_to_completion(&spec, &dir, &["--merge-only"]);
    assert_eq!(summary_bytes(&dir), oracle, "merge after missing summary diverged");

    // A torn fragment (not reachable through the atomic writer, but
    // the merge must not trust whatever bytes it finds regardless).
    std::fs::write(&summary, &oracle[..oracle.len() / 2]).expect("write fragment");
    run_to_completion(&spec, &dir, &["--merge-only"]);
    assert_eq!(summary_bytes(&dir), oracle, "merge over torn summary diverged");

    // A second merge over a complete summary is a byte-stable no-op.
    run_to_completion(&spec, &dir, &["--merge-only"]);
    assert_eq!(summary_bytes(&dir), oracle, "repeated merge not idempotent");
}

/// Field-by-field schema validation of the driver's event log: every
/// line parses, carries the current schema version, a known type, and
/// exactly the spec'd fields with the spec'd JSON kinds — including
/// the grid events (`grid_cell_done`, `lease_takeover`) this PR adds.
fn validate_events_against_schema(path: &Path) {
    use serde::Value;

    struct Echo(Value);
    impl serde::Deserialize for Echo {
        fn from_value(value: &Value) -> Result<Echo, String> {
            Ok(Echo(value.clone()))
        }
    }

    let text = std::fs::read_to_string(path).expect("read driver event log");
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert!(!lines.is_empty(), "driver run recorded no events");

    let mut seen_types: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut done_cells: std::collections::HashSet<String> = std::collections::HashSet::new();
    for line in &lines {
        let value = serde_json::from_str::<Echo>(line)
            .unwrap_or_else(|e| panic!("unparseable event line ({e}): {line}"))
            .0;
        let fields = value
            .as_object()
            .unwrap_or_else(|| panic!("event line is not an object: {line}"));
        match value.get("v") {
            Some(&Value::Number(n)) if n == obs::schema::VERSION as f64 => {}
            other => panic!("bad schema version {other:?} in: {line}"),
        }
        match value.get("ts_ns") {
            Some(&Value::Number(n)) if n >= 0.0 && n.fract() == 0.0 => {}
            other => panic!("bad ts_ns {other:?} in: {line}"),
        }
        let ty = match value.get("type") {
            Some(Value::String(s)) => s.clone(),
            other => panic!("bad type {other:?} in: {line}"),
        };
        let spec = obs::schema::spec_for(&ty)
            .unwrap_or_else(|| panic!("event type {ty} not in obs::schema::EVENTS: {line}"));
        for field in spec.fields {
            let got = value
                .get(field.name)
                .unwrap_or_else(|| panic!("{ty} line missing field {}: {line}", field.name));
            let kind_ok = match field.kind {
                obs::schema::FieldKind::U64 => {
                    matches!(got, &Value::Number(n) if n >= 0.0 && n.fract() == 0.0)
                }
                obs::schema::FieldKind::F64 => matches!(got, Value::Number(_)),
                obs::schema::FieldKind::Str => matches!(got, Value::String(_)),
                obs::schema::FieldKind::Bool => matches!(got, Value::Bool(_)),
            };
            assert!(
                kind_ok,
                "{ty} field {} has wrong kind (want {:?}): {line}",
                field.name, field.kind
            );
        }
        for (key, _) in fields {
            let known = key == "v"
                || key == "ts_ns"
                || key == "type"
                || spec.fields.iter().any(|f| f.name == key);
            assert!(known, "{ty} line carries undocumented field {key}: {line}");
        }
        if ty == "grid_cell_done" {
            if let Some(Value::String(cell)) = value.get("cell") {
                done_cells.insert(cell.clone());
            }
        }
        seen_types.insert(ty);
    }
    assert!(
        seen_types.contains("grid_cell_done"),
        "soak never recorded grid_cell_done; saw {seen_types:?}"
    );
    assert_eq!(
        done_cells.len(),
        2,
        "expected both cells sealed done in the event log; saw {done_cells:?}"
    );
    assert!(
        seen_types.contains("lease_takeover"),
        "resume after a driver SIGKILL must take over at least one stale lease; saw {seen_types:?}"
    );
}
