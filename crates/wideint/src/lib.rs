//! Fixed-width 256-bit integer arithmetic.
//!
//! The data-aware ABN codes in the [`ancode`] crate operate on *coded
//! operand groups*: up to eight 16-bit operands are concatenated into a
//! 128-bit block and then multiplied by the code constant `A·B` (up to ten
//! additional bits). The resulting values no longer fit in `u128`, so this
//! crate provides [`U256`], an unsigned 256-bit integer with the small set
//! of exact operations the codes require (addition, subtraction,
//! multiplication, division with remainder, shifts and bit manipulation),
//! plus [`I256`], a sign-and-magnitude companion used for additive error
//! syndromes, which may be negative.
//!
//! The implementation is self-contained (no external big-integer crates)
//! and deterministic: all operations are exact, and overflow behaviour is
//! explicit through the `checked_*`/`wrapping_*`/`overflowing_*` families.
//!
//! # Examples
//!
//! ```
//! use wideint::U256;
//!
//! let a = U256::from(79u64);
//! let n = U256::from(1024u64);
//! let coded = n * a;
//! let (q, r) = coded.div_rem_u64(79).unwrap();
//! assert_eq!(q, n);
//! assert_eq!(r, 0);
//! ```
//!
//! [`ancode`]: https://docs.rs/ancode

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod i256;
mod u256;

pub use i256::I256;
pub use u256::{ParseU256Error, U256};
