//! Unsigned 256-bit integer.

use std::cmp::Ordering;
use std::error::Error;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{
    Add, AddAssign, BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Div, Mul,
    MulAssign, Not, Rem, Shl, ShlAssign, Shr, ShrAssign, Sub, SubAssign,
};
use std::str::FromStr;

/// An unsigned 256-bit integer stored as four little-endian `u64` limbs.
///
/// `U256` supports the exact arithmetic required by arithmetic
/// error-correcting codes: wide multiplication, division with remainder,
/// and bit-level access. Arithmetic operators panic on overflow (like the
/// built-in integer types in debug mode, but unconditionally), while the
/// `checked_*`, `wrapping_*` and `overflowing_*` methods give explicit
/// control.
///
/// # Examples
///
/// ```
/// use wideint::U256;
///
/// let x = U256::from(u128::MAX);
/// let y = x + U256::ONE;
/// assert_eq!(y >> 128u32, U256::ONE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256 {
    limbs: [u64; 4],
}

impl U256 {
    /// The value `0`.
    pub const ZERO: U256 = U256 { limbs: [0; 4] };
    /// The value `1`.
    pub const ONE: U256 = U256 {
        limbs: [1, 0, 0, 0],
    };
    /// The largest representable value, `2^256 - 1`.
    pub const MAX: U256 = U256 {
        limbs: [u64::MAX; 4],
    };
    /// The number of bits in the type.
    pub const BITS: u32 = 256;

    /// Creates a value from little-endian limbs (`limbs[0]` is least
    /// significant).
    ///
    /// # Examples
    ///
    /// ```
    /// use wideint::U256;
    /// let x = U256::from_limbs([5, 0, 0, 0]);
    /// assert_eq!(x, U256::from(5u64));
    /// ```
    #[inline]
    pub const fn from_limbs(limbs: [u64; 4]) -> U256 {
        U256 { limbs }
    }

    /// Returns the little-endian limb representation.
    #[inline]
    pub const fn to_limbs(self) -> [u64; 4] {
        self.limbs
    }

    /// Returns `true` if the value is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.limbs[0] == 0 && self.limbs[1] == 0 && self.limbs[2] == 0 && self.limbs[3] == 0
    }

    /// Returns `2^exp`.
    ///
    /// # Panics
    ///
    /// Panics if `exp >= 256`.
    #[inline]
    pub fn pow2(exp: u32) -> U256 {
        assert!(exp < 256, "pow2 exponent {exp} out of range");
        U256::ONE << exp
    }

    /// Returns the value of bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    #[inline]
    pub fn bit(self, i: u32) -> bool {
        assert!(i < 256, "bit index {i} out of range");
        (self.limbs[(i / 64) as usize] >> (i % 64)) & 1 == 1 // lint: allow(lossy_cast, i < 256 so the limb index is < 4)
    }

    /// Returns a copy of `self` with bit `i` set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    #[inline]
    #[must_use]
    pub fn with_bit(mut self, i: u32, value: bool) -> U256 {
        assert!(i < 256, "bit index {i} out of range");
        let limb = &mut self.limbs[(i / 64) as usize]; // lint: allow(lossy_cast, i < 256 so the limb index is < 4)
        if value {
            *limb |= 1 << (i % 64);
        } else {
            *limb &= !(1 << (i % 64));
        }
        self
    }

    /// Returns the number of leading zero bits.
    #[inline]
    pub fn leading_zeros(self) -> u32 {
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            if limb != 0 {
                return (3 - i as u32) * 64 + limb.leading_zeros(); // lint: allow(lossy_cast, i is a limb index < 4)
            }
        }
        256
    }

    /// Returns the number of trailing zero bits (256 for zero).
    #[inline]
    pub fn trailing_zeros(self) -> u32 {
        for (i, &limb) in self.limbs.iter().enumerate() {
            if limb != 0 {
                return i as u32 * 64 + limb.trailing_zeros(); // lint: allow(lossy_cast, i is a limb index < 4)
            }
        }
        256
    }

    /// Returns the number of one bits.
    #[inline]
    pub fn count_ones(self) -> u32 {
        self.limbs.iter().map(|l| l.count_ones()).sum()
    }

    /// Returns the minimal number of bits needed to represent the value
    /// (`0` for zero).
    #[inline]
    pub fn bits(self) -> u32 {
        256 - self.leading_zeros()
    }

    /// Addition returning the wrapped result and a carry flag.
    #[inline]
    pub fn overflowing_add(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for i in 0..4 {
            let (s1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s2, c2) = s1.overflowing_add(u64::from(carry));
            out[i] = s2;
            carry = c1 || c2;
        }
        (U256 { limbs: out }, carry)
    }

    /// Subtraction returning the wrapped result and a borrow flag.
    #[inline]
    pub fn overflowing_sub(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for i in 0..4 {
            let (d1, b1) = self.limbs[i].overflowing_sub(rhs.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(u64::from(borrow));
            out[i] = d2;
            borrow = b1 || b2;
        }
        (U256 { limbs: out }, borrow)
    }

    /// Multiplication returning the low 256 bits and an overflow flag.
    pub fn overflowing_mul(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u64;
            for j in 0..4 {
                let wide = self.limbs[i] as u128 * rhs.limbs[j] as u128
                    + out[i + j] as u128
                    + carry as u128;
                out[i + j] = wide as u64; // lint: allow(lossy_cast, intentional low-half extraction of the 128-bit partial product)
                carry = (wide >> 64) as u64; // lint: allow(lossy_cast, high half fits after the shift)
            }
            out[i + 4] = out[i + 4].wrapping_add(carry);
        }
        let overflow = out[4] | out[5] | out[6] | out[7] != 0;
        (
            U256 {
                limbs: [out[0], out[1], out[2], out[3]],
            },
            overflow,
        )
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: U256) -> Option<U256> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Checked subtraction; `None` on underflow.
    #[inline]
    pub fn checked_sub(self, rhs: U256) -> Option<U256> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Checked multiplication; `None` on overflow.
    #[inline]
    pub fn checked_mul(self, rhs: U256) -> Option<U256> {
        match self.overflowing_mul(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Wrapping (modulo `2^256`) addition.
    #[inline]
    pub fn wrapping_add(self, rhs: U256) -> U256 {
        self.overflowing_add(rhs).0
    }

    /// Wrapping (modulo `2^256`) subtraction.
    #[inline]
    pub fn wrapping_sub(self, rhs: U256) -> U256 {
        self.overflowing_sub(rhs).0
    }

    /// Wrapping (modulo `2^256`) multiplication.
    #[inline]
    pub fn wrapping_mul(self, rhs: U256) -> U256 {
        self.overflowing_mul(rhs).0
    }

    /// Saturating subtraction: returns zero instead of wrapping.
    #[inline]
    pub fn saturating_sub(self, rhs: U256) -> U256 {
        self.checked_sub(rhs).unwrap_or(U256::ZERO)
    }

    /// Multiplies by a `u64`, returning `None` on overflow.
    #[inline]
    pub fn checked_mul_u64(self, rhs: u64) -> Option<U256> {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for i in 0..4 {
            let wide = self.limbs[i] as u128 * rhs as u128 + carry as u128;
            out[i] = wide as u64; // lint: allow(lossy_cast, intentional low-half extraction of the 128-bit partial product)
            carry = (wide >> 64) as u64; // lint: allow(lossy_cast, high half fits after the shift)
        }
        if carry != 0 {
            None
        } else {
            Some(U256 { limbs: out })
        }
    }

    /// Divides by a `u64` divisor, returning `(quotient, remainder)`.
    ///
    /// Returns `None` if `divisor == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use wideint::U256;
    /// let (q, r) = U256::from(1000u64).div_rem_u64(19).unwrap();
    /// assert_eq!((q, r), (U256::from(52u64), 12));
    /// ```
    #[inline]
    pub fn div_rem_u64(self, divisor: u64) -> Option<(U256, u64)> {
        if divisor == 0 {
            return None;
        }
        let mut quotient = [0u64; 4];
        let mut rem = 0u128;
        for i in (0..4).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            // Long-division invariant: rem < divisor <= u64::MAX going
            // in, so cur < divisor * 2^64 and the per-limb quotient
            // fits in 64 bits.
            quotient[i] = (cur / divisor as u128) as u64; // lint: allow(lossy_cast, quotient < 2^64 by the long-division invariant)
            rem = cur % divisor as u128;
        }
        Some((U256 { limbs: quotient }, rem as u64)) // lint: allow(lossy_cast, rem < divisor which is a u64)
    }

    /// Returns `self % divisor` for a `u64` divisor, or `None` if
    /// `divisor == 0`.
    #[inline]
    pub fn rem_u64(self, divisor: u64) -> Option<u64> {
        self.div_rem_u64(divisor).map(|(_, r)| r)
    }

    /// Full division with remainder.
    ///
    /// Returns `None` if `divisor` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use wideint::U256;
    /// let n = U256::from(12345u64);
    /// let d = U256::from(79u64);
    /// let (q, r) = n.div_rem(d).unwrap();
    /// assert_eq!(q * d + r, n);
    /// ```
    pub fn div_rem(self, divisor: U256) -> Option<(U256, U256)> {
        if divisor.is_zero() {
            return None;
        }
        if divisor.bits() <= 64 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0])?;
            return Some((q, U256::from(r)));
        }
        if self < divisor {
            return Some((U256::ZERO, self));
        }
        // Long division, one bit at a time, starting from the highest bit
        // of the dividend that could produce a nonzero quotient bit.
        let shift = divisor.leading_zeros() - self.leading_zeros();
        let mut quotient = U256::ZERO;
        let mut rem = self;
        let mut d = divisor << shift;
        for i in (0..=shift).rev() {
            if rem >= d {
                rem = rem.wrapping_sub(d);
                quotient = quotient.with_bit(i, true);
            }
            d = d >> 1u32;
        }
        Some((quotient, rem))
    }

    /// Converts to `u64`, returning `None` if the value does not fit.
    #[inline]
    pub fn to_u64(self) -> Option<u64> {
        if self.limbs[1] | self.limbs[2] | self.limbs[3] == 0 {
            Some(self.limbs[0])
        } else {
            None
        }
    }

    /// Converts to `u128`, returning `None` if the value does not fit.
    #[inline]
    pub fn to_u128(self) -> Option<u128> {
        if self.limbs[2] | self.limbs[3] == 0 {
            Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64)
        } else {
            None
        }
    }

    /// Extracts `width` bits starting at bit `lo` as a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or `lo + width > 256`.
    pub fn extract_bits(self, lo: u32, width: u32) -> u64 {
        assert!(width <= 64, "extract width {width} > 64");
        assert!(lo + width <= 256, "extract range out of bounds");
        if width == 0 {
            return 0;
        }
        let shifted = self >> lo;
        let lowest = shifted.limbs[0];
        if width == 64 {
            lowest
        } else {
            lowest & ((1u64 << width) - 1)
        }
    }
}

impl From<u8> for U256 {
    #[inline]
    fn from(v: u8) -> U256 {
        U256::from(u64::from(v))
    }
}

impl From<u16> for U256 {
    #[inline]
    fn from(v: u16) -> U256 {
        U256::from(u64::from(v))
    }
}

impl From<u32> for U256 {
    #[inline]
    fn from(v: u32) -> U256 {
        U256::from(u64::from(v))
    }
}

impl From<u64> for U256 {
    #[inline]
    fn from(v: u64) -> U256 {
        U256 {
            limbs: [v, 0, 0, 0],
        }
    }
}

impl From<u128> for U256 {
    #[inline]
    fn from(v: u128) -> U256 {
        U256 {
            // lint: allow(lossy_cast, intentional limb split of the u128)
            limbs: [v as u64, (v >> 64) as u64, 0, 0],
        }
    }
}

impl From<usize> for U256 {
    #[inline]
    fn from(v: usize) -> U256 {
        U256::from(v as u64) // lint: allow(lossy_cast, usize is at most 64 bits on every supported target)
    }
}

impl TryFrom<U256> for u64 {
    type Error = ParseU256Error;
    fn try_from(v: U256) -> Result<u64, ParseU256Error> {
        v.to_u64().ok_or(ParseU256Error::Overflow)
    }
}

impl TryFrom<U256> for u128 {
    type Error = ParseU256Error;
    fn try_from(v: U256) -> Result<u128, ParseU256Error> {
        v.to_u128().ok_or(ParseU256Error::Overflow)
    }
}

impl Ord for U256 {
    #[inline]
    fn cmp(&self, other: &U256) -> Ordering {
        for i in (0..4).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U256 {
    #[inline]
    fn partial_cmp(&self, other: &U256) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for U256 {
    type Output = U256;
    #[inline]
    fn add(self, rhs: U256) -> U256 {
        // lint: allow(panic_reachability, the Add operator trait cannot return Result; overflow here mirrors primitive integer overflow semantics, and coded-arithmetic callers bound operands via checked_mul/checked_add first)
        self.checked_add(rhs).expect("U256 addition overflow")
    }
}

impl Sub for U256 {
    type Output = U256;
    #[inline]
    fn sub(self, rhs: U256) -> U256 {
        self.checked_sub(rhs).expect("U256 subtraction underflow")
    }
}

impl Mul for U256 {
    type Output = U256;
    #[inline]
    fn mul(self, rhs: U256) -> U256 {
        self.checked_mul(rhs).expect("U256 multiplication overflow")
    }
}

impl Div for U256 {
    type Output = U256;
    #[inline]
    fn div(self, rhs: U256) -> U256 {
        self.div_rem(rhs).expect("U256 division by zero").0
    }
}

impl Rem for U256 {
    type Output = U256;
    #[inline]
    fn rem(self, rhs: U256) -> U256 {
        self.div_rem(rhs).expect("U256 division by zero").1
    }
}

impl AddAssign for U256 {
    #[inline]
    fn add_assign(&mut self, rhs: U256) {
        *self = *self + rhs;
    }
}

impl SubAssign for U256 {
    #[inline]
    fn sub_assign(&mut self, rhs: U256) {
        *self = *self - rhs;
    }
}

impl MulAssign for U256 {
    #[inline]
    fn mul_assign(&mut self, rhs: U256) {
        *self = *self * rhs;
    }
}

macro_rules! impl_shift {
    ($ty:ty) => {
        impl Shl<$ty> for U256 {
            type Output = U256;
            #[inline]
            fn shl(self, shift: $ty) -> U256 {
                // A `shift as u32` here would wrap for shifts >= 2^32
                // and silently shift by the low bits instead; saturate,
                // so any shift too big for u32 flushes to zero below.
                let shift = u32::try_from(shift).unwrap_or(u32::MAX);
                if shift >= 256 {
                    return U256::ZERO;
                }
                let limb_shift = (shift / 64) as usize; // lint: allow(lossy_cast, shift < 256 so the limb index is < 4)
                let bit_shift = shift % 64;
                let mut out = [0u64; 4];
                for i in (limb_shift..4).rev() {
                    out[i] = self.limbs[i - limb_shift] << bit_shift;
                    if bit_shift > 0 && i > limb_shift {
                        out[i] |= self.limbs[i - limb_shift - 1] >> (64 - bit_shift);
                    }
                }
                U256 { limbs: out }
            }
        }

        impl Shr<$ty> for U256 {
            type Output = U256;
            #[inline]
            fn shr(self, shift: $ty) -> U256 {
                // Same wrap hazard as `shl`: saturate oversized shifts
                // instead of truncating them.
                let shift = u32::try_from(shift).unwrap_or(u32::MAX);
                if shift >= 256 {
                    return U256::ZERO;
                }
                let limb_shift = (shift / 64) as usize; // lint: allow(lossy_cast, shift < 256 so the limb index is < 4)
                let bit_shift = shift % 64;
                let mut out = [0u64; 4];
                for i in 0..(4 - limb_shift) {
                    out[i] = self.limbs[i + limb_shift] >> bit_shift;
                    if bit_shift > 0 && i + limb_shift + 1 < 4 {
                        out[i] |= self.limbs[i + limb_shift + 1] << (64 - bit_shift);
                    }
                }
                U256 { limbs: out }
            }
        }

        impl ShlAssign<$ty> for U256 {
            #[inline]
            fn shl_assign(&mut self, shift: $ty) {
                *self = *self << shift;
            }
        }

        impl ShrAssign<$ty> for U256 {
            #[inline]
            fn shr_assign(&mut self, shift: $ty) {
                *self = *self >> shift;
            }
        }
    };
}

impl_shift!(u32);
impl_shift!(usize);

impl BitAnd for U256 {
    type Output = U256;
    #[inline]
    fn bitand(self, rhs: U256) -> U256 {
        U256 {
            limbs: [
                self.limbs[0] & rhs.limbs[0],
                self.limbs[1] & rhs.limbs[1],
                self.limbs[2] & rhs.limbs[2],
                self.limbs[3] & rhs.limbs[3],
            ],
        }
    }
}

impl BitOr for U256 {
    type Output = U256;
    #[inline]
    fn bitor(self, rhs: U256) -> U256 {
        U256 {
            limbs: [
                self.limbs[0] | rhs.limbs[0],
                self.limbs[1] | rhs.limbs[1],
                self.limbs[2] | rhs.limbs[2],
                self.limbs[3] | rhs.limbs[3],
            ],
        }
    }
}

impl BitXor for U256 {
    type Output = U256;
    #[inline]
    fn bitxor(self, rhs: U256) -> U256 {
        U256 {
            limbs: [
                self.limbs[0] ^ rhs.limbs[0],
                self.limbs[1] ^ rhs.limbs[1],
                self.limbs[2] ^ rhs.limbs[2],
                self.limbs[3] ^ rhs.limbs[3],
            ],
        }
    }
}

impl BitAndAssign for U256 {
    #[inline]
    fn bitand_assign(&mut self, rhs: U256) {
        *self = *self & rhs;
    }
}

impl BitOrAssign for U256 {
    #[inline]
    fn bitor_assign(&mut self, rhs: U256) {
        *self = *self | rhs;
    }
}

impl BitXorAssign for U256 {
    #[inline]
    fn bitxor_assign(&mut self, rhs: U256) {
        *self = *self ^ rhs;
    }
}

impl Not for U256 {
    type Output = U256;
    #[inline]
    fn not(self) -> U256 {
        U256 {
            limbs: [
                !self.limbs[0],
                !self.limbs[1],
                !self.limbs[2],
                !self.limbs[3],
            ],
        }
    }
}

impl Sum for U256 {
    fn sum<I: Iterator<Item = U256>>(iter: I) -> U256 {
        iter.fold(U256::ZERO, |acc, v| acc + v)
    }
}

impl Product for U256 {
    fn product<I: Iterator<Item = U256>>(iter: I) -> U256 {
        iter.fold(U256::ONE, |acc, v| acc * v)
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        let mut digits = Vec::with_capacity(78);
        let mut v = *self;
        while !v.is_zero() {
            let (q, r) = v.div_rem_u64(10).expect("nonzero divisor");
            digits.push(b'0' + r as u8); // lint: allow(lossy_cast, r < 10 from div_rem_u64(10))
            v = q;
        }
        digits.reverse();
        let s = std::str::from_utf8(&digits).expect("ASCII digits");
        f.pad_integral(true, "", s)
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        let mut seen = false;
        for &limb in self.limbs.iter().rev() {
            if seen {
                s.push_str(&format!("{limb:016x}"));
            } else if limb != 0 {
                s.push_str(&format!("{limb:x}"));
                seen = true;
            }
        }
        if !seen {
            s.push('0');
        }
        f.pad_integral(true, "0x", &s)
    }
}

impl fmt::Binary for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        let mut seen = false;
        for &limb in self.limbs.iter().rev() {
            if seen {
                s.push_str(&format!("{limb:064b}"));
            } else if limb != 0 {
                s.push_str(&format!("{limb:b}"));
                seen = true;
            }
        }
        if !seen {
            s.push('0');
        }
        f.pad_integral(true, "0b", &s)
    }
}

/// Error produced when parsing or converting a [`U256`] fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseU256Error {
    /// The string was empty.
    Empty,
    /// A character was not a decimal digit.
    InvalidDigit,
    /// The value does not fit in the target type.
    Overflow,
}

impl fmt::Display for ParseU256Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseU256Error::Empty => write!(f, "cannot parse integer from empty string"),
            ParseU256Error::InvalidDigit => write!(f, "invalid digit found in string"),
            ParseU256Error::Overflow => write!(f, "number too large to fit in target type"),
        }
    }
}

impl Error for ParseU256Error {}

impl FromStr for U256 {
    type Err = ParseU256Error;

    fn from_str(s: &str) -> Result<U256, ParseU256Error> {
        if s.is_empty() {
            return Err(ParseU256Error::Empty);
        }
        let mut v = U256::ZERO;
        for c in s.bytes() {
            let digit = match c {
                b'0'..=b'9' => u64::from(c - b'0'),
                _ => return Err(ParseU256Error::InvalidDigit),
            };
            v = v
                .checked_mul_u64(10)
                .and_then(|v| v.checked_add(U256::from(digit)))
                .ok_or(ParseU256Error::Overflow)?;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(U256::ZERO.is_zero());
        assert!(!U256::ONE.is_zero());
        assert_eq!(U256::ZERO + U256::ONE, U256::ONE);
        assert_eq!(U256::default(), U256::ZERO);
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let x = U256::from(u64::MAX);
        let y = x + U256::ONE;
        assert_eq!(y.to_limbs(), [0, 1, 0, 0]);
    }

    #[test]
    fn overflowing_add_wraps() {
        let (v, carry) = U256::MAX.overflowing_add(U256::ONE);
        assert!(carry);
        assert_eq!(v, U256::ZERO);
    }

    #[test]
    fn sub_with_borrow() {
        let x = U256::from_limbs([0, 1, 0, 0]);
        let y = x - U256::ONE;
        assert_eq!(y, U256::from(u64::MAX));
    }

    #[test]
    fn overflowing_sub_underflow() {
        let (v, borrow) = U256::ZERO.overflowing_sub(U256::ONE);
        assert!(borrow);
        assert_eq!(v, U256::MAX);
    }

    #[test]
    fn mul_small() {
        assert_eq!(U256::from(7u64) * U256::from(6u64), U256::from(42u64));
    }

    #[test]
    fn mul_wide() {
        let x = U256::from(u128::MAX);
        let y = x.checked_mul(U256::from(2u64)).unwrap();
        assert_eq!(y, (U256::ONE << 129u32) - U256::from(2u64));
    }

    #[test]
    fn mul_overflow_detected() {
        assert!(U256::MAX.checked_mul(U256::from(2u64)).is_none());
        let half = U256::ONE << 128u32;
        assert!(half.checked_mul(half).is_none());
    }

    #[test]
    fn div_rem_u64_matches_u128() {
        let n = U256::from(0xDEAD_BEEF_u128 << 32 | 0x1234);
        let (q, r) = n.div_rem_u64(19).unwrap();
        let n128 = n.to_u128().unwrap();
        assert_eq!(q.to_u128().unwrap(), n128 / 19);
        assert_eq!(r as u128, n128 % 19);
    }

    #[test]
    fn div_rem_full_roundtrip() {
        let n = U256::from_limbs([0x1234, 0x5678, 0x9abc, 0x1]);
        let d = U256::from_limbs([0xffff, 0x3, 0, 0]);
        let (q, r) = n.div_rem(d).unwrap();
        assert!(r < d);
        assert_eq!(q * d + r, n);
    }

    #[test]
    fn div_by_zero_is_none() {
        assert!(U256::ONE.div_rem(U256::ZERO).is_none());
        assert!(U256::ONE.div_rem_u64(0).is_none());
    }

    #[test]
    fn div_smaller_dividend() {
        let (q, r) = U256::from(5u64)
            .div_rem(U256::from_limbs([0, 1, 0, 0]))
            .unwrap();
        assert_eq!(q, U256::ZERO);
        assert_eq!(r, U256::from(5u64));
    }

    #[test]
    fn shl_shr_roundtrip() {
        let x = U256::from(0xABCDu64);
        for shift in [0u32, 1, 63, 64, 65, 127, 128, 200] {
            assert_eq!((x << shift) >> shift, x, "shift {shift}");
        }
        assert_eq!(x << 256u32, U256::ZERO);
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn oversized_usize_shifts_saturate_to_zero() {
        // Regression: `shift as u32` used to wrap, so a shift of
        // 2^32 + 3 silently shifted by 3 instead of flushing to zero.
        let x = U256::from(0xDEAD_BEEFu64);
        let huge = (1usize << 32) + 3;
        assert_eq!(x << huge, U256::ZERO);
        assert_eq!(x >> huge, U256::ZERO);
        // Small usize shifts still behave like their u32 counterparts.
        assert_eq!(x << 3usize, x << 3u32);
        assert_eq!(x >> 3usize, x >> 3u32);
    }

    #[test]
    fn bit_access() {
        let x = U256::pow2(200);
        assert!(x.bit(200));
        assert!(!x.bit(199));
        assert_eq!(x.trailing_zeros(), 200);
        assert_eq!(x.bits(), 201);
        assert_eq!(x.count_ones(), 1);
        let y = x.with_bit(200, false);
        assert!(y.is_zero());
    }

    #[test]
    fn extract_bits_works() {
        let x = (U256::from(0xABu64) << 16u32) | U256::from(0xCDu64);
        assert_eq!(x.extract_bits(16, 8), 0xAB);
        assert_eq!(x.extract_bits(0, 8), 0xCD);
        assert_eq!(x.extract_bits(0, 64), 0xAB_0000 | 0xCD);
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let vals = [
            U256::ZERO,
            U256::ONE,
            U256::from(1234567890123456789u64),
            U256::MAX,
        ];
        for v in vals {
            let s = v.to_string();
            assert_eq!(s.parse::<U256>().unwrap(), v);
        }
        assert_eq!(
            U256::MAX.to_string(),
            "115792089237316195423570985008687907853269984665640564039457584007913129639935"
        );
    }

    #[test]
    fn parse_errors() {
        assert_eq!("".parse::<U256>(), Err(ParseU256Error::Empty));
        assert_eq!("12a".parse::<U256>(), Err(ParseU256Error::InvalidDigit));
        let too_big = format!("{}0", U256::MAX);
        assert_eq!(too_big.parse::<U256>(), Err(ParseU256Error::Overflow));
    }

    #[test]
    fn hex_and_binary_format() {
        assert_eq!(format!("{:x}", U256::from(255u64)), "ff");
        assert_eq!(format!("{:b}", U256::from(5u64)), "101");
        assert_eq!(format!("{:x}", U256::ZERO), "0");
        let big = U256::ONE << 64u32;
        assert_eq!(format!("{big:x}"), "10000000000000000");
    }

    #[test]
    fn ordering() {
        let a = U256::from(5u64);
        let b = U256::from_limbs([0, 1, 0, 0]);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn sum_and_product() {
        let vals = [1u64, 2, 3, 4].map(U256::from);
        assert_eq!(vals.iter().copied().sum::<U256>(), U256::from(10u64));
        assert_eq!(vals.iter().copied().product::<U256>(), U256::from(24u64));
    }

    #[test]
    fn conversions() {
        assert_eq!(U256::from(5u8), U256::from(5u64));
        assert_eq!(U256::from(5u16), U256::from(5u64));
        assert_eq!(U256::from(5u32), U256::from(5u64));
        assert_eq!(U256::from(5usize), U256::from(5u64));
        assert_eq!(u64::try_from(U256::from(7u64)).unwrap(), 7);
        assert!(u64::try_from(U256::MAX).is_err());
        assert_eq!(u128::try_from(U256::from(7u128)).unwrap(), 7);
        assert!(u128::try_from(U256::MAX).is_err());
    }

    #[test]
    fn bitops() {
        let a = U256::from(0b1100u64);
        let b = U256::from(0b1010u64);
        assert_eq!(a & b, U256::from(0b1000u64));
        assert_eq!(a | b, U256::from(0b1110u64));
        assert_eq!(a ^ b, U256::from(0b0110u64));
        assert_eq!(!U256::ZERO, U256::MAX);
    }
}
