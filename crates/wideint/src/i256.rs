//! Signed 256-bit integer in sign-and-magnitude representation.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use crate::U256;

/// A signed 256-bit integer stored as a sign and a [`U256`] magnitude.
///
/// Additive error syndromes in arithmetic codes can be negative (an analog
/// quantization error may push the digitized value above *or below* the
/// true result), so decoding needs small signed arithmetic around `U256`
/// values. `I256` provides just that: exact signed addition, subtraction
/// and comparison.
///
/// Negative zero is normalized away: a zero magnitude always compares and
/// formats as non-negative zero.
///
/// # Examples
///
/// ```
/// use wideint::{I256, U256};
///
/// let pos = I256::from(U256::from(5u64));
/// let neg = -I256::from(U256::from(8u64));
/// let sum = pos + neg;
/// assert_eq!(sum, I256::from_i128(-3));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct I256 {
    negative: bool,
    magnitude: U256,
}

impl I256 {
    /// The value `0`.
    pub const ZERO: I256 = I256 {
        negative: false,
        magnitude: U256::ZERO,
    };

    /// Creates a signed value from a sign flag and a magnitude.
    ///
    /// A zero magnitude always produces non-negative zero.
    #[inline]
    pub fn new(negative: bool, magnitude: U256) -> I256 {
        I256 {
            negative: negative && !magnitude.is_zero(),
            magnitude,
        }
    }

    /// Creates a value from an `i128`.
    #[inline]
    pub fn from_i128(v: i128) -> I256 {
        I256::new(v < 0, U256::from(v.unsigned_abs()))
    }

    /// Returns the magnitude (absolute value).
    #[inline]
    pub fn magnitude(self) -> U256 {
        self.magnitude
    }

    /// Returns `true` if the value is strictly negative.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.negative
    }

    /// Returns `true` if the value is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.magnitude.is_zero()
    }

    /// Converts to `i128`, returning `None` if the value does not fit.
    pub fn to_i128(self) -> Option<i128> {
        let mag = self.magnitude.to_u128()?;
        if self.negative {
            if mag > i128::MAX as u128 + 1 {
                None
            } else {
                Some((mag as i128).wrapping_neg())
            }
        } else if mag > i128::MAX as u128 {
            None
        } else {
            Some(mag as i128)
        }
    }

    /// Checked addition; `None` if the magnitude overflows 256 bits.
    pub fn checked_add(self, rhs: I256) -> Option<I256> {
        if self.negative == rhs.negative {
            Some(I256::new(
                self.negative,
                self.magnitude.checked_add(rhs.magnitude)?,
            ))
        } else if self.magnitude >= rhs.magnitude {
            Some(I256::new(
                self.negative,
                self.magnitude.wrapping_sub(rhs.magnitude),
            ))
        } else {
            Some(I256::new(
                rhs.negative,
                rhs.magnitude.wrapping_sub(self.magnitude),
            ))
        }
    }

    /// Checked subtraction; `None` if the magnitude overflows 256 bits.
    #[inline]
    pub fn checked_sub(self, rhs: I256) -> Option<I256> {
        self.checked_add(-rhs)
    }

    /// Checked multiplication; `None` if the magnitude overflows 256 bits.
    #[inline]
    pub fn checked_mul(self, rhs: I256) -> Option<I256> {
        Some(I256::new(
            self.negative != rhs.negative,
            self.magnitude.checked_mul(rhs.magnitude)?,
        ))
    }

    /// Euclidean remainder by a positive `u64` modulus: the result is
    /// always in `0..modulus`.
    ///
    /// This is the operation used to map a (possibly negative) additive
    /// syndrome to its residue class for correction-table lookup.
    ///
    /// Returns `None` if `modulus == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use wideint::I256;
    /// let s = I256::from_i128(-5);
    /// assert_eq!(s.rem_euclid_u64(19), Some(14));
    /// ```
    pub fn rem_euclid_u64(self, modulus: u64) -> Option<u64> {
        let r = self.magnitude.rem_u64(modulus)?;
        if self.negative && r != 0 {
            Some(modulus - r)
        } else {
            Some(r)
        }
    }

    /// Exact division by a positive `u64` divisor.
    ///
    /// Returns `None` if `divisor == 0` or `self` is not divisible by
    /// `divisor`. Arithmetic-code decoding relies on exact divisions:
    /// after subtracting a syndrome whose residue matches, the corrected
    /// value is divisible by `A` by construction.
    ///
    /// # Examples
    ///
    /// ```
    /// use wideint::I256;
    /// assert_eq!(I256::from_i128(-38).div_exact_u64(19), Some(I256::from_i128(-2)));
    /// assert_eq!(I256::from_i128(-39).div_exact_u64(19), None);
    /// ```
    pub fn div_exact_u64(self, divisor: u64) -> Option<I256> {
        let (q, r) = self.magnitude.div_rem_u64(divisor)?;
        if r != 0 {
            None
        } else {
            Some(I256::new(self.negative, q))
        }
    }

    /// Shifts the magnitude left by `shift` bits (multiplication by
    /// `2^shift`), preserving the sign.
    ///
    /// # Panics
    ///
    /// Panics if the shifted magnitude would overflow 256 bits.
    #[must_use]
    pub fn shifted_left(self, shift: u32) -> I256 {
        if self.is_zero() {
            return I256::ZERO;
        }
        assert!(
            self.magnitude.bits() + shift <= 256,
            "I256 shift overflow"
        );
        I256::new(self.negative, self.magnitude << shift)
    }

    /// Division by a positive `u64` divisor, rounded to the nearest
    /// integer (ties round away from zero).
    ///
    /// Returns `None` if `divisor == 0`. Used to recover a best-effort
    /// data value from an encoded result that still carries an
    /// uncorrectable error.
    ///
    /// # Examples
    ///
    /// ```
    /// use wideint::I256;
    /// assert_eq!(I256::from_i128(40).div_round_u64(19), Some(I256::from_i128(2)));
    /// assert_eq!(I256::from_i128(-48).div_round_u64(19), Some(I256::from_i128(-3)));
    /// ```
    pub fn div_round_u64(self, divisor: u64) -> Option<I256> {
        let (q, r) = self.magnitude.div_rem_u64(divisor)?;
        let rounded = if r as u128 * 2 >= divisor as u128 {
            q + U256::ONE
        } else {
            q
        };
        Some(I256::new(self.negative, rounded))
    }
}

impl From<U256> for I256 {
    #[inline]
    fn from(v: U256) -> I256 {
        I256::new(false, v)
    }
}

impl From<i64> for I256 {
    #[inline]
    fn from(v: i64) -> I256 {
        I256::from_i128(v as i128)
    }
}

impl Neg for I256 {
    type Output = I256;
    #[inline]
    fn neg(self) -> I256 {
        I256::new(!self.negative, self.magnitude)
    }
}

impl Add for I256 {
    type Output = I256;
    #[inline]
    fn add(self, rhs: I256) -> I256 {
        // lint: allow(panic_reachability, the Add operator trait cannot return Result; overflow here mirrors primitive integer overflow semantics, and coded-arithmetic callers bound operands via checked ops first)
        self.checked_add(rhs).expect("I256 addition overflow")
    }
}

impl Sub for I256 {
    type Output = I256;
    #[inline]
    fn sub(self, rhs: I256) -> I256 {
        self.checked_sub(rhs).expect("I256 subtraction overflow")
    }
}

impl Mul for I256 {
    type Output = I256;
    #[inline]
    fn mul(self, rhs: I256) -> I256 {
        self.checked_mul(rhs).expect("I256 multiplication overflow")
    }
}

impl AddAssign for I256 {
    #[inline]
    fn add_assign(&mut self, rhs: I256) {
        *self = *self + rhs;
    }
}

impl SubAssign for I256 {
    #[inline]
    fn sub_assign(&mut self, rhs: I256) {
        *self = *self - rhs;
    }
}

impl Ord for I256 {
    fn cmp(&self, other: &I256) -> Ordering {
        match (self.negative, other.negative) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => self.magnitude.cmp(&other.magnitude),
            (true, true) => other.magnitude.cmp(&self.magnitude),
        }
    }
}

impl PartialOrd for I256 {
    #[inline]
    fn partial_cmp(&self, other: &I256) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Sum for I256 {
    fn sum<I: Iterator<Item = I256>>(iter: I) -> I256 {
        iter.fold(I256::ZERO, |acc, v| acc + v)
    }
}

impl fmt::Display for I256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.magnitude.to_string();
        f.pad_integral(!self.negative, "", &s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negative_zero_is_normalized() {
        let z = I256::new(true, U256::ZERO);
        assert!(!z.is_negative());
        assert_eq!(z, I256::ZERO);
        assert_eq!((-I256::ZERO), I256::ZERO);
        assert_eq!(I256::default(), I256::ZERO);
    }

    #[test]
    fn from_i128_roundtrip() {
        for v in [-170141183460469231731687303715884105728i128, -5, 0, 7, i128::MAX] {
            assert_eq!(I256::from_i128(v).to_i128(), Some(v));
        }
    }

    #[test]
    fn signed_addition() {
        let a = I256::from_i128(10);
        let b = I256::from_i128(-4);
        assert_eq!(a + b, I256::from_i128(6));
        assert_eq!(b + a, I256::from_i128(6));
        assert_eq!(a + (-a), I256::ZERO);
        assert_eq!(I256::from_i128(-3) + I256::from_i128(-4), I256::from_i128(-7));
    }

    #[test]
    fn signed_subtraction() {
        assert_eq!(
            I256::from_i128(3) - I256::from_i128(10),
            I256::from_i128(-7)
        );
    }

    #[test]
    fn signed_multiplication() {
        assert_eq!(
            I256::from_i128(-3) * I256::from_i128(4),
            I256::from_i128(-12)
        );
        assert_eq!(
            I256::from_i128(-3) * I256::from_i128(-4),
            I256::from_i128(12)
        );
    }

    #[test]
    fn euclid_residue_of_negative_syndrome() {
        // -2^i mod A lands in 0..A regardless of sign.
        let s = I256::from_i128(-(1i128 << 20));
        let r = s.rem_euclid_u64(79).unwrap();
        assert!(r < 79);
        let back = (r as i128 - (-(1i128 << 20))) % 79;
        assert_eq!(back, 0);
        assert_eq!(I256::ZERO.rem_euclid_u64(19), Some(0));
        assert_eq!(I256::from_i128(-19).rem_euclid_u64(19), Some(0));
        assert!(I256::ZERO.rem_euclid_u64(0).is_none());
    }

    #[test]
    fn ordering_across_signs() {
        let vals = [
            I256::from_i128(-10),
            I256::from_i128(-1),
            I256::ZERO,
            I256::from_i128(1),
            I256::from_i128(10),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn display_negative() {
        assert_eq!(I256::from_i128(-42).to_string(), "-42");
        assert_eq!(I256::ZERO.to_string(), "0");
    }

    #[test]
    fn sum_mixed_signs() {
        let total: I256 = [3i64, -5, 7, -1].into_iter().map(I256::from).sum();
        assert_eq!(total, I256::from_i128(4));
    }

    #[test]
    fn overflow_detected() {
        let max = I256::from(U256::MAX);
        assert!(max.checked_add(I256::from_i128(1)).is_none());
        assert!(max.checked_mul(I256::from_i128(2)).is_none());
        assert!(max.checked_add(max).is_none());
    }
}
