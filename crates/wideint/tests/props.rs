//! Property-based tests for `U256`/`I256` against `u128`/`i128` reference
//! arithmetic, plus algebraic invariants in the full 256-bit range.

use proptest::prelude::*;
use wideint::{I256, U256};

fn u256_any() -> impl Strategy<Value = U256> {
    any::<[u64; 4]>().prop_map(U256::from_limbs)
}

proptest! {
    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let sum = U256::from(a) + U256::from(b);
        prop_assert_eq!(sum.to_u128().unwrap(), a as u128 + b as u128);
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = U256::from(a) * U256::from(b);
        prop_assert_eq!(prod.to_u128().unwrap(), a as u128 * b as u128);
    }

    #[test]
    fn div_rem_matches_u128(a in any::<u128>(), b in 1u64..) {
        let (q, r) = U256::from(a).div_rem_u64(b).unwrap();
        prop_assert_eq!(q.to_u128().unwrap(), a / b as u128);
        prop_assert_eq!(r as u128, a % b as u128);
    }

    #[test]
    fn add_commutes(a in u256_any(), b in u256_any()) {
        prop_assert_eq!(a.overflowing_add(b), b.overflowing_add(a));
    }

    #[test]
    fn add_sub_roundtrip(a in u256_any(), b in u256_any()) {
        let (sum, _) = a.overflowing_add(b);
        prop_assert_eq!(sum.wrapping_sub(b), a);
    }

    #[test]
    fn mul_commutes(a in u256_any(), b in u256_any()) {
        prop_assert_eq!(a.overflowing_mul(b), b.overflowing_mul(a));
    }

    #[test]
    fn distributive_law_small(a in any::<u64>(), b in any::<u64>(), k in any::<u32>()) {
        // The foundation of AN codes: A*(x + y) == A*x + A*y.
        let (ax, _) = U256::from(a).overflowing_mul(U256::from(k as u64));
        let (bx, _) = U256::from(b).overflowing_mul(U256::from(k as u64));
        let lhs = (U256::from(a) + U256::from(b)) * U256::from(k as u64);
        prop_assert_eq!(lhs, ax + bx);
    }

    #[test]
    fn div_rem_reconstructs(n in u256_any(), d in u256_any()) {
        prop_assume!(!d.is_zero());
        let (q, r) = n.div_rem(d).unwrap();
        prop_assert!(r < d);
        let (qd, overflow) = q.overflowing_mul(d);
        prop_assert!(!overflow);
        prop_assert_eq!(qd + r, n);
    }

    #[test]
    fn shift_splits_value(v in u256_any(), s in 0u32..256) {
        let hi = v >> s;
        let lo = v & ((U256::ONE << s).wrapping_sub(U256::ONE));
        if s == 0 {
            prop_assert_eq!(hi, v);
        } else {
            let recon = (hi << s) | lo;
            prop_assert_eq!(recon, v);
        }
    }

    #[test]
    fn display_parse_roundtrip(v in u256_any()) {
        prop_assert_eq!(v.to_string().parse::<U256>().unwrap(), v);
    }

    #[test]
    fn bits_and_leading_zeros_consistent(v in u256_any()) {
        prop_assert_eq!(v.bits() + v.leading_zeros(), 256);
        if !v.is_zero() {
            prop_assert!(v.bit(v.bits() - 1));
        }
    }

    #[test]
    fn i256_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let x = I256::from(a);
        let y = I256::from(b);
        prop_assert_eq!((x + y).to_i128().unwrap(), a as i128 + b as i128);
        prop_assert_eq!((x - y).to_i128().unwrap(), a as i128 - b as i128);
        prop_assert_eq!((x * y).to_i128().unwrap(), a as i128 * b as i128);
    }

    #[test]
    fn i256_rem_euclid_matches_i128(a in any::<i64>(), m in 1u32..) {
        let r = I256::from(a).rem_euclid_u64(m as u64).unwrap();
        prop_assert_eq!(r as i128, (a as i128).rem_euclid(m as i128));
    }

    #[test]
    fn i256_neg_involutive(a in any::<i64>()) {
        let x = I256::from(a);
        prop_assert_eq!(-(-x), x);
        prop_assert_eq!(x + (-x), I256::ZERO);
    }
}
