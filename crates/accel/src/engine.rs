//! The coded crossbar MVM engine: bit-serial input streaming, noisy row
//! reads, shift-and-add reduction, and the per-cycle error correction
//! unit of Figure 9.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ancode::DecodeKind;
use neural::{MvmEngine, MvmEngineProvider, QuantizedMatrix};
use parking_lot::Mutex;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wideint::{I256, U256};
use xbar::InputMask;

use xbar::RtnSnapshot;

use crate::mapping::{map_matrix, MappedMatrix, Stack};
use crate::{AccelConfig, AccelError};


/// Aggregate decode statistics across an engine's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Group-cycles that decoded with residue 0 and a passing `B` check.
    pub clean: u64,
    /// Group-cycles corrected by a table hit with a passing `B` check.
    pub corrected: u64,
    /// Group-cycles whose residue had no table entry.
    pub uncorrectable: u64,
    /// Group-cycles where the `B` check flagged a miscorrection.
    pub miscorrected: u64,
    /// Group-cycles whose error was a multiple of `A`, caught by `B`.
    pub silent_a: u64,
    /// Retries performed (the §VI-A retry option).
    pub retries: u64,
    /// Group-cycles evaluated without any code (unprotected baseline).
    pub uncoded: u64,
}

impl DecodeStats {
    /// Total decoded group-cycles.
    pub fn total(&self) -> u64 {
        self.clean + self.corrected + self.uncorrectable + self.miscorrected + self.silent_a
            + self.uncoded
    }

    /// Fraction of decodes that required any action (not clean).
    pub fn error_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (t - self.clean - self.uncoded) as f64 / t as f64
        }
    }

    fn absorb(&mut self, other: DecodeStats) {
        self.clean += other.clean;
        self.corrected += other.corrected;
        self.uncorrectable += other.uncorrectable;
        self.miscorrected += other.miscorrected;
        self.silent_a += other.silent_a;
        self.retries += other.retries;
        self.uncoded += other.uncoded;
    }

    fn delta_since(&self, earlier: &DecodeStats) -> DecodeStats {
        DecodeStats {
            clean: self.clean - earlier.clean,
            corrected: self.corrected - earlier.corrected,
            uncorrectable: self.uncorrectable - earlier.uncorrectable,
            miscorrected: self.miscorrected - earlier.miscorrected,
            silent_a: self.silent_a - earlier.silent_a,
            retries: self.retries - earlier.retries,
            uncoded: self.uncoded - earlier.uncoded,
        }
    }
}

/// Reusable buffers for one engine's MVM hot path.
///
/// Every `Vec` here is cleared and refilled per use, never dropped, so
/// a steady-state [`CrossbarEngine::mvm_into`] or `mvm_batch_into`
/// call performs zero heap allocation: capacity is reserved once at
/// programming time from the mapping's known dimensions (chunk widths,
/// stack row counts, lane counts) and the configured batch, and only
/// ever reused afterwards. The scratch is taken out of the engine with
/// `std::mem::take` for the duration of a call (the same borrow dance
/// as the stacks) and put back before returning — the *scratch
/// ownership contract*: the engine owns the buffers between calls, the
/// call body owns them exclusively while running, and nothing escapes.
///
/// The batch-only buffers (`batch_input`, `planes`, `trap_offsets`,
/// `trap_entries`, `normals`) stay empty when every call is batch-of-1, so the legacy
/// path's footprint is unchanged.
///
/// # Examples
///
/// The scratch is engine-internal; callers only see its effect — a
/// warm engine's MVM allocates nothing and reuses one output buffer:
///
/// ```
/// use accel::{AccelConfig, CrossbarProvider, ProtectionScheme};
/// use neural::{MvmEngineProvider, QuantizedMatrix, Tensor};
///
/// let w = Tensor::from_vec(vec![2, 8], (0..16).map(|i| i as f32 * 0.1).collect());
/// let provider = CrossbarProvider::new(
///     AccelConfig::new(ProtectionScheme::None),
///     7,
/// );
/// let mut engine = provider.build(&QuantizedMatrix::from_tensor(&w));
/// let input = [1u16; 8];
/// let mut out = Vec::new();
/// engine.mvm_into(&input, &mut out); // grows scratch + out once
/// engine.mvm_into(&input, &mut out); // steady state: zero allocation
/// assert_eq!(out.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MvmScratch {
    /// Widened copy of the current chunk's input slice (batch-of-1
    /// path).
    chunk_input: Vec<u64>,
    /// Input-bit masks for the current chunk: one per bit for the
    /// batch-of-1 path, `batch · input_bits` vector-major for the
    /// batched path.
    masks: Vec<InputMask>,
    /// Ideal digital lane values for the current stack.
    ideal: Vec<i64>,
    /// Balanced-digit lane attribution of the residual error.
    lane_err: Vec<i64>,
    /// Quantized row outputs of one group read.
    row_outputs: Vec<u64>,
    /// Frozen RTN trap state for the current stack.
    rtn: RtnSnapshot,
    /// Staging copy of the output vector while un-permuting a
    /// fault-aware remap (empty and unused when remap is off).
    remapped_out: Vec<i64>,
    /// Widened chunk inputs of *every* vector in the batch, back to
    /// back (`[v · chunk_width + j]`).
    batch_input: Vec<u64>,
    /// Per-bit-plane conductance sums of the current (stack, vector),
    /// t-major (`[t · rows + row]`).
    planes: Vec<f64>,
    /// Sparse hoisted trap table of the current stack:
    /// `trap_offsets[row]..trap_offsets[row + 1]` indexes
    /// `trap_entries`, each a `(Δi, level_mask ∩ traps)` pair of one
    /// non-empty level.
    trap_offsets: Vec<u32>,
    trap_entries: Vec<(f64, u128)>,
    /// Paired-Gaussian source for the batched read path. Its carry
    /// cache persists across calls, keeping the draw stream a pure
    /// function of the call sequence.
    normals: xbar::stats::NormalSource,
}

impl MvmScratch {
    /// Pre-sizes every buffer for `mapped` so the first MVM call —
    /// single-vector or batched up to `batch` — is already
    /// allocation-free.
    fn for_mapped(mapped: &MappedMatrix, input_bits: u32, remap: bool, batch: usize) -> MvmScratch {
        let stacks = mapped.stacks.iter().flatten();
        let max_rows = stacks.clone().map(|s| s.array.row_count()).max().unwrap_or(0);
        let max_lanes = stacks.clone().map(|s| s.lanes).max().unwrap_or(0);
        let max_trap = stacks
            .map(|s| s.array.row_count() * s.array.rtn_delta_i().len())
            .max()
            .unwrap_or(0);
        let max_chunk = mapped.chunks.iter().map(|c| c.len()).max().unwrap_or(0);
        let batched = batch > 1;
        MvmScratch {
            chunk_input: Vec::with_capacity(max_chunk),
            masks: Vec::with_capacity(batch.max(1) * input_bits as usize),
            ideal: Vec::with_capacity(max_lanes),
            lane_err: Vec::with_capacity(max_lanes),
            row_outputs: Vec::with_capacity(max_rows),
            rtn: RtnSnapshot::with_row_capacity(max_rows),
            remapped_out: Vec::with_capacity(if remap { mapped.out_dim } else { 0 }),
            batch_input: Vec::with_capacity(if batched { batch * max_chunk } else { 0 }),
            planes: Vec::with_capacity(if batched {
                input_bits as usize * max_rows
            } else {
                0
            }),
            trap_offsets: Vec::with_capacity(if batched { max_rows + 1 } else { 0 }),
            trap_entries: Vec::with_capacity(if batched { max_trap } else { 0 }),
            normals: xbar::stats::NormalSource::new(),
        }
    }
}

/// An [`MvmEngine`] backed by noisy, optionally AN-coded crossbar
/// stacks.
///
/// Each `mvm` call streams the 16-bit inputs bit-serially: for every
/// input bit `t` and every stack, the physical rows are read (with RTN,
/// thermal/shot noise, programming error and stuck-at faults), reduced
/// through the shift-and-add tree, and decoded by the ECU. Corrected
/// per-cycle values accumulate with weight `2^t`; the final group value
/// is split into its logical-row lanes.
pub struct CrossbarEngine {
    mapped: MappedMatrix,
    /// Biased weights for the ideal digital baseline used in lane
    /// splitting (see DESIGN.md: lane carries make the group total
    /// non-separable, so residual errors are attributed to lanes by
    /// balanced-digit decomposition of `observed − ideal`).
    weights: Vec<Vec<u16>>,
    config: AccelConfig,
    rng: ChaCha8Rng,
    stats: Arc<Mutex<DecodeStats>>,
    local_stats: DecodeStats,
    reported: DecodeStats,
    scratch: MvmScratch,
    /// `order[new_position] = original_row` when fault-aware remapping
    /// is active; `None` leaves the hot path untouched.
    remap_order: Option<Vec<usize>>,
}

impl std::fmt::Debug for CrossbarEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrossbarEngine")
            .field("out_dim", &self.mapped.out_dim)
            .field("in_dim", &self.mapped.in_dim)
            .field("scheme", &self.config.scheme.label())
            .finish()
    }
}

impl CrossbarEngine {
    /// Programs an engine for a quantized matrix.
    ///
    /// # Panics
    ///
    /// Panics when the scheme configuration cannot produce a code for
    /// this matrix; [`try_program`](CrossbarEngine::try_program) is the
    /// recoverable variant.
    pub fn program(
        matrix: &QuantizedMatrix,
        config: &AccelConfig,
        seed: u64,
        stats: Arc<Mutex<DecodeStats>>,
    ) -> CrossbarEngine {
        match CrossbarEngine::try_program(matrix, config, seed, stats) {
            Ok(engine) => engine,
            // lint: allow(panic_reachability, adapter for the infallible MvmEngineProvider::build trait signature; a code-construction failure is a configuration bug surfaced by the first build at service startup, and the recoverable paths call try_program directly)
            Err(e) => panic!("{e}"),
        }
    }

    /// Programs an engine for a quantized matrix, reporting code
    /// construction failures as a typed error.
    ///
    /// When `config.remap` is set, a fault-aware row remap is scouted
    /// first with an identically seeded RNG (modeling post-fabrication
    /// test-and-remap: the scouted fault locations match the fabricated
    /// ones), the permuted rows are programmed, and every MVM scatters
    /// its outputs back to the original row order — callers never see
    /// the permutation. With `config.remap` off this is byte-identical
    /// to the pre-remap engine.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Code`] when code construction / A-search
    /// fails for this matrix under the configured scheme.
    pub fn try_program(
        matrix: &QuantizedMatrix,
        config: &AccelConfig,
        seed: u64,
        stats: Arc<Mutex<DecodeStats>>,
    ) -> Result<CrossbarEngine, AccelError> {
        let _span = obs::span!("program");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (weights, remap_order) = if config.remap {
            let mut scout_rng = ChaCha8Rng::seed_from_u64(seed);
            let remap = crate::remap::fault_aware_order(matrix.rows(), config, &mut scout_rng);
            let identity = remap.order.iter().enumerate().all(|(i, &o)| i == o);
            (
                remap.apply(matrix.rows()),
                if identity { None } else { Some(remap.order) },
            )
        } else {
            (matrix.rows().to_vec(), None)
        };
        let mapped = map_matrix(&weights, config, &mut rng)?;
        let scratch = MvmScratch::for_mapped(
            &mapped,
            config.input_bits,
            remap_order.is_some(),
            config.batch,
        );
        Ok(CrossbarEngine {
            mapped,
            weights,
            config: config.clone(),
            rng,
            stats,
            local_stats: DecodeStats::default(),
            reported: DecodeStats::default(),
            scratch,
            remap_order,
        })
    }

    /// The mapping (for storage accounting).
    pub fn mapped(&self) -> &MappedMatrix {
        &self.mapped
    }

    /// Decode statistics accumulated so far by this engine.
    pub fn stats(&self) -> DecodeStats {
        self.local_stats
    }

    /// Reads and reduces one stack under one input mask with a frozen
    /// RTN configuration, returning the raw group value `D_t`.
    ///
    /// `row_outputs` is the reusable staging buffer for the quantized
    /// per-row reads (cleared and refilled by the bulk read).
    fn read_group(
        &mut self,
        stack: &Stack,
        mask: &InputMask,
        rtn: &RtnSnapshot,
        row_outputs: &mut Vec<u64>,
    ) -> U256 {
        stack.array.read_rows_into(mask, rtn, &mut self.rng, row_outputs);
        stack.slicer.reduce(row_outputs)
    }

    /// Reads and reduces one stack for the *batched* kernel: the
    /// amortized row read over precomputed conductance sums and
    /// trap-level words, then the same shift-and-add reduction.
    #[allow(clippy::too_many_arguments)]
    fn read_group_amortized(
        &mut self,
        stack: &Stack,
        mask: &InputMask,
        g_totals: &[f64],
        trap_offsets: &[u32],
        trap_entries: &[(f64, u128)],
        normals: &mut xbar::stats::NormalSource,
        row_outputs: &mut Vec<u64>,
    ) -> U256 {
        stack.array.read_rows_amortized_into(
            mask,
            g_totals,
            trap_offsets,
            trap_entries,
            normals,
            &mut self.rng,
            row_outputs,
        );
        stack.slicer.reduce(row_outputs)
    }

    /// Decodes one group-cycle value, applying the retry policy, with
    /// re-reads supplied by `reread` — shared by the scalar and batched
    /// kernels so retry accounting cannot drift between them.
    ///
    /// Retries re-read the rows under the *same* RTN snapshot (the trap
    /// state does not change on retry timescales), so retries only
    /// resolve transient thermal/shot borderline cases — exactly the
    /// limitation §VI-A accepts.
    fn decode_cycle_by(
        &mut self,
        stack: &Stack,
        mut observed: U256,
        mut reread: impl FnMut(&mut Self) -> U256,
    ) -> I256 {
        let Some(code) = &stack.code else {
            self.local_stats.uncoded += 1;
            return observed.into();
        };
        let (mut value, mut kind) = code.decode_value(observed.into(), self.config.policy);
        let mut attempts = 0;
        while !kind.is_trusted() && attempts < self.config.max_retries {
            attempts += 1;
            self.local_stats.retries += 1;
            observed = reread(self);
            (value, kind) = code.decode_value(observed.into(), self.config.policy);
        }
        match kind {
            DecodeKind::Clean => self.local_stats.clean += 1,
            DecodeKind::Corrected => self.local_stats.corrected += 1,
            DecodeKind::Uncorrectable => self.local_stats.uncorrectable += 1,
            DecodeKind::Miscorrected => self.local_stats.miscorrected += 1,
            DecodeKind::SilentA => self.local_stats.silent_a += 1,
            _ => {}
        }
        value
    }

    /// Decodes one group-cycle of the scalar path (re-reads via
    /// [`read_group`](CrossbarEngine::read_group)).
    fn decode_cycle(
        &mut self,
        stack: &Stack,
        mask: &InputMask,
        rtn: &RtnSnapshot,
        observed: U256,
        row_outputs: &mut Vec<u64>,
    ) -> I256 {
        self.decode_cycle_by(stack, observed, |me| {
            me.read_group(stack, mask, rtn, row_outputs)
        })
    }

    /// Flushes decode-stat deltas to the observability counters and the
    /// shared provider accumulator — the tail of every MVM call.
    fn report_stats(&mut self) {
        let delta = self.local_stats.delta_since(&self.reported);
        obs::counter!(ecc_clean).add(delta.clean);
        obs::counter!(ecc_corrected).add(delta.corrected);
        obs::counter!(ecc_uncorrectable).add(delta.uncorrectable);
        obs::counter!(ecc_miscorrected).add(delta.miscorrected);
        obs::counter!(ecc_silent_a).add(delta.silent_a);
        obs::counter!(ecc_retries).add(delta.retries);
        obs::counter!(ecc_uncoded).add(delta.uncoded);
        self.stats.lock().absorb(delta);
        self.reported = self.local_stats;
    }
}

impl MvmEngine for CrossbarEngine {
    /// Rewinds the noise RNG to a fresh stream derived from `seed`,
    /// leaving the programmed conductances (and their programming
    /// noise) untouched.
    ///
    /// This makes a long-lived pooled engine's MVM output a pure
    /// function of `(programmed state, seed, input)` instead of its
    /// full service history — the serve loop reseeds per request so
    /// retried and replayed requests are bit-identical.
    fn reseed(&mut self, seed: u64) {
        self.rng = ChaCha8Rng::seed_from_u64(seed);
    }

    fn mvm_into(&mut self, input: &[u16], out: &mut Vec<i64>) {
        let _span = obs::span!("mvm");
        assert_eq!(input.len(), self.mapped.in_dim, "input length mismatch");
        out.clear();
        out.resize(self.mapped.out_dim, 0i64);
        // Borrow dance: the chunk list and the scratch are taken out of
        // `self` for the duration of the call (both are put back below),
        // so `&mut self` methods can run while we hold references into
        // them. Stacks get the same treatment per chunk.
        let chunks = std::mem::take(&mut self.mapped.chunks);
        let mut scratch = std::mem::take(&mut self.scratch);

        for (chunk_idx, cols) in chunks.iter().enumerate() {
            scratch.chunk_input.clear();
            scratch
                .chunk_input
                .extend(input[cols.clone()].iter().map(|&x| x as u64));
            scratch.masks.clear();
            scratch.masks.extend(
                (0..self.config.input_bits).map(|t| InputMask::from_bit_of(&scratch.chunk_input, t)),
            );

            let stacks = std::mem::take(&mut self.mapped.stacks[chunk_idx]);
            for stack in &stacks {
                // One frozen RTN configuration per stack per inference:
                // the trap dwell times dwarf the MVM latency, so errors
                // persist across the bit-serial cycles.
                stack.array.sample_rtn_into(&mut self.rng, &mut scratch.rtn);
                // Ideal digital lane values for this chunk.
                scratch.ideal.clear();
                scratch.ideal.extend((0..stack.lanes).map(|l| {
                    let w = &self.weights[stack.row_offset + l];
                    cols.clone()
                        .map(|j| w[j] as i64 * input[j] as i64)
                        .sum::<i64>()
                }));

                // Observed total over all input cycles.
                let mut total = I256::ZERO;
                for (t, mask) in scratch.masks.iter().enumerate() {
                    if mask.count_ones() == 0 {
                        continue;
                    }
                    let observed =
                        self.read_group(stack, mask, &scratch.rtn, &mut scratch.row_outputs);
                    let value = self.decode_cycle(
                        stack,
                        mask,
                        &scratch.rtn,
                        observed,
                        &mut scratch.row_outputs,
                    );
                    total += value.shifted_left(t as u32);
                }

                // Attribute the residual error to lanes.
                let lane_bits = stack.group.layout().operand_bits();
                let ideal_total: I256 = scratch
                    .ideal
                    .iter()
                    .enumerate()
                    .map(|(l, &y)| I256::from_i128(y as i128).shifted_left(l as u32 * lane_bits))
                    .sum();
                let err = total - ideal_total;
                stack.group.split_signed_into(err, &mut scratch.lane_err);
                for l in 0..stack.lanes {
                    let lane_err = scratch.lane_err[l];
                    if lane_err != 0 {
                        // Which bit-slice lanes absorb residual analog
                        // error, and how large it lands after decode.
                        obs::counter!(lane_error_digits).incr();
                        obs::histogram!(lane_error_magnitude).record(lane_err.unsigned_abs());
                    }
                    out[stack.row_offset + l] += scratch.ideal[l] + lane_err;
                }
            }
            self.mapped.stacks[chunk_idx] = stacks;
        }

        // Un-permute a fault-aware remap: the loop above produced lane
        // outputs in programmed (remapped) order; scatter them back so
        // callers see the original row order.
        if let Some(order) = &self.remap_order {
            scratch.remapped_out.clear();
            scratch.remapped_out.extend_from_slice(out);
            for (new_pos, &orig) in order.iter().enumerate() {
                out[orig] = scratch.remapped_out[new_pos];
            }
        }

        self.mapped.chunks = chunks;
        self.scratch = scratch;
        self.report_stats();
    }

    fn mvm_batch_into(&mut self, inputs: &[u16], batch: usize, out: &mut Vec<i64>) {
        assert!(batch > 0, "batch must be at least 1");
        assert_eq!(inputs.len() % batch, 0, "inputs not divisible into batch");
        if batch == 1 {
            // Degenerate batch: delegate to the scalar kernel so the
            // draw order — and therefore every output bit — matches a
            // plain `mvm_into` call exactly.
            self.mvm_into(inputs, out);
            return;
        }
        let _span = obs::span!("mvm_batch");
        let in_dim = self.mapped.in_dim;
        let out_dim = self.mapped.out_dim;
        assert_eq!(inputs.len() / batch, in_dim, "input length mismatch");
        let input_bits = self.config.input_bits as usize;
        out.clear();
        out.resize(batch * out_dim, 0i64);
        // Same borrow dance as the scalar path: chunks and scratch are
        // taken out of `self` for the duration of the call.
        let chunks = std::mem::take(&mut self.mapped.chunks);
        let mut scratch = std::mem::take(&mut self.scratch);

        for (chunk_idx, cols) in chunks.iter().enumerate() {
            let chunk_w = cols.len();
            // Widen every vector's chunk slice and build all
            // `batch · input_bits` masks up front (vector-major).
            scratch.batch_input.clear();
            scratch.masks.clear();
            for v in 0..batch {
                let start = scratch.batch_input.len();
                scratch.batch_input.extend(
                    inputs[v * in_dim..(v + 1) * in_dim][cols.clone()]
                        .iter()
                        .map(|&x| x as u64),
                );
                let widened = &scratch.batch_input[start..];
                scratch
                    .masks
                    .extend((0..input_bits as u32).map(|t| InputMask::from_bit_of(widened, t)));
            }

            let stacks = std::mem::take(&mut self.mapped.stacks[chunk_idx]);
            for stack in &stacks {
                let rows = stack.array.row_count();
                // The batch's amortized physics: ONE frozen RTN
                // configuration per (chunk, stack) shared by every
                // vector — the snapshot is what the batch rides through
                // the array together — and the trap ∩ level-mask words
                // hoisted once against it.
                stack.array.sample_rtn_into(&mut self.rng, &mut scratch.rtn);
                stack.array.trap_level_sparse_into(
                    &scratch.rtn,
                    &mut scratch.trap_offsets,
                    &mut scratch.trap_entries,
                );

                for v in 0..batch {
                    let input = &inputs[v * in_dim..(v + 1) * in_dim];
                    // One ascending-column pass computes every bit
                    // plane's conductance sum for this vector.
                    stack.array.conductance_planes_into(
                        &scratch.batch_input[v * chunk_w..(v + 1) * chunk_w],
                        input_bits as u32,
                        &mut scratch.planes,
                    );
                    scratch.ideal.clear();
                    scratch.ideal.extend((0..stack.lanes).map(|l| {
                        let w = &self.weights[stack.row_offset + l];
                        cols.clone()
                            .map(|j| w[j] as i64 * input[j] as i64)
                            .sum::<i64>()
                    }));

                    let mut total = I256::ZERO;
                    for t in 0..input_bits {
                        let mask = &scratch.masks[v * input_bits + t];
                        if mask.count_ones() == 0 {
                            continue;
                        }
                        let g_totals = &scratch.planes[t * rows..(t + 1) * rows];
                        let observed = self.read_group_amortized(
                            stack,
                            mask,
                            g_totals,
                            &scratch.trap_offsets,
                            &scratch.trap_entries,
                            &mut scratch.normals,
                            &mut scratch.row_outputs,
                        );
                        let value = self.decode_cycle_by(stack, observed, |me| {
                            me.read_group_amortized(
                                stack,
                                mask,
                                g_totals,
                                &scratch.trap_offsets,
                                &scratch.trap_entries,
                                &mut scratch.normals,
                                &mut scratch.row_outputs,
                            )
                        });
                        total += value.shifted_left(t as u32);
                    }
                    let lane_bits = stack.group.layout().operand_bits();
                    let ideal_total: I256 = scratch
                        .ideal
                        .iter()
                        .enumerate()
                        .map(|(l, &y)| {
                            I256::from_i128(y as i128).shifted_left(l as u32 * lane_bits)
                        })
                        .sum();
                    let err = total - ideal_total;
                    stack.group.split_signed_into(err, &mut scratch.lane_err);
                    let out_v = &mut out[v * out_dim..(v + 1) * out_dim];
                    for l in 0..stack.lanes {
                        let lane_err = scratch.lane_err[l];
                        if lane_err != 0 {
                            obs::counter!(lane_error_digits).incr();
                            obs::histogram!(lane_error_magnitude).record(lane_err.unsigned_abs());
                        }
                        out_v[stack.row_offset + l] += scratch.ideal[l] + lane_err;
                    }
                }
            }
            self.mapped.stacks[chunk_idx] = stacks;
        }

        // Un-permute a fault-aware remap, per vector.
        if let Some(order) = &self.remap_order {
            for v in 0..batch {
                let out_v = &mut out[v * out_dim..(v + 1) * out_dim];
                scratch.remapped_out.clear();
                scratch.remapped_out.extend_from_slice(out_v);
                for (new_pos, &orig) in order.iter().enumerate() {
                    out_v[orig] = scratch.remapped_out[new_pos];
                }
            }
        }

        self.mapped.chunks = chunks;
        self.scratch = scratch;
        self.report_stats();
    }
}

/// Builds [`CrossbarEngine`]s for every matrix of a quantized network,
/// sharing a decode-statistics accumulator.
#[derive(Debug)]
pub struct CrossbarProvider {
    config: AccelConfig,
    base_seed: u64,
    counter: AtomicU64,
    stats: Arc<Mutex<DecodeStats>>,
}

impl CrossbarProvider {
    /// Creates a provider; engines get deterministic per-matrix seeds
    /// derived from `seed`.
    pub fn new(config: AccelConfig, seed: u64) -> CrossbarProvider {
        CrossbarProvider {
            config,
            base_seed: seed,
            counter: AtomicU64::new(0),
            stats: Arc::new(Mutex::new(DecodeStats::default())),
        }
    }

    /// Snapshot of decode statistics across all engines built by this
    /// provider.
    pub fn stats(&self) -> DecodeStats {
        *self.stats.lock()
    }

    /// The configuration.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }
}

impl MvmEngineProvider for CrossbarProvider {
    fn build(&self, matrix: &QuantizedMatrix) -> Box<dyn MvmEngine> {
        let idx = self.counter.fetch_add(1, Ordering::Relaxed);
        let seed = self
            .base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(idx);
        Box::new(CrossbarEngine::program(
            matrix,
            &self.config,
            seed,
            Arc::clone(&self.stats),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtectionScheme;
    use neural::Tensor;

    fn quantized(out: usize, inp: usize, seed: u64) -> QuantizedMatrix {
        let data: Vec<f32> = (0..out * inp)
            .map(|i| (((i as u64 * 2654435761 + seed) % 1000) as f32 / 500.0) - 1.0)
            .collect();
        QuantizedMatrix::from_tensor(&Tensor::from_vec(vec![out, inp], data))
    }

    fn noiseless_config(scheme: ProtectionScheme) -> AccelConfig {
        let mut c = AccelConfig::new(scheme);
        c.device.rtn_state_probability = 0.0;
        c.device.programming_tolerance = 0.0;
        c.device.fault_rate = 0.0;
        c.device.bandwidth = 0.0;
        c
    }

    fn exact_reference(matrix: &QuantizedMatrix, input: &[u16]) -> Vec<i64> {
        matrix
            .rows()
            .iter()
            .map(|row| row.iter().zip(input).map(|(&w, &x)| w as i64 * x as i64).sum())
            .collect()
    }

    fn run_engine(matrix: &QuantizedMatrix, config: AccelConfig, input: &[u16]) -> Vec<i64> {
        let provider = CrossbarProvider::new(config, 7);
        let mut engine = provider.build(matrix);
        engine.mvm(input)
    }

    #[test]
    fn noiseless_unprotected_is_exact() {
        let m = quantized(5, 12, 1);
        let input: Vec<u16> = (0..12).map(|i| (i * 37) as u16).collect();
        let out = run_engine(&m, noiseless_config(ProtectionScheme::None), &input);
        assert_eq!(out, exact_reference(&m, &input));
    }

    #[test]
    fn noiseless_static16_is_exact() {
        let m = quantized(3, 9, 2);
        let input: Vec<u16> = (0..9).map(|i| (i * 1001 % 4096) as u16).collect();
        let out = run_engine(&m, noiseless_config(ProtectionScheme::Static16), &input);
        assert_eq!(out, exact_reference(&m, &input));
    }

    #[test]
    fn noiseless_data_aware_is_exact() {
        let m = quantized(10, 8, 3);
        let input: Vec<u16> = (0..8).map(|i| (i * 777 % 65536) as u16).collect();
        let out = run_engine(&m, noiseless_config(ProtectionScheme::data_aware(9)), &input);
        assert_eq!(out, exact_reference(&m, &input));
    }

    #[test]
    fn noiseless_static128_is_exact() {
        let m = quantized(9, 6, 4);
        let input: Vec<u16> = vec![1, 100, 65535, 0, 42, 9999];
        let out = run_engine(&m, noiseless_config(ProtectionScheme::Static128), &input);
        assert_eq!(out, exact_reference(&m, &input));
    }

    #[test]
    fn noiseless_exact_across_cell_bits() {
        let m = quantized(8, 5, 5);
        let input: Vec<u16> = vec![3, 65535, 128, 0, 77];
        for bits in 1..=5 {
            let config = noiseless_config(ProtectionScheme::data_aware(10)).with_cell_bits(bits);
            let out = run_engine(&m, config, &input);
            assert_eq!(out, exact_reference(&m, &input), "cell bits {bits}");
        }
    }

    #[test]
    fn noisy_coded_is_closer_than_uncoded() {
        // With realistic noise, the data-aware engine's outputs should be
        // closer to the truth than the unprotected engine's, measured
        // over several MVMs.
        let m = quantized(16, 64, 6);
        let input: Vec<u16> = (0..64).map(|i| (i * 523 % 65536) as u16).collect();
        let truth = exact_reference(&m, &input);

        let err_of = |scheme: ProtectionScheme| -> f64 {
            let mut config = AccelConfig::new(scheme).with_fault_rate(0.0);
            config.device.programming_tolerance = 0.0;
            let provider = CrossbarProvider::new(config, 11);
            let mut engine = provider.build(&m);
            let mut total = 0.0;
            for _ in 0..3 {
                let out = engine.mvm(&input);
                total += out
                    .iter()
                    .zip(&truth)
                    .map(|(&o, &t)| (o - t).abs() as f64)
                    .sum::<f64>();
            }
            total
        };

        let uncoded = err_of(ProtectionScheme::None);
        let coded = err_of(ProtectionScheme::data_aware(10));
        assert!(
            coded < uncoded,
            "coded error {coded} not below uncoded {uncoded}"
        );
    }

    #[test]
    fn stats_accumulate() {
        let m = quantized(8, 16, 7);
        let input: Vec<u16> = (0..16).map(|i| (i * 3000) as u16).collect();
        let config = AccelConfig::new(ProtectionScheme::data_aware(9)).with_fault_rate(0.0);
        let provider = CrossbarProvider::new(config, 13);
        let mut engine = provider.build(&m);
        engine.mvm(&input);
        let stats = provider.stats();
        assert!(stats.total() > 0);
        assert!(stats.clean > 0);
    }

    #[test]
    fn retry_policy_reduces_uncorrectable_outcomes() {
        let m = quantized(8, 64, 8);
        let input: Vec<u16> = (0..64).map(|i| (65535 - i * 13) as u16).collect();
        let mut config = AccelConfig::new(ProtectionScheme::data_aware(7)).with_fault_rate(0.0);
        // Crank noise so uncorrectable events occur.
        config.device.rtn_state_probability = 0.4;

        let run = |retries: u32, seed: u64| {
            let mut c = config.clone();
            c.max_retries = retries;
            let provider = CrossbarProvider::new(c, seed);
            let mut engine = provider.build(&m);
            for _ in 0..2 {
                engine.mvm(&input);
            }
            provider.stats()
        };
        let without = run(0, 21);
        let with = run(3, 21);
        assert_eq!(without.retries, 0);
        // At this noise level untrusted decodes occur, so retries fire.
        assert!(
            with.retries > 0,
            "expected retries at high noise: {with:?}"
        );
    }

    /// The retry policy's *accounting*, pinned. At a fixed noise seed
    /// the decode statistics are a pure function of the retry budget,
    /// so these exact values lock the retry loop's behavior: how many
    /// re-reads fire and how many group-cycles stay untrusted
    /// (uncorrectable / miscorrected) for `max_retries` of 0, 1, and 2.
    /// A change to the retry loop's RNG
    /// draw order, its trust predicate, or its stat bookkeeping moves
    /// these numbers and fails here.
    #[test]
    fn retry_stats_pinned_across_retry_budgets() {
        let m = quantized(8, 64, 8);
        let input: Vec<u16> = (0..64).map(|i| (65535 - i * 13) as u16).collect();
        let mut config = AccelConfig::new(ProtectionScheme::data_aware(7)).with_fault_rate(0.0);
        // The same high-noise regime as the test above: untrusted
        // decodes are common, so every retry budget is exercised.
        config.device.rtn_state_probability = 0.4;

        let run = |retries: u32| {
            let mut c = config.clone();
            c.max_retries = retries;
            let provider = CrossbarProvider::new(c, 21);
            let mut engine = provider.build(&m);
            for _ in 0..2 {
                engine.mvm(&input);
            }
            provider.stats()
        };

        let pinned: [(u32, u64, u64, u64); 3] = [
            // (max_retries, retries, uncorrectable, miscorrected)
            (0, 0, 0, 11),
            (1, 13, 0, 11),
            (2, 19, 0, 9),
        ];
        let mut prev_retries = 0u64;
        for (budget, want_retries, want_uncorrectable, want_miscorrected) in pinned {
            let stats = run(budget);
            assert_eq!(
                (stats.retries, stats.uncorrectable, stats.miscorrected),
                (want_retries, want_uncorrectable, want_miscorrected),
                "max_retries={budget}: {stats:?}"
            );
            // Shape: a larger budget can only add re-reads.
            assert!(stats.retries >= prev_retries, "max_retries={budget}");
            prev_retries = stats.retries;
        }
    }

    /// Golden outputs captured from the original per-call-allocating
    /// kernel under realistic noise, before the scratch-buffer refactor.
    ///
    /// These pin the engine bit-for-bit: the exact RNG draw order (RTN
    /// snapshot per stack, then one Gaussian per row per nonzero input
    /// bit, then retry re-reads) and the ascending-column `f64`
    /// conductance summation. Any hot-path change that perturbs either
    /// — reordering reads, skipping a noise draw, resuming sums in a
    /// different order — shifts these values and fails here.
    #[test]
    fn golden_outputs_unchanged_by_scratch_refactor() {
        let m = quantized(12, 128, 42);
        let input: Vec<u16> = (0..128u64).map(|i| ((i * 2654435761) % 65536) as u16).collect();
        let cases: [(ProtectionScheme, [i64; 12], [i64; 12]); 3] = [
            (
                ProtectionScheme::data_aware(9),
                [
                    127397597052, 140241618919, 150974916455, 145492177304, 133099277965,
                    126332541367, 134383126773, 150414158966, 147950505676, 140002851557,
                    128593188469, 127480541949,
                ],
                [
                    127397601545, 140241636558, 150974888091, 145492128764, 133099254922,
                    126332573932, 134383126681, 150916898434, 147950460950, 140002864238,
                    128593188258, 127480527989,
                ],
            ),
            (
                ProtectionScheme::Static16,
                [
                    127404771727, 140241605476, 150961553906, 145492156284, 133098954247,
                    126307776518, 134367588908, 149486490128, 148026913398, 140002572170,
                    128565811183, 127480509554,
                ],
                [
                    127404712207, 140241620348, 150974768008, 145505606713, 133099249191,
                    126155465074, 134365731807, 149486630176, 147898453846, 140004833930,
                    128627255809, 127480538226,
                ],
            ),
            (
                ProtectionScheme::None,
                [
                    127435332491, 140251212166, 150975424201, 145492500511, 133109080359,
                    126338021914, 134380924592, 149478094112, 147943280384, 140200175530,
                    128609911615, 127480575090,
                ],
                [
                    127403988755, 140242231108, 150974458836, 145505153088, 132965023495,
                    126339611694, 134538373040, 149409963192, 147943510540, 139980005786,
                    128587553855, 127479684194,
                ],
            ),
        ];
        for (scheme, first, second) in cases {
            let label = scheme.label();
            let provider = CrossbarProvider::new(AccelConfig::new(scheme), 1234);
            let mut engine = provider.build(&m);
            assert_eq!(engine.mvm(&input), first, "{label} first call");
            assert_eq!(engine.mvm(&input), second, "{label} second call");
        }
    }

    /// Batch-of-1 must *delegate* to the scalar kernel: same RNG draw
    /// order, same summation order, bit-identical outputs — under full
    /// noise, across repeated calls on the same engine.
    #[test]
    fn batch_of_one_is_bit_identical_to_scalar_kernel() {
        let m = quantized(12, 128, 42);
        let input: Vec<u16> = (0..128u64).map(|i| ((i * 2654435761) % 65536) as u16).collect();
        for scheme in [
            ProtectionScheme::None,
            ProtectionScheme::Static16,
            ProtectionScheme::data_aware(9),
        ] {
            let label = scheme.label();
            let config = AccelConfig::new(scheme);
            let mut scalar = CrossbarProvider::new(config.clone(), 1234).build(&m);
            let mut batched = CrossbarProvider::new(config, 1234).build(&m);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for call in 0..3 {
                scalar.mvm_into(&input, &mut a);
                batched.mvm_batch_into(&input, 1, &mut b);
                assert_eq!(a, b, "{label} call {call}");
            }
        }
    }

    /// With every noise source disabled the batched kernel's outputs
    /// are RNG-independent, so batch-of-N must equal N sequential
    /// batch-of-1 calls integer-for-integer — and both equal the exact
    /// software reference. (Under noise the amortized RTN snapshot
    /// deliberately changes the draws; see the pinned goldens below.)
    #[test]
    fn noiseless_batch_matches_sequential_per_scheme() {
        let m = quantized(12, 64, 17);
        let batch = 8;
        let inputs: Vec<u16> = (0..batch as u64 * 64)
            .map(|i| ((i * 2654435761 + 99) % 65536) as u16)
            .collect();
        for scheme in [
            ProtectionScheme::None,
            ProtectionScheme::Static16,
            ProtectionScheme::data_aware(9),
        ] {
            let label = scheme.label();
            let config = noiseless_config(scheme);
            let mut seq_engine = CrossbarProvider::new(config.clone(), 1234).build(&m);
            let mut batch_engine = CrossbarProvider::new(config, 1234).build(&m);
            let mut batched = Vec::new();
            batch_engine.mvm_batch_into(&inputs, batch, &mut batched);
            let mut tmp = Vec::new();
            for v in 0..batch {
                let input = &inputs[v * 64..(v + 1) * 64];
                seq_engine.mvm_into(input, &mut tmp);
                assert_eq!(&batched[v * 12..(v + 1) * 12], tmp, "{label} vector {v}");
                assert_eq!(tmp, exact_reference(&m, input), "{label} vector {v} exact");
            }
        }
    }

    /// The number of decoded group-cycles is `Σ_v nonzero-bit count` —
    /// a pure function of the inputs, independent of noise draws — so
    /// it must match between batch-of-N and N sequential calls even
    /// under full noise where the outputs themselves differ.
    #[test]
    fn batched_decode_totals_match_sequential_under_noise() {
        let m = quantized(12, 64, 17);
        let batch = 5;
        let inputs: Vec<u16> = (0..batch as u64 * 64)
            .map(|i| ((i * 48271 + 7) % 65536) as u16)
            .collect();
        for scheme in [
            ProtectionScheme::None,
            ProtectionScheme::Static16,
            ProtectionScheme::data_aware(9),
        ] {
            let label = scheme.label();
            let config = AccelConfig::new(scheme);
            let seq_provider = CrossbarProvider::new(config.clone(), 55);
            let mut seq_engine = seq_provider.build(&m);
            let mut tmp = Vec::new();
            for v in 0..batch {
                seq_engine.mvm_into(&inputs[v * 64..(v + 1) * 64], &mut tmp);
            }
            let batch_provider = CrossbarProvider::new(config, 55);
            let mut batch_engine = batch_provider.build(&m);
            batch_engine.mvm_batch_into(&inputs, batch, &mut tmp);
            assert_eq!(
                seq_provider.stats().total(),
                batch_provider.stats().total(),
                "{label}"
            );
        }
    }

    /// Full-noise golden outputs of the batched kernel, pinned.
    ///
    /// These lock the batched draw discipline bit-for-bit: per (chunk,
    /// stack) one RTN snapshot shared by the whole batch, then per
    /// vector per nonzero input bit one paired Gaussian per row
    /// (ascending) plus retry re-reads, with the single-sqrt sigma and
    /// reciprocal quantize. Any reordering of the amortized reads — or
    /// a change to the paired-normal stream — shifts these values.
    #[test]
    fn batched_golden_outputs_pinned() {
        let m = quantized(12, 128, 42);
        let batch = 3;
        let inputs: Vec<u16> = (0..batch as u64 * 128)
            .map(|i| ((i * 2654435761) % 65536) as u16)
            .collect();
        let cases: [(ProtectionScheme, [i64; 36]); 3] = golden_batched_cases();
        for (scheme, want) in cases {
            let label = scheme.label();
            let provider = CrossbarProvider::new(AccelConfig::new(scheme).with_batch(batch), 1234);
            let mut engine = provider.build(&m);
            let mut out = Vec::new();
            engine.mvm_batch_into(&inputs, batch, &mut out);
            assert_eq!(out, want, "{label}");
        }
    }

    #[test]
    fn batched_remap_scatter_restores_row_order_per_vector() {
        let m = quantized(24, 16, 10);
        let batch = 4;
        let inputs: Vec<u16> = (0..batch as u64 * 16).map(|i| (i * 481 % 65536) as u16).collect();
        let mut config = noiseless_config(ProtectionScheme::data_aware(9));
        config.remap = true;
        let provider = CrossbarProvider::new(config, 7);
        let mut engine = provider.build(&m);
        let mut out = Vec::new();
        engine.mvm_batch_into(&inputs, batch, &mut out);
        for v in 0..batch {
            let input = &inputs[v * 16..(v + 1) * 16];
            assert_eq!(
                &out[v * 24..(v + 1) * 24],
                exact_reference(&m, input),
                "vector {v}"
            );
        }
    }

    #[test]
    fn remap_scatter_restores_row_order() {
        // Noiseless, so every lane is exact regardless of which group it
        // was programmed into — the output must equal the reference even
        // though the rows were permuted internally.
        let m = quantized(24, 16, 10);
        let input: Vec<u16> = (0..16).map(|i| (i * 481) as u16).collect();
        let mut config = noiseless_config(ProtectionScheme::data_aware(9));
        config.remap = true;
        let out = run_engine(&m, config, &input);
        assert_eq!(out, exact_reference(&m, &input));
    }

    #[test]
    fn try_program_accepts_valid_config() {
        let m = quantized(4, 8, 12);
        let config = noiseless_config(ProtectionScheme::data_aware(9));
        let stats = Arc::new(Mutex::new(DecodeStats::default()));
        assert!(CrossbarEngine::try_program(&m, &config, 3, stats).is_ok());
    }

    #[test]
    fn try_program_reports_code_errors() {
        let m = quantized(4, 8, 12);
        // A 5-bit budget admits no hardware divider constant
        // (max A = 31/3 = 10 < 19), so the A-search must fail with a
        // typed error instead of panicking.
        let config = noiseless_config(ProtectionScheme::DataAware {
            check_bits: 5,
            hardware_candidates: true,
        });
        let stats = Arc::new(Mutex::new(DecodeStats::default()));
        let result = CrossbarEngine::try_program(&m, &config, 3, stats);
        assert!(matches!(result, Err(crate::AccelError::Code(_))));
    }

    #[test]
    fn mvm_into_reuses_buffer_and_matches_mvm() {
        let m = quantized(6, 32, 11);
        let input: Vec<u16> = (0..32).map(|i| (i * 999) as u16).collect();
        let config = AccelConfig::new(ProtectionScheme::data_aware(9));
        // Two identically seeded engines: one driven through the
        // allocating wrapper, one through `mvm_into` against a single
        // reused output buffer.
        let mut e1 = CrossbarProvider::new(config.clone(), 77).build(&m);
        let mut e2 = CrossbarProvider::new(config, 77).build(&m);
        let mut out = Vec::new();
        for call in 0..3 {
            let expected = e1.mvm(&input);
            e2.mvm_into(&input, &mut out);
            assert_eq!(out, expected, "call {call}");
        }
    }

    #[test]
    fn uncoded_stats_tracked_separately() {
        let m = quantized(4, 8, 9);
        let input: Vec<u16> = vec![1; 8];
        let config = noiseless_config(ProtectionScheme::None);
        let provider = CrossbarProvider::new(config, 5);
        let mut engine = provider.build(&m);
        engine.mvm(&input);
        let stats = provider.stats();
        assert!(stats.uncoded > 0);
        assert_eq!(stats.clean, 0);
        assert_eq!(stats.error_rate(), 0.0);
    }
    /// Full-noise batched outputs pinned at capture time (12x128 matrix,
    /// seed 42, batch 3, provider seed 1234). The batched path draws its
    /// noise in a different order than batch-of-1 (one RTN snapshot per
    /// stack amortized over the batch), so these differ from sequential
    /// scalar outputs by design; any unintended change to the batched
    /// draw order shows up as a diff here.
    fn golden_batched_cases() -> [(ProtectionScheme, [i64; 36]); 3] {
        [
            (
                ProtectionScheme::data_aware(9),
                [127397575190, 140241646929, 150974865833, 145492184111, 133099240553, 126332549207, 134383159081, 150413890607, 147950469896, 140002856454, 128593214805, 127480493187, 136577066644, 144575316153, 148474804519, 134514159062, 125202537747, 130106911921, 141901532001, 150742257042, 140157169800, 130995915469, 126962332590, 138183178400, 143785137316, 142642757853, 139708460841, 125859664760, 128219121453, 140499601985, 143153667064, 144826183730, 126097629960, 124312373968, 136244596636, 142619826154],
            ),
            (
                ProtectionScheme::Static16,
                [127404741983, 140237559868, 150974885840, 145492161916, 133099190257, 126324844914, 134410813100, 149486466656, 147949325042, 140002869642, 128618510433, 127480509554, 136658553999, 144540996028, 148478533840, 134513778300, 125202479729, 130106301298, 141878680108, 150433862496, 140133384114, 130995947626, 127065301217, 138183187442, 143855485071, 142138416828, 139710811208, 125859691900, 128219086065, 140495556978, 143136903212, 144688304224, 126081954482, 124312354442, 136500393313, 142619837298],
            ),
            (
                ProtectionScheme::None,
                [127368223499, 140369299782, 150975178216, 145492502592, 133363490343, 126334596078, 134391812015, 149489233696, 147943308028, 140049076106, 128594338239, 127480501074, 136611292555, 145112656326, 148609290088, 134497582400, 125294813351, 130036609646, 141903643303, 150162721696, 140152159868, 130756378634, 127029795775, 138165361618, 143790129139, 143177435718, 139712800744, 125927428672, 128210764583, 140553068782, 143153698223, 144305924256, 126095513084, 124105858698, 136243168575, 142618788690],
            ),
        ]
    }
}
