//! A resident inference service over line-delimited JSON.
//!
//! `cli serve` keeps programmed crossbar engines warm between requests:
//! programming a model onto simulated hardware costs milliseconds (map,
//! A-search, write, verify), while answering from an already-programmed
//! engine pool costs microseconds. The service owns that pool and the
//! request path around it:
//!
//! - **Engine pool, keyed `(scheme, wear epoch)`** — the first request
//!   for a scheme programs its engine set inline (the cold path); every
//!   later request at the same epoch reuses it. When the wear epoch
//!   advances (`{"admin":"advance_epoch"}`), the old set keeps serving
//!   while a background programmer builds its replacement at the new
//!   epoch's fault rate; the worker swaps atomically once the
//!   replacement is programmed and verified.
//! - **Bounded queues, typed overload** — each worker shard owns a
//!   [`queue::Bounded`] request queue. A full queue refuses the push
//!   and the client gets `{"ok":false,"error":"overloaded"}` instead of
//!   unbounded buffering. Requests may carry a `deadline_ms`; one that
//!   expires before a worker reaches it is answered
//!   `deadline_exceeded`, not served late.
//! - **Shared-nothing workers** — requests for a scheme always hash to
//!   the same worker, so engine sets are owned by exactly one thread
//!   and swap installation is a plain (per-thread) map insert. Workers
//!   collect small bursts from their queue (flush on size or linger
//!   timeout) before serving.
//! - **Determinism under chaos** — an `ok` response is a pure function
//!   of `(service seed, scheme, epoch served, request sample list)`:
//!   engine programming reseeds from `(seed, scheme, epoch)` and every
//!   request reseeds the engines from its own content hash. Injected
//!   faults ([`chaos::Seam::SocketAccept`] / `SocketRead` /
//!   `SocketWrite` / `EngineSwap`, plus worker panics) cost retries or
//!   dropped/torn lines — never a different answer — so a client that
//!   re-sends an unacknowledged request gets a byte-identical response.
//!
//! The wire protocol is documented in [`protocol`]; `DESIGN.md`
//! describes the architecture and overload model in prose.

pub mod bench;
mod pool;
pub mod protocol;
pub mod queue;
mod worker;

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write as IoWrite};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use chaos::clock;
use chaos::{ChaosSchedule, IoFault, Seam};
use neural::QuantizedNetwork;
use parking_lot::Mutex;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use xbar::endurance::EnduranceParams;

use crate::error::AccelError;
use crate::scheme::{AccelConfig, ProtectionScheme};
use protocol::{AdminOp, Frame, Reject};
use queue::{Bounded, PushError};

pub(crate) use pool::{EngineSet, ProgramJob};

/// How the service is built: model size, shard count, queue bounds,
/// wear model, and optional fault injection.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Master seed: training, programming, and per-request noise all
    /// derive from it, so two services at the same seed answer
    /// identically.
    pub seed: u64,
    /// Worker shards (each owns a queue and its engine sets).
    pub workers: usize,
    /// Per-worker bounded queue capacity; a full queue rejects with
    /// `overloaded`.
    pub queue_capacity: usize,
    /// Engine batch sizing and the per-request internal batch cap.
    pub batch_max: usize,
    /// How long a worker lingers collecting a burst once it holds at
    /// least one request, in milliseconds.
    pub linger_ms: u64,
    /// Seed-stable retries per request after a worker panic (the
    /// request is answered `internal_error` once these are exhausted).
    pub request_retries: u32,
    /// Hidden-layer width of the built-in MLP (800 = the paper's MLP2
    /// topology; tests shrink it to keep programming cheap).
    pub hidden_units: usize,
    /// Synthetic-digit examples the built-in model trains on.
    pub train_examples: usize,
    /// Built-in test set size (requests index into it).
    pub test_examples: usize,
    /// SGD epochs for the built-in model.
    pub train_epochs: usize,
    /// Cell writes already consumed at wear epoch 0.
    pub initial_writes: f64,
    /// Cell writes consumed per wear epoch advance.
    pub writes_per_epoch: f64,
    /// Endurance distribution mapping writes to stuck-cell fraction.
    pub endurance: EnduranceParams,
    /// Fault schedule for the serve seams; `None` = no injection.
    pub chaos: Option<ChaosSchedule>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            seed: 7,
            workers: 2,
            queue_capacity: 32,
            batch_max: 16,
            linger_ms: 2,
            request_retries: 2,
            hidden_units: 800,
            train_examples: 120,
            test_examples: 32,
            train_epochs: 2,
            initial_writes: 1e6,
            writes_per_epoch: 2e4,
            endurance: EnduranceParams::default(),
            chaos: None,
        }
    }
}

impl ServeConfig {
    /// Checks the configuration for internal consistency.
    ///
    /// # Errors
    ///
    /// [`AccelError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), AccelError> {
        if self.workers == 0 {
            return Err(AccelError::InvalidConfig("workers must be at least 1".into()));
        }
        if self.queue_capacity == 0 {
            return Err(AccelError::InvalidConfig(
                "queue_capacity must be at least 1".into(),
            ));
        }
        if self.batch_max == 0 {
            return Err(AccelError::InvalidConfig("batch_max must be at least 1".into()));
        }
        if self.hidden_units == 0 {
            return Err(AccelError::InvalidConfig("hidden_units must be at least 1".into()));
        }
        if self.train_examples == 0 || self.test_examples == 0 {
            return Err(AccelError::InvalidConfig(
                "train_examples and test_examples must be nonzero".into(),
            ));
        }
        if !(self.initial_writes.is_finite() && self.writes_per_epoch.is_finite()) {
            return Err(AccelError::InvalidConfig(
                "wear-model write counts must be finite".into(),
            ));
        }
        Ok(())
    }

    /// The stuck-cell fraction engines programmed at `epoch` carry,
    /// from the endurance model at that epoch's cumulative writes.
    pub fn fault_rate_at(&self, epoch: u64) -> f64 {
        self.endurance
            .failure_probability(self.initial_writes + self.writes_per_epoch * epoch as f64)
    }
}

/// FNV-1a over a label, for stable string → stream hashing.
pub(crate) fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64-style fold of a word sequence into one seed. Same shape
/// as `chaos::mix`: order-sensitive, avalanching, and pure.
pub(crate) fn fold(words: &[u64]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    for &w in words {
        h ^= w;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
    }
    h
}

/// Programming seed for a `(scheme, epoch)` engine set: stable across
/// retries and across service restarts at the same master seed.
pub(crate) fn program_seed(master: u64, label: &str, epoch: u64) -> u64 {
    fold(&[master, fnv(label), epoch, 0x9E37_79B9])
}

/// Per-request noise seed: master seed, scheme, the epoch actually
/// served, and the request's sample list — and nothing else (not the
/// id, not the deadline), so a re-sent request replays identically.
pub(crate) fn request_seed(master: u64, label: &str, epoch: u64, samples: &[usize]) -> u64 {
    let mut words = Vec::with_capacity(4 + samples.len());
    words.push(master);
    words.push(fnv(label));
    words.push(epoch);
    words.push(samples.len() as u64);
    words.extend(samples.iter().map(|&s| s as u64));
    fold(&words)
}

/// One queued inference request.
pub(crate) struct Job {
    pub request: protocol::Request,
    pub scheme: ProtectionScheme,
    pub conn: Arc<Conn>,
    /// Absolute monotonic deadline, if the request carried one.
    pub deadline_ns: Option<u64>,
}

/// The write half of one client connection, shared between its reader
/// thread (admin + rejection responses) and the worker threads that
/// answer its queued requests.
pub(crate) struct Conn {
    state: Mutex<ConnState>,
}

struct ConnState {
    stream: TcpStream,
    /// A previous write was torn mid-line; the next write must emit a
    /// newline first so the client's line framing can resynchronise.
    resync: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            state: Mutex::new(ConnState { stream, resync: false }),
        }
    }

    /// Writes one response line through the [`Seam::SocketWrite`] chaos
    /// seam. Returns whether the full line was acknowledged to the
    /// client; a dropped or torn line returns `false` (the client will
    /// re-send, and the replay is deterministic).
    pub(crate) fn send(&self, line: &str, fault: Option<IoFault>) -> bool {
        let mut s = self.state.lock();
        if s.resync {
            let _ = s.stream.write_all(b"\n");
            s.resync = false;
        }
        match fault {
            None => {
                let full = s.stream.write_all(line.as_bytes()).is_ok()
                    && s.stream.write_all(b"\n").is_ok();
                let _ = s.stream.flush();
                full
            }
            // Hard error: the response never reaches the wire.
            Some(IoFault::Error(_)) => false,
            // Torn: a strict UTF-8 prefix lands with no newline. The
            // client sees a malformed (unterminated) line and ignores
            // it; `resync` restores framing for the next response.
            Some(IoFault::Torn { roll }) => {
                let mut cut = (roll % line.len().max(1) as u64) as usize;
                while cut > 0 && !line.is_char_boundary(cut) {
                    cut -= 1;
                }
                let _ = s.stream.write_all(line[..cut].as_bytes());
                let _ = s.stream.flush();
                s.resync = true;
                false
            }
            // Socket seams are configured with zero bit-flip rate; if a
            // config ever enables it anyway, fail safe by dropping the
            // line rather than acknowledging corrupted bytes.
            Some(IoFault::BitFlip { .. }) => false,
        }
    }

    /// Writes one control-plane line with no fault injection: admin
    /// responses document the service's state and must stay readable
    /// even in chaos runs.
    pub(crate) fn send_raw(&self, line: &str) {
        let mut s = self.state.lock();
        if s.resync {
            let _ = s.stream.write_all(b"\n");
            s.resync = false;
        }
        let _ = s.stream.write_all(line.as_bytes());
        let _ = s.stream.write_all(b"\n");
        let _ = s.stream.flush();
    }
}

/// Monotonic service counters (also mirrored as obs counters).
#[derive(Default)]
pub(crate) struct Stats {
    pub accepted: AtomicU64,
    pub served: AtomicU64,
    pub rejected_overloaded: AtomicU64,
    pub rejected_deadline: AtomicU64,
    pub rejected_bad: AtomicU64,
    pub rejected_internal: AtomicU64,
    pub retries: AtomicU64,
    pub swaps: AtomicU64,
    pub swap_faults: AtomicU64,
    pub pool_hits: AtomicU64,
    pub pool_cold: AtomicU64,
    pub pool_stale: AtomicU64,
    pub dropped_responses: AtomicU64,
    pub watchdog_trips: AtomicU64,
}

/// A point-in-time snapshot of the service counters, as reported by
/// `{"admin":"stats"}` and by [`Service::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Client connections accepted.
    pub accepted: u64,
    /// Requests answered `ok`.
    pub served: u64,
    /// Requests refused `overloaded` (queue full or draining).
    pub rejected_overloaded: u64,
    /// Requests refused `deadline_exceeded`.
    pub rejected_deadline: u64,
    /// Frames refused `bad_request`.
    pub rejected_bad: u64,
    /// Requests refused `internal_error` (retries exhausted).
    pub rejected_internal: u64,
    /// Seed-stable request retries after worker panics.
    pub retries: u64,
    /// Completed wear-epoch engine swaps.
    pub swaps: u64,
    /// Injected programming-verification faults absorbed by retries.
    pub swap_faults: u64,
    /// Requests served from an already-programmed engine set.
    pub pool_hits: u64,
    /// Requests that programmed their engine set inline (cold path).
    pub pool_cold: u64,
    /// Requests served by a stale-epoch set while the replacement
    /// programs in the background.
    pub pool_stale: u64,
    /// Response lines dropped or torn by injected socket faults.
    pub dropped_responses: u64,
    /// Worker stalls flagged by the supervisor watchdog.
    pub watchdog_trips: u64,
}

impl Stats {
    fn snapshot(&self) -> StatsSnapshot {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        StatsSnapshot {
            accepted: get(&self.accepted),
            served: get(&self.served),
            rejected_overloaded: get(&self.rejected_overloaded),
            rejected_deadline: get(&self.rejected_deadline),
            rejected_bad: get(&self.rejected_bad),
            rejected_internal: get(&self.rejected_internal),
            retries: get(&self.retries),
            swaps: get(&self.swaps),
            swap_faults: get(&self.swap_faults),
            pool_hits: get(&self.pool_hits),
            pool_cold: get(&self.pool_cold),
            pool_stale: get(&self.pool_stale),
            dropped_responses: get(&self.dropped_responses),
            watchdog_trips: get(&self.watchdog_trips),
        }
    }
}

/// State shared by every service thread.
pub(crate) struct Shared {
    pub config: ServeConfig,
    pub qnet: QuantizedNetwork,
    /// Built-in test set, flattened `[n_samples · sample_dim]`.
    pub samples: Vec<f32>,
    pub sample_dim: usize,
    pub n_samples: usize,
    /// Current wear epoch (admin-advanced).
    pub epoch: AtomicU64,
    /// Drain-then-exit flag: set by `{"admin":"shutdown"}` or
    /// [`Service::shutdown`].
    pub shutdown: AtomicBool,
    /// One bounded request queue per worker shard.
    pub queues: Vec<Arc<Bounded<Job>>>,
    /// Background programming requests for wear-epoch swaps.
    pub program_queue: Bounded<ProgramJob>,
    /// Programmed replacement sets awaiting installation, per worker.
    pub mailboxes: Vec<Mutex<Vec<EngineSet>>>,
    /// `(scheme label, epoch)` pairs already queued for programming.
    pub pending: Mutex<HashSet<(String, u64)>>,
    /// Per-seam operation counters feeding the chaos schedule.
    rolls: [AtomicU64; 4],
    pub stats: Stats,
    /// Last-activity monotonic timestamp per worker, for the watchdog.
    pub heartbeats: Vec<AtomicU64>,
}

impl Shared {
    /// Rolls the chaos schedule at a serve seam; emits the
    /// self-documenting `chaos_fault` event when a fault fires.
    pub(crate) fn seam_fault(&self, seam: Seam) -> Option<IoFault> {
        let schedule = self.config.chaos.as_ref()?;
        let slot = match seam {
            Seam::SocketAccept => 0,
            Seam::SocketRead => 1,
            Seam::SocketWrite => 2,
            _ => 3,
        };
        let index = self.rolls[slot].fetch_add(1, Ordering::Relaxed);
        let fault = schedule.io_fault(seam, index);
        if let Some(f) = &fault {
            obs::events::emit(
                obs::Event::new("chaos_fault")
                    .str("seam", seam.label())
                    .u64("index", index)
                    .str("fault", f.label()),
            );
        }
        fault
    }

    pub(crate) fn beat(&self, widx: usize) {
        self.heartbeats[widx].store(clock::now_ns(), Ordering::Relaxed);
    }

    /// Sends a typed rejection (through the chaos write seam) and
    /// records it in counters and the event log.
    pub(crate) fn reject(&self, conn: &Conn, id: &str, reason: Reject, queue_depth: u64) {
        let (stat, name) = match reason {
            Reject::Overloaded => (&self.stats.rejected_overloaded, "overloaded"),
            Reject::DeadlineExceeded => (&self.stats.rejected_deadline, "deadline_exceeded"),
            Reject::BadRequest => (&self.stats.rejected_bad, "bad_request"),
            Reject::InternalError => (&self.stats.rejected_internal, "internal_error"),
        };
        stat.fetch_add(1, Ordering::Relaxed);
        match reason {
            Reject::Overloaded => obs::counter!(serve_rejected_overloaded).incr(),
            Reject::DeadlineExceeded => obs::counter!(serve_rejected_deadline).incr(),
            Reject::BadRequest => obs::counter!(serve_rejected_bad).incr(),
            Reject::InternalError => obs::counter!(serve_rejected_internal).incr(),
        }
        obs::events::emit(
            obs::Event::new("request_rejected")
                .str("request_id", id)
                .str("reason", name)
                .u64("queue_depth", queue_depth),
        );
        let fault = self.seam_fault(Seam::SocketWrite);
        if !conn.send(&protocol::render_reject(id, reason), fault) {
            self.stats.dropped_responses.fetch_add(1, Ordering::Relaxed);
            obs::counter!(serve_responses_dropped).incr();
        }
    }

    fn stats_line(&self) -> String {
        let s = self.stats.snapshot();
        format!(
            "{{\"ok\":true,\"type\":\"stats\",\"epoch\":{},\"accepted\":{},\"served\":{},\
             \"rejected_overloaded\":{},\"rejected_deadline\":{},\"rejected_bad\":{},\
             \"rejected_internal\":{},\"retries\":{},\"swaps\":{},\"swap_faults\":{},\
             \"pool_hits\":{},\"pool_cold\":{},\"pool_stale\":{},\"dropped_responses\":{},\
             \"watchdog_trips\":{}}}",
            self.epoch.load(Ordering::Relaxed),
            s.accepted,
            s.served,
            s.rejected_overloaded,
            s.rejected_deadline,
            s.rejected_bad,
            s.rejected_internal,
            s.retries,
            s.swaps,
            s.swap_faults,
            s.pool_hits,
            s.pool_cold,
            s.pool_stale,
            s.dropped_responses,
            s.watchdog_trips,
        )
    }
}

/// What [`Service::join`] returns after drain-then-exit shutdown.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// The port the service listened on.
    pub port: u16,
    /// Final wear epoch.
    pub epoch: u64,
    /// Final counter values.
    pub stats: StatsSnapshot,
}

/// A running inference service (listener + worker shards + background
/// programmer + watchdog supervisor).
pub struct Service {
    shared: Arc<Shared>,
    port: u16,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Service {
    /// Trains the built-in model, binds a loopback listener on an
    /// ephemeral port, and spawns the service threads.
    ///
    /// # Errors
    ///
    /// [`AccelError::InvalidConfig`] for an inconsistent
    /// [`ServeConfig`]; [`AccelError::Service`] when the socket cannot
    /// be bound or the model cannot be quantized.
    pub fn start(config: ServeConfig) -> Result<Service, AccelError> {
        config.validate()?;
        // The built-in model: same deterministic recipe as the CLI
        // campaign (seeded init, seeded data, in-order minibatches), so
        // every service at one master seed serves the same network.
        let mut rng = ChaCha8Rng::seed_from_u64(fold(&[config.seed, 17]));
        // MLP2's topology with a configurable hidden width (800 = the
        // paper's network; the layer/init/order matches
        // `neural::models::mlp2` exactly at that width).
        let mut net = neural::Network::new(vec![
            Box::new(neural::Flatten::new()),
            Box::new(neural::Dense::new(784, config.hidden_units, &mut rng)),
            Box::new(neural::Relu::new()),
            Box::new(neural::Dense::new(config.hidden_units, 10, &mut rng)),
        ]);
        let mut train = neural::data::digits(config.train_examples, 42);
        neural::data::shuffle(&mut train, 3);
        for _ in 0..config.train_epochs {
            net.train_epoch(&train.images, &train.labels, 32, 0.1);
        }
        let qnet = QuantizedNetwork::try_from_network(&net).map_err(|e| AccelError::Service {
            stage: "quantize".into(),
            message: e.to_string(),
        })?;
        let test = neural::data::digits(config.test_examples, 99);
        let n_samples = test.labels.len();
        let samples = test.images.data().to_vec();
        let sample_dim = samples.len() / n_samples.max(1);

        // lint: allow(chaos_seam_coverage, one-time loopback bind before any request exists; accept/read/write faults are injected per-connection downstream where the chaos schedule has a request to target)
        let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| AccelError::Service {
            stage: "bind".into(),
            message: e.to_string(),
        })?;
        let port = listener
            .local_addr()
            .map_err(|e| AccelError::Service {
                stage: "bind".into(),
                message: e.to_string(),
            })?
            .port();
        listener.set_nonblocking(true).map_err(|e| AccelError::Service {
            stage: "bind".into(),
            message: e.to_string(),
        })?;

        let workers = config.workers;
        let queues: Vec<Arc<Bounded<Job>>> = (0..workers)
            .map(|_| Arc::new(Bounded::new(config.queue_capacity)))
            .collect();
        let shared = Arc::new(Shared {
            qnet,
            samples,
            sample_dim,
            n_samples,
            epoch: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            queues,
            program_queue: Bounded::new(workers * 4 + 4),
            mailboxes: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
            pending: Mutex::new(HashSet::new()),
            rolls: Default::default(),
            stats: Stats::default(),
            heartbeats: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            config,
        });

        let mut threads = Vec::new();
        for widx in 0..workers {
            let s = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || worker::run_worker(s, widx)));
        }
        {
            let s = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || pool::run_programmer(s)));
        }
        {
            let s = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || worker::run_supervisor(s)));
        }
        {
            let s = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || run_acceptor(s, listener)));
        }

        Ok(Service { shared, port, threads })
    }

    /// The loopback port the service is listening on.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Requests drain-then-exit shutdown (same effect as
    /// `{"admin":"shutdown"}`): stop accepting, answer queued work,
    /// stop.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until shutdown is requested (by [`Service::shutdown`] or
    /// an admin frame), drains queued work, joins every thread, and
    /// reports final counters.
    pub fn join(self) -> ServiceReport {
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(20));
        }
        // Teardown order: the acceptor (and its readers) exit on the
        // flag, so no new work arrives; worker queues close and drain;
        // the programmer closes after the workers (nothing enqueues
        // swaps any more); the supervisor exits on the flag.
        for q in &self.shared.queues {
            q.close();
        }
        self.shared.program_queue.close();
        for t in self.threads {
            let _ = t.join();
        }
        ServiceReport {
            port: self.port,
            epoch: self.shared.epoch.load(Ordering::Relaxed),
            stats: self.shared.stats.snapshot(),
        }
    }
}

/// Accept loop: polls the nonblocking listener, applies
/// [`Seam::SocketAccept`] chaos, and spawns one reader thread per
/// connection. Joins its readers before exiting so [`Service::join`]
/// sees a quiesced wire.
fn run_acceptor(shared: Arc<Shared>, listener: TcpListener) {
    let mut readers = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                if shared.seam_fault(Seam::SocketAccept).is_some() {
                    // Connection refused by fault injection: the client
                    // sees a clean close before any frame.
                    obs::counter!(serve_accept_faults).incr();
                    drop(stream);
                    continue;
                }
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                obs::counter!(serve_accepted).incr();
                let s = Arc::clone(&shared);
                readers.push(std::thread::spawn(move || run_reader(s, stream)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    for r in readers {
        let _ = r.join();
    }
    obs::flush_thread();
}

/// Per-connection reader: parses frames, answers admin inline, and
/// routes inference requests to their scheme's worker shard. Malformed
/// lines are answered `bad_request` and the connection survives.
fn run_reader(shared: Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let conn = match stream.try_clone() {
        Ok(write_half) => Arc::new(Conn::new(write_half)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let frame_line = std::mem::take(&mut line);
                if !handle_line(&shared, &conn, frame_line.trim_end_matches(['\n', '\r'])) {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Partial line (if any) stays buffered in `line`.
                continue;
            }
            Err(_) => break,
        }
    }
    obs::flush_thread();
}

/// Processes one complete wire line. Returns `false` when the
/// connection should be dropped (injected hard read fault).
fn handle_line(shared: &Arc<Shared>, conn: &Arc<Conn>, raw: &str) -> bool {
    if raw.is_empty() {
        return true;
    }
    // The read seam rolls once per complete line: a hard fault models
    // the peer vanishing mid-request (connection drops, request is
    // never acknowledged); a torn fault models a truncated read, which
    // must surface as a malformed frame, never a crash.
    let mut effective = raw;
    let truncated;
    match shared.seam_fault(Seam::SocketRead) {
        Some(IoFault::Torn { roll }) => {
            let mut cut = (roll % raw.len().max(1) as u64) as usize;
            while cut > 0 && !raw.is_char_boundary(cut) {
                cut -= 1;
            }
            truncated = raw[..cut].to_string();
            effective = &truncated;
            obs::counter!(serve_read_faults).incr();
        }
        Some(_) => {
            obs::counter!(serve_read_faults).incr();
            return false;
        }
        None => {}
    }
    match protocol::parse_frame(effective) {
        Frame::Bad { id } => {
            shared.reject(conn, &id, Reject::BadRequest, 0);
            true
        }
        Frame::Admin(op) => {
            handle_admin(shared, conn, op);
            true
        }
        Frame::Infer(request) => {
            route_request(shared, conn, request);
            true
        }
    }
}

fn handle_admin(shared: &Arc<Shared>, conn: &Arc<Conn>, op: AdminOp) {
    match op {
        AdminOp::Ping => conn.send_raw("{\"ok\":true,\"type\":\"pong\"}"),
        AdminOp::Stats => conn.send_raw(&shared.stats_line()),
        AdminOp::AdvanceEpoch => {
            let next = shared.epoch.fetch_add(1, Ordering::SeqCst) + 1;
            conn.send_raw(&format!("{{\"ok\":true,\"type\":\"epoch\",\"epoch\":{next}}}"));
        }
        AdminOp::Shutdown => {
            conn.send_raw("{\"ok\":true,\"type\":\"shutdown\"}");
            shared.shutdown.store(true, Ordering::SeqCst);
        }
    }
}

/// Validates an inference request and pushes it onto its scheme's
/// worker queue, answering `bad_request` / `overloaded` inline when it
/// cannot be queued.
fn route_request(shared: &Arc<Shared>, conn: &Arc<Conn>, request: protocol::Request) {
    obs::counter!(serve_requests).incr();
    let Some(scheme) = ProtectionScheme::from_label(&request.scheme) else {
        shared.reject(conn, &request.id, Reject::BadRequest, 0);
        return;
    };
    // Reject impossible configurations at the door so the worker's
    // programming path only ever fails from injected faults.
    if AccelConfig::new(scheme.clone())
        .with_batch(shared.config.batch_max)
        .validate()
        .is_err()
    {
        shared.reject(conn, &request.id, Reject::BadRequest, 0);
        return;
    }
    if request.samples.iter().any(|&s| s >= shared.n_samples) {
        shared.reject(conn, &request.id, Reject::BadRequest, 0);
        return;
    }
    let deadline_ns = (request.deadline_ms > 0)
        .then(|| clock::now_ns().saturating_add(request.deadline_ms.saturating_mul(1_000_000)));
    // Shared-nothing routing: a scheme always lands on one worker, so
    // its engine sets have exactly one owner thread.
    let widx = (fnv(&request.scheme) % shared.config.workers as u64) as usize;
    let id = request.id.clone();
    let job = Job {
        request,
        scheme,
        conn: Arc::clone(conn),
        deadline_ns,
    };
    match shared.queues[widx].try_push(job) {
        Ok(depth) => {
            obs::histogram!(serve_queue_depth).record(depth as u64);
        }
        Err((_job, PushError::Full)) => {
            shared.reject(conn, &id, Reject::Overloaded, shared.config.queue_capacity as u64);
        }
        Err((_job, PushError::Closed)) => {
            // Draining for shutdown: new work is refused as overload.
            shared.reject(conn, &id, Reject::Overloaded, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_and_fnv_are_stable_and_distinguishing() {
        assert_eq!(fnv("ABN-9"), fnv("ABN-9"));
        assert_ne!(fnv("ABN-9"), fnv("ABN-7"));
        assert_eq!(fold(&[1, 2, 3]), fold(&[1, 2, 3]));
        assert_ne!(fold(&[1, 2, 3]), fold(&[1, 3, 2]));
        // Request seeds separate on every contributing input…
        let base = request_seed(7, "ABN-9", 0, &[1, 2, 3]);
        assert_ne!(base, request_seed(8, "ABN-9", 0, &[1, 2, 3]));
        assert_ne!(base, request_seed(7, "none", 0, &[1, 2, 3]));
        assert_ne!(base, request_seed(7, "ABN-9", 1, &[1, 2, 3]));
        assert_ne!(base, request_seed(7, "ABN-9", 0, &[1, 2]));
        // …and on nothing else (replays are idempotent by design).
        assert_eq!(base, request_seed(7, "ABN-9", 0, &[1, 2, 3]));
    }

    #[test]
    fn wear_model_fault_rate_is_monotone_in_epoch() {
        let config = ServeConfig {
            writes_per_epoch: 1e9,
            ..ServeConfig::default()
        };
        let r0 = config.fault_rate_at(0);
        let r1 = config.fault_rate_at(1);
        let r2 = config.fault_rate_at(2);
        assert!(r0 <= r1 && r1 <= r2);
        assert!(r2 > 0.0, "a billion writes per epoch must wear cells");
    }

    #[test]
    fn config_validation_names_bad_fields() {
        assert!(ServeConfig::default().validate().is_ok());
        let bad = ServeConfig { workers: 0, ..ServeConfig::default() };
        assert!(matches!(bad.validate(), Err(AccelError::InvalidConfig(_))));
        let bad = ServeConfig { queue_capacity: 0, ..ServeConfig::default() };
        assert!(matches!(bad.validate(), Err(AccelError::InvalidConfig(_))));
    }
}
