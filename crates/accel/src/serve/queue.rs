//! A bounded MPSC queue with explicit backpressure and drain-then-exit
//! close semantics.
//!
//! Built on `std::sync::{Mutex, Condvar}` (the vendored `parking_lot`
//! stub has no condvar). Three properties the service depends on:
//!
//! - **Bounded**: [`Bounded::try_push`] never blocks and never grows
//!   the queue past its cap — a full queue is an immediate
//!   [`PushError::Full`], which the caller turns into a typed
//!   `overloaded` response. Memory stays bounded under any load.
//! - **Depth-observable**: pushes report the post-push depth so the
//!   caller can feed the queue-depth gauge without a second lock.
//! - **Drain-then-exit**: [`Bounded::close`] stops new pushes but lets
//!   consumers pop every item already queued; [`Pop::Done`] is only
//!   returned once the queue is both closed *and* empty.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity (backpressure: reject, don't buffer).
    Full,
    /// The queue is closed (service is draining for shutdown).
    Closed,
}

/// One blocking-pop outcome.
#[derive(Debug)]
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed with the queue open but empty.
    Timeout,
    /// The queue is closed and fully drained; the consumer may exit.
    Done,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue. One per worker shard (shared-nothing: requests
/// for a scheme always land on the same worker's queue).
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> Bounded<T> {
    /// A queue holding at most `cap` items (`cap` ≥ 1 enforced).
    pub fn new(cap: usize) -> Bounded<T> {
        Bounded {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(cap.max(1)),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // A worker that panicked while holding the lock has already
        // been caught by its catch_unwind wrapper; the queue state
        // itself is only ever mutated atomically under the lock, so
        // recovering from poison is sound.
        self.state.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Enqueues without blocking. Returns the post-push depth, or the
    /// item back with the refusal reason.
    pub fn try_push(&self, item: T) -> Result<usize, (T, PushError)> {
        let mut s = self.lock();
        if s.closed {
            return Err((item, PushError::Closed));
        }
        if s.items.len() >= self.cap {
            return Err((item, PushError::Full));
        }
        s.items.push_back(item);
        let depth = s.items.len();
        drop(s);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks up to `timeout` for an item. See [`Pop`].
    pub fn pop_timeout(&self, timeout: Duration) -> Pop<T> {
        let mut s = self.lock();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Pop::Item(item);
            }
            if s.closed {
                return Pop::Done;
            }
            let (guard, result) = self
                .ready
                .wait_timeout(s, timeout)
                .unwrap_or_else(|poison| poison.into_inner());
            s = guard;
            if result.timed_out() {
                return match s.items.pop_front() {
                    Some(item) => Pop::Item(item),
                    None if s.closed => Pop::Done,
                    None => Pop::Timeout,
                };
            }
        }
    }

    /// Dequeues immediately if an item is ready (burst collection).
    pub fn pop_now(&self) -> Option<T> {
        self.lock().items.pop_front()
    }

    /// Current depth (approximate the instant the lock is released).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// already-queued items remain poppable, and blocked consumers are
    /// woken so they can drain and observe [`Pop::Done`].
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn backpressure_rejects_at_cap_without_blocking() {
        let q = Bounded::new(2);
        assert_eq!(q.try_push(1).expect("first"), 1);
        assert_eq!(q.try_push(2).expect("second"), 2);
        let (item, err) = q.try_push(3).expect_err("third must refuse");
        assert_eq!((item, err), (3, PushError::Full));
        assert_eq!(q.len(), 2);
        // Popping frees a slot.
        assert!(matches!(q.pop_now(), Some(1)));
        assert_eq!(q.try_push(3).expect("retry"), 2);
    }

    #[test]
    fn close_drains_then_signals_done() {
        let q = Bounded::new(4);
        q.try_push("a").expect("push");
        q.try_push("b").expect("push");
        q.close();
        assert_eq!(
            q.try_push("c").expect_err("closed").1,
            PushError::Closed
        );
        // Queued items survive the close, in order.
        assert!(matches!(q.pop_timeout(Duration::from_millis(10)), Pop::Item("a")));
        assert!(matches!(q.pop_timeout(Duration::from_millis(10)), Pop::Item("b")));
        assert!(matches!(q.pop_timeout(Duration::from_millis(10)), Pop::Done));
    }

    #[test]
    fn pop_timeout_wakes_on_push_and_on_close() {
        let q = Arc::new(Bounded::new(4));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            let first = q2.pop_timeout(Duration::from_secs(5));
            let second = q2.pop_timeout(Duration::from_secs(5));
            (
                matches!(first, Pop::Item(42)),
                matches!(second, Pop::Done),
            )
        });
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(42).expect("push");
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        let (got_item, got_done) = t.join().expect("join");
        assert!(got_item, "consumer saw the pushed item");
        assert!(got_done, "consumer saw Done after close");
    }

    #[test]
    fn empty_open_queue_times_out() {
        let q: Bounded<u8> = Bounded::new(1);
        assert!(matches!(q.pop_timeout(Duration::from_millis(5)), Pop::Timeout));
        assert!(q.is_empty());
    }
}
