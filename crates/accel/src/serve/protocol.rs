//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response per line, UTF-8, no framing
//! beyond `\n`. Parsing is tolerant by construction: any line that is
//! not a well-formed frame becomes [`Frame::Bad`] — carrying whatever
//! request id could still be salvaged — and is answered with a typed
//! `bad_request`, never a dropped connection or a panic (malformed-
//! frame isolation). Responses are rendered by hand with a fixed field
//! order and integer-exact formatting, so a response's byte image is a
//! pure function of its semantic content.
//!
//! ## Inference frames
//!
//! ```json
//! {"id":"r1","scheme":"ABN-9","samples":[0,3,5],"deadline_ms":250}
//! ```
//!
//! `samples` indexes the service's built-in test set (a singular
//! `"sample":3` is accepted as shorthand); `deadline_ms` is optional
//! (0 = no deadline). Success response:
//!
//! ```json
//! {"id":"r1","ok":true,"scheme":"ABN-9","epoch":0,"predictions":[7,2,1]}
//! ```
//!
//! Rejection response (see [`Reject`] for the reasons):
//!
//! ```json
//! {"id":"r1","ok":false,"error":"overloaded"}
//! ```
//!
//! ## Admin frames
//!
//! `{"admin":"ping"}` / `{"admin":"stats"}` / `{"admin":"advance_epoch"}`
//! / `{"admin":"shutdown"}` — handled inline by the connection reader,
//! never queued, so they work even when the service is overloaded.

use serde::Value;

/// Most samples one inference frame may carry: bounds per-request
/// memory and keeps one client from monopolising a worker burst.
pub const MAX_SAMPLES_PER_REQUEST: usize = 64;

/// A parsed inference request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen request id, echoed verbatim on the response.
    pub id: String,
    /// Protection-scheme label (`ProtectionScheme::from_label` format).
    pub scheme: String,
    /// Indices into the service's built-in test set.
    pub samples: Vec<usize>,
    /// Per-request deadline in milliseconds from arrival; 0 = none.
    pub deadline_ms: u64,
}

/// An admin operation, handled inline by the connection reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdminOp {
    /// Liveness probe; answered immediately.
    Ping,
    /// Report service counters (served/rejected/swaps/epoch).
    Stats,
    /// Advance the wear epoch by one, triggering graceful engine
    /// re-programming on the next request per scheme.
    AdvanceEpoch,
    /// Stop accepting, drain queued work, answer it, and exit.
    Shutdown,
}

/// One parsed line off the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A well-formed inference request.
    Infer(Request),
    /// A well-formed admin operation.
    Admin(AdminOp),
    /// Anything else: unparseable JSON, a non-object, unknown admin
    /// verbs, missing/ill-typed fields, out-of-range samples. Carries
    /// the request id when one could still be read (`"?"` otherwise)
    /// so the `bad_request` response stays correlatable.
    Bad {
        /// Salvaged request id, or `"?"`.
        id: String,
    },
}

/// Why a request was refused. Every rejection is a typed response on
/// the wire and a `request_rejected` event in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reject {
    /// The target worker's bounded queue was full (backpressure).
    Overloaded,
    /// The request's deadline expired before a worker got to it.
    DeadlineExceeded,
    /// The frame was malformed or referenced unknown schemes/samples.
    BadRequest,
    /// The worker failed every seed-stable retry on this request.
    InternalError,
}

impl Reject {
    /// Stable wire label (the response's `"error"` value).
    pub fn label(self) -> &'static str {
        match self {
            Reject::Overloaded => "overloaded",
            Reject::DeadlineExceeded => "deadline_exceeded",
            Reject::BadRequest => "bad_request",
            Reject::InternalError => "internal_error",
        }
    }
}

/// Reads a `Value::Number` as an exact non-negative integer `< 2^53`.
fn as_index(v: &Value) -> Option<u64> {
    match v {
        // lint: allow(float_eq, exact integrality test: fract() of an in-range index is exactly 0.0 or exactly nonzero, never approximate)
        Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 9_007_199_254_740_992.0 => {
            Some(*n as u64)
        }
        _ => None,
    }
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::String(s) => Some(s),
        _ => None,
    }
}

/// Parses one wire line into a [`Frame`]. Total: every input maps to
/// some frame; garbage maps to [`Frame::Bad`].
pub fn parse_frame(line: &str) -> Frame {
    let value: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(_) => return Frame::Bad { id: "?".to_string() },
    };
    if value.as_object().is_none() {
        return Frame::Bad { id: "?".to_string() };
    }
    // Salvage the id early so even otherwise-bad frames correlate.
    let id = value
        .get("id")
        .and_then(as_str)
        .unwrap_or("?")
        .to_string();
    if let Some(admin) = value.get("admin") {
        return match as_str(admin) {
            Some("ping") => Frame::Admin(AdminOp::Ping),
            Some("stats") => Frame::Admin(AdminOp::Stats),
            Some("advance_epoch") => Frame::Admin(AdminOp::AdvanceEpoch),
            Some("shutdown") => Frame::Admin(AdminOp::Shutdown),
            _ => Frame::Bad { id },
        };
    }
    if id == "?" || id.is_empty() {
        return Frame::Bad { id: "?".to_string() };
    }
    let scheme = match value.get("scheme").and_then(as_str) {
        Some(s) if !s.is_empty() => s.to_string(),
        _ => return Frame::Bad { id },
    };
    let mut samples = Vec::new();
    match (value.get("samples"), value.get("sample")) {
        (Some(Value::Array(items)), None) => {
            if items.is_empty() || items.len() > MAX_SAMPLES_PER_REQUEST {
                return Frame::Bad { id };
            }
            for item in items {
                match as_index(item) {
                    Some(i) => samples.push(i as usize),
                    None => return Frame::Bad { id },
                }
            }
        }
        (None, Some(one)) => match as_index(one) {
            Some(i) => samples.push(i as usize),
            None => return Frame::Bad { id },
        },
        _ => return Frame::Bad { id },
    }
    let deadline_ms = match value.get("deadline_ms") {
        None => 0,
        Some(v) => match as_index(v) {
            Some(ms) => ms,
            None => return Frame::Bad { id },
        },
    };
    Frame::Infer(Request {
        id,
        scheme,
        samples,
        deadline_ms,
    })
}

/// Escapes a string for embedding in a JSON line (quote, backslash,
/// and control characters).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders a success response line (no trailing newline).
///
/// Field order and formatting are fixed, so two responses with the
/// same semantic content are byte-identical — the property the chaos
/// soak and the restart smoke compare.
pub fn render_ok(id: &str, scheme: &str, epoch: u64, predictions: &[usize]) -> String {
    let mut out = String::with_capacity(64 + id.len() + scheme.len());
    out.push_str("{\"id\":\"");
    escape_into(&mut out, id);
    out.push_str("\",\"ok\":true,\"scheme\":\"");
    escape_into(&mut out, scheme);
    out.push_str("\",\"epoch\":");
    out.push_str(&epoch.to_string());
    out.push_str(",\"predictions\":[");
    for (i, p) in predictions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&p.to_string());
    }
    out.push_str("]}");
    out
}

/// Renders a typed rejection response line (no trailing newline).
pub fn render_reject(id: &str, reason: Reject) -> String {
    let mut out = String::with_capacity(40 + id.len());
    out.push_str("{\"id\":\"");
    escape_into(&mut out, id);
    out.push_str("\",\"ok\":false,\"error\":\"");
    out.push_str(reason.label());
    out.push_str("\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_frames_parse_with_optional_fields() {
        assert_eq!(
            parse_frame(r#"{"id":"r1","scheme":"ABN-9","samples":[0,3,5],"deadline_ms":250}"#),
            Frame::Infer(Request {
                id: "r1".into(),
                scheme: "ABN-9".into(),
                samples: vec![0, 3, 5],
                deadline_ms: 250,
            })
        );
        assert_eq!(
            parse_frame(r#"{"id":"x","scheme":"none","sample":7}"#),
            Frame::Infer(Request {
                id: "x".into(),
                scheme: "none".into(),
                samples: vec![7],
                deadline_ms: 0,
            })
        );
    }

    #[test]
    fn admin_frames_parse() {
        assert_eq!(parse_frame(r#"{"admin":"ping"}"#), Frame::Admin(AdminOp::Ping));
        assert_eq!(
            parse_frame(r#"{"admin":"advance_epoch"}"#),
            Frame::Admin(AdminOp::AdvanceEpoch)
        );
        assert_eq!(
            parse_frame(r#"{"admin":"shutdown"}"#),
            Frame::Admin(AdminOp::Shutdown)
        );
        assert_eq!(parse_frame(r#"{"admin":"stats"}"#), Frame::Admin(AdminOp::Stats));
        assert_eq!(
            parse_frame(r#"{"admin":"reboot"}"#),
            Frame::Bad { id: "?".into() }
        );
    }

    #[test]
    fn malformed_frames_salvage_the_id_when_possible() {
        // Unparseable JSON, non-objects, truncated lines: id unknown.
        for line in ["", "{", "null", "[1,2]", "\"str\"", "{\"id\":\"t\",\"scheme\""] {
            assert_eq!(parse_frame(line), Frame::Bad { id: "?".into() }, "{line:?}");
        }
        // Structurally valid object with a readable id but bad fields.
        assert_eq!(
            parse_frame(r#"{"id":"r9","scheme":"ABN-9"}"#),
            Frame::Bad { id: "r9".into() }
        );
        assert_eq!(
            parse_frame(r#"{"id":"r9","scheme":"ABN-9","samples":[]}"#),
            Frame::Bad { id: "r9".into() }
        );
        assert_eq!(
            parse_frame(r#"{"id":"r9","scheme":"ABN-9","samples":[1.5]}"#),
            Frame::Bad { id: "r9".into() }
        );
        assert_eq!(
            parse_frame(r#"{"id":"r9","scheme":"ABN-9","samples":[-1]}"#),
            Frame::Bad { id: "r9".into() }
        );
        assert_eq!(
            parse_frame(r#"{"id":"r9","scheme":"","sample":1}"#),
            Frame::Bad { id: "r9".into() }
        );
        // Oversized sample lists are refused, not buffered.
        let big: Vec<String> = (0..=MAX_SAMPLES_PER_REQUEST).map(|i| i.to_string()).collect();
        let line = format!(r#"{{"id":"big","scheme":"none","samples":[{}]}}"#, big.join(","));
        assert_eq!(parse_frame(&line), Frame::Bad { id: "big".into() });
    }

    #[test]
    fn responses_render_with_fixed_field_order() {
        assert_eq!(
            render_ok("r1", "ABN-9", 2, &[7, 0, 3]),
            r#"{"id":"r1","ok":true,"scheme":"ABN-9","epoch":2,"predictions":[7,0,3]}"#
        );
        assert_eq!(
            render_reject("r1", Reject::Overloaded),
            r#"{"id":"r1","ok":false,"error":"overloaded"}"#
        );
        // Hostile ids stay inside their JSON string.
        let rendered = render_ok("a\"b\\c\nd", "none", 0, &[1]);
        assert_eq!(
            rendered,
            "{\"id\":\"a\\\"b\\\\c\\nd\",\"ok\":true,\"scheme\":\"none\",\"epoch\":0,\"predictions\":[1]}"
        );
        // And the render/parse pair agrees on escaping: the echoed id
        // survives a round-trip through the parser.
        let reparsed: serde::Value = serde_json::from_str(&rendered).expect("reparse");
        match reparsed.get("id") {
            Some(serde::Value::String(s)) => assert_eq!(s, "a\"b\\c\nd"),
            other => panic!("bad id field: {other:?}"),
        }
    }
}
