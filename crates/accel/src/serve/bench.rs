//! Serve-path latency/throughput measurement (`BENCH_serve.json`).
//!
//! Starts a real [`Service`] on loopback (no
//! fault injection), then drives it closed-loop over TCP exactly like
//! a client would:
//!
//! 1. **Cold**: the first request for the scheme, which pays inline
//!    engine programming.
//! 2. **Load levels**: ≥2 closed-loop levels (1 client, then several
//!    concurrent clients), recording per-request wall latency and
//!    aggregate throughput.
//!
//! The headline ratio `pool_hit_speedup = cold_ns / warm p50` is the
//! pool's reason to exist: reusing a programmed engine set must beat
//! re-programming per request by a wide margin (the acceptance gate is
//! ≥3×).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::Duration;

use chaos::clock;

use crate::error::AccelError;
use crate::serve::{ServeConfig, Service};

/// One closed-loop load level's measurements.
#[derive(Debug, Clone, Copy)]
pub struct BenchLevel {
    /// Concurrent client connections.
    pub clients: usize,
    /// Total requests completed across clients.
    pub requests: usize,
    /// Median request latency (send → full response line), ns.
    pub p50_ns: u64,
    /// 99th-percentile request latency, ns.
    pub p99_ns: u64,
    /// Aggregate completed requests per second of wall time.
    pub throughput_rps: f64,
}

/// The full serve benchmark result.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Service master seed.
    pub seed: u64,
    /// Scheme the benchmark requests used.
    pub scheme: String,
    /// Samples per inference request.
    pub samples_per_request: usize,
    /// First-request latency including inline engine programming, ns.
    pub cold_ns: u64,
    /// Warm (pool-hit) median latency at the single-client level, ns.
    pub warm_p50_ns: u64,
    /// `cold_ns / warm_p50_ns` — what the engine pool buys.
    pub pool_hit_speedup: f64,
    /// Closed-loop load levels, lightest first.
    pub levels: Vec<BenchLevel>,
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    line: String,
}

impl Client {
    fn connect(port: u16) -> Result<Client, AccelError> {
        let stage = |e: std::io::Error| AccelError::Service {
            stage: "bench-connect".into(),
            message: e.to_string(),
        };
        // lint: allow(chaos_seam_coverage, client-side load generator; chaos faults target the service under test, not the measurement harness)
        let writer = TcpStream::connect(("127.0.0.1", port)).map_err(stage)?;
        writer
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(stage)?;
        let reader = BufReader::new(writer.try_clone().map_err(stage)?);
        Ok(Client {
            writer,
            reader,
            line: String::new(),
        })
    }

    /// Sends one request line and blocks for its response line.
    fn roundtrip(&mut self, request: &str) -> Result<String, AccelError> {
        let stage = |message: String| AccelError::Service {
            stage: "bench-roundtrip".into(),
            message,
        };
        self.writer
            .write_all(request.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .map_err(|e| stage(e.to_string()))?;
        self.line.clear();
        match self.reader.read_line(&mut self.line) {
            Ok(0) => Err(stage("connection closed".into())),
            Ok(_) => Ok(self.line.trim_end().to_string()),
            Err(e) => Err(stage(e.to_string())),
        }
    }
}

fn request_line(id: &str, scheme: &str, samples: &[usize]) -> String {
    let list: Vec<String> = samples.iter().map(|s| s.to_string()).collect();
    format!(
        "{{\"id\":\"{id}\",\"scheme\":\"{scheme}\",\"samples\":[{}]}}",
        list.join(",")
    )
}

fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    // Nearest-rank: the smallest value with at least p·n observations
    // at or below it.
    let rank = (p * sorted_ns.len() as f64).ceil() as usize;
    sorted_ns[rank.clamp(1, sorted_ns.len()) - 1]
}

/// Runs one closed-loop level: `clients` connections each completing
/// `per_client` requests back to back.
fn run_level(
    port: u16,
    scheme: &str,
    samples: &[usize],
    clients: usize,
    per_client: usize,
) -> Result<BenchLevel, AccelError> {
    let start = clock::now_ns();
    let mut handles = Vec::new();
    for c in 0..clients {
        let scheme = scheme.to_string();
        let samples = samples.to_vec();
        handles.push(std::thread::spawn(move || -> Result<Vec<u64>, AccelError> {
            let mut client = Client::connect(port)?;
            let mut latencies = Vec::with_capacity(per_client);
            for r in 0..per_client {
                let line = request_line(&format!("c{c}-{r}"), &scheme, &samples);
                let t0 = clock::now_ns();
                let response = client.roundtrip(&line)?;
                latencies.push(clock::now_ns().saturating_sub(t0));
                if !response.contains("\"ok\":true") {
                    return Err(AccelError::Service {
                        stage: "bench-level".into(),
                        message: format!("unexpected response: {response}"),
                    });
                }
            }
            Ok(latencies)
        }));
    }
    let mut all = Vec::with_capacity(clients * per_client);
    for handle in handles {
        let latencies = handle.join().map_err(|_| AccelError::Service {
            stage: "bench-level".into(),
            message: "client thread panicked".into(),
        })??;
        all.extend(latencies);
    }
    let wall_ns = clock::now_ns().saturating_sub(start).max(1);
    all.sort_unstable();
    Ok(BenchLevel {
        clients,
        requests: all.len(),
        p50_ns: percentile(&all, 0.50),
        p99_ns: percentile(&all, 0.99),
        throughput_rps: all.len() as f64 / (wall_ns as f64 / 1e9),
    })
}

/// Runs the full serve benchmark at `seed`, sized by
/// `requests_per_level` (per client).
///
/// # Errors
///
/// [`AccelError::Service`] when the service fails to start or a client
/// round-trip fails.
pub fn run(seed: u64, requests_per_level: usize) -> Result<BenchReport, AccelError> {
    let scheme = "ABN-9";
    let samples = [0usize, 1, 2, 3];
    let config = ServeConfig {
        seed,
        workers: 2,
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    let service = Service::start(config)?;
    let port = service.port();

    // Cold: first request for the scheme programs its engines inline.
    let mut probe = Client::connect(port)?;
    let t0 = clock::now_ns();
    probe.roundtrip(&request_line("cold", scheme, &samples))?;
    let cold_ns = clock::now_ns().saturating_sub(t0).max(1);

    let per = requests_per_level.max(8);
    let light = run_level(port, scheme, &samples, 1, per)?;
    let heavy = run_level(port, scheme, &samples, 4, per.div_ceil(2))?;

    service.shutdown();
    let _report = service.join();

    let warm_p50_ns = light.p50_ns.max(1);
    Ok(BenchReport {
        seed,
        scheme: scheme.to_string(),
        samples_per_request: samples.len(),
        cold_ns,
        warm_p50_ns,
        pool_hit_speedup: cold_ns as f64 / warm_p50_ns as f64,
        levels: vec![light, heavy],
    })
}

/// Renders the report as the stable `BENCH_serve.json` document.
pub fn render_json(report: &BenchReport) -> String {
    let mut out = String::with_capacity(512);
    out.push_str(&format!(
        "{{\"bench\":\"serve\",\"seed\":{},\"scheme\":\"{}\",\"samples_per_request\":{},\
         \"cold_ns\":{},\"warm_p50_ns\":{},\"pool_hit_speedup\":{:.2},\"levels\":[",
        report.seed,
        report.scheme,
        report.samples_per_request,
        report.cold_ns,
        report.warm_p50_ns,
        report.pool_hit_speedup,
    ));
    for (i, level) in report.levels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"clients\":{},\"requests\":{},\"p50_ns\":{},\"p99_ns\":{},\
             \"throughput_rps\":{:.1}}}",
            level.clients, level.requests, level.p50_ns, level.p99_ns, level.throughput_rps,
        ));
    }
    out.push_str("]}\n");
    out
}

/// Writes the rendered report atomically (tmp + rename, the same
/// durability discipline as every other artifact the workspace writes).
///
/// # Errors
///
/// [`AccelError::Service`] when the write fails.
pub fn write_report(path: &Path, report: &BenchReport) -> Result<(), AccelError> {
    chaos::fs::write_atomic(path, render_json(report).as_bytes(), None).map_err(|e| {
        AccelError::Service {
            stage: "bench-write".into(),
            message: format!("{}: {e}", path.display()),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_from_sorted_tail() {
        let ns: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&ns, 0.50), 50);
        assert_eq!(percentile(&ns, 0.99), 99);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn report_renders_stable_json() {
        let report = BenchReport {
            seed: 7,
            scheme: "ABN-9".into(),
            samples_per_request: 4,
            cold_ns: 3_000_000,
            warm_p50_ns: 500_000,
            pool_hit_speedup: 6.0,
            levels: vec![BenchLevel {
                clients: 1,
                requests: 64,
                p50_ns: 500_000,
                p99_ns: 900_000,
                throughput_rps: 1800.0,
            }],
        };
        let json = render_json(&report);
        assert!(json.contains("\"bench\":\"serve\""));
        assert!(json.contains("\"pool_hit_speedup\":6.00"));
        assert!(json.contains("\"clients\":1"));
        assert!(json.ends_with("]}\n"));
    }
}
