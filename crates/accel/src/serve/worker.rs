//! Worker shards: burst collection, engine-set ownership, seed-stable
//! request retries, and the supervisor watchdog.
//!
//! Each worker owns one bounded queue and every engine set for the
//! schemes that hash to it (shared-nothing: no locks on the serve
//! path). A request is served inside `catch_unwind`; a panic — real or
//! injected via [`chaos::ShardChaos`] — discards the possibly-torn
//! engine set and retries with the same seeds, so the retried answer
//! is bit-identical to the one a fault-free worker would have sent.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use chaos::clock;
use chaos::{ExecFault, Seam, ShardChaos};
use neural::RunScratch;

use crate::serve::pool::{program_engine_set, EngineSet, ProgramJob};
use crate::serve::protocol::{render_ok, Reject};
use crate::serve::queue::Pop;
use crate::serve::{fold, request_seed, Job, Shared};

/// Most queued requests one wake-up serves before checking the
/// mailbox and shutdown flag again.
const BURST_MAX: usize = 8;

/// A worker that has held its queue nonempty without a heartbeat for
/// this long is flagged by the supervisor.
const WATCHDOG_NS: u64 = 2_000_000_000;

/// The worker loop for shard `widx`: install swap deliveries, collect
/// a burst (flush on size or linger timeout), serve it, repeat until
/// the queue closes and drains.
pub(crate) fn run_worker(shared: Arc<Shared>, widx: usize) {
    let queue = Arc::clone(&shared.queues[widx]);
    let mut pool: HashMap<String, EngineSet> = HashMap::new();
    let mut scratch = RunScratch::new();
    let exec = match shared.config.chaos {
        Some(schedule) => schedule.shard_chaos(0),
        None => ShardChaos::Off,
    };
    let linger_ns = shared.config.linger_ms.max(1) * 1_000_000;
    let mut seq: u64 = 0;
    loop {
        shared.beat(widx);
        install_deliveries(&shared, widx, &mut pool);
        let first = match queue.pop_timeout(Duration::from_millis(25)) {
            Pop::Done => break,
            Pop::Timeout => continue,
            Pop::Item(job) => job,
        };
        // Adaptive batcher: once we hold one request, linger briefly
        // for queue-mates so a loaded service amortises wake-ups, but
        // never let an idle queue delay the request we already hold.
        let mut burst = vec![first];
        let mut drained = false;
        let flush_at = clock::now_ns().saturating_add(linger_ns);
        while burst.len() < BURST_MAX {
            let now = clock::now_ns();
            if now >= flush_at {
                break;
            }
            match queue.pop_timeout(Duration::from_nanos(flush_at - now)) {
                Pop::Item(job) => burst.push(job),
                Pop::Timeout => break,
                Pop::Done => {
                    drained = true;
                    break;
                }
            }
        }
        install_deliveries(&shared, widx, &mut pool);
        for job in burst {
            shared.beat(widx);
            serve_with_retry(&shared, widx, &job, &mut pool, &mut scratch, &exec, seq);
            seq += 1;
        }
        if drained {
            break;
        }
    }
    obs::flush_thread();
}

/// Installs background-programmed replacement sets mailed by the
/// programmer thread. The swap is atomic from the request path's view:
/// this thread is the only reader of its pool.
fn install_deliveries(shared: &Shared, widx: usize, pool: &mut HashMap<String, EngineSet>) {
    let delivered: Vec<EngineSet> = std::mem::take(&mut *shared.mailboxes[widx].lock());
    for set in delivered {
        // Out-of-order deliveries (two advances in quick succession)
        // must never roll a scheme backwards.
        if pool.get(&set.label).is_some_and(|cur| cur.epoch >= set.epoch) {
            continue;
        }
        shared.stats.swaps.fetch_add(1, Ordering::Relaxed);
        obs::counter!(serve_engine_swaps).incr();
        obs::events::emit(
            obs::Event::new("engine_swap")
                .str("scheme", &set.label)
                .u64("epoch", set.epoch)
                .u64("attempts", set.attempts)
                .u64("program_ns", set.program_ns),
        );
        pool.insert(set.label.clone(), set);
    }
}

/// Serves one request with up to `request_retries` seed-stable retries
/// around worker panics; exhausting them answers `internal_error`.
fn serve_with_retry(
    shared: &Shared,
    widx: usize,
    job: &Job,
    pool: &mut HashMap<String, EngineSet>,
    scratch: &mut RunScratch,
    exec: &ShardChaos,
    seq: u64,
) {
    // The deadline is checked once, before any attempt: a request that
    // expired while queued is answered late-but-honestly, not served.
    if let Some(deadline) = job.deadline_ns {
        if clock::now_ns() > deadline {
            shared.reject(&job.conn, &job.request.id, Reject::DeadlineExceeded, 0);
            return;
        }
    }
    for attempt in 0..=shared.config.request_retries {
        let fault = exec.decide(seq, attempt);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            serve_once(shared, widx, job, pool, scratch, fault)
        }));
        match outcome {
            Ok(()) => return,
            Err(_) => {
                // The panic unwound through half-finished obs spans and
                // possibly mid-MVM engine state: discard the thread's
                // metric buffers and the scheme's engine set. The retry
                // re-programs from the same seed, so the eventual
                // answer is unchanged.
                obs::discard_thread();
                pool.remove(&job.request.scheme);
                shared.stats.retries.fetch_add(1, Ordering::Relaxed);
                obs::counter!(serve_request_retries).incr();
            }
        }
    }
    shared.reject(&job.conn, &job.request.id, Reject::InternalError, 0);
}

/// One service attempt: ensure a programmed engine set, reseed it from
/// the request content, run the batch, respond.
fn serve_once(
    shared: &Shared,
    widx: usize,
    job: &Job,
    pool: &mut HashMap<String, EngineSet>,
    scratch: &mut RunScratch,
    fault: Option<ExecFault>,
) {
    match fault {
        Some(ExecFault::Panic) => {
            // Deterministic fault injection: caught by serve_with_retry's
            // catch_unwind, which panic_reachability sees as the guard.
            panic!("chaos: injected serve worker panic (worker {widx})")
        }
        Some(ExecFault::Stall { ms }) => std::thread::sleep(Duration::from_millis(ms)),
        None => {}
    }
    let started = clock::now_ns();
    let label = &job.request.scheme;
    let target_epoch = shared.epoch.load(Ordering::SeqCst);
    match pool.get(label) {
        None => {
            // Cold path: the first request for a scheme pays for
            // programming inline (this is the latency the pool then
            // amortises away; BENCH_serve.json records both).
            shared.stats.pool_cold.fetch_add(1, Ordering::Relaxed);
            obs::counter!(serve_pool_cold).incr();
            match program_engine_set(shared, &job.scheme, label, target_epoch) {
                Ok(set) => {
                    pool.insert(label.clone(), set);
                }
                Err(_) => {
                    shared.reject(&job.conn, &job.request.id, Reject::InternalError, 0);
                    return;
                }
            }
        }
        Some(set) if set.epoch == target_epoch => {
            shared.stats.pool_hits.fetch_add(1, Ordering::Relaxed);
            obs::counter!(serve_pool_hits).incr();
        }
        Some(_) => {
            // Graceful re-programming: answer from the stale set now,
            // queue a background swap (once) for the new epoch.
            shared.stats.pool_stale.fetch_add(1, Ordering::Relaxed);
            obs::counter!(serve_pool_stale).incr();
            request_swap(shared, widx, job, target_epoch);
        }
    }
    let Some(set) = pool.get_mut(label) else {
        shared.reject(&job.conn, &job.request.id, Reject::InternalError, 0);
        return;
    };
    let samples = &job.request.samples;
    let batch = samples.len();
    // The response is a pure function of (service seed, scheme, epoch
    // served, sample list): reseed every engine from the request's
    // content so replays — after a dropped response, a worker retry,
    // or a full service restart — are byte-identical.
    let seed = request_seed(shared.config.seed, label, set.epoch, samples);
    for (i, engine) in set.engines.iter_mut().enumerate() {
        engine.reseed(fold(&[seed, i as u64]));
    }
    let dim = shared.sample_dim;
    let mut inputs = Vec::with_capacity(batch * dim);
    for &s in samples {
        inputs.extend_from_slice(&shared.samples[s * dim..(s + 1) * dim]);
    }
    let predictions;
    {
        let _span = obs::span!("serve_request");
        let logits = shared
            .qnet
            .run_batch_with(&inputs, batch, &mut set.engines, scratch);
        let out_dim = logits.len() / batch;
        predictions = (0..batch)
            .map(|b| {
                let row = &logits[b * out_dim..(b + 1) * out_dim];
                // Same tie-breaking as `predict_with` (last maximum).
                let mut best = 0usize;
                for (i, &v) in row.iter().enumerate() {
                    if v >= row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect::<Vec<usize>>();
    }
    let line = render_ok(&job.request.id, label, set.epoch, &predictions);
    let epoch_served = set.epoch;
    let write_fault = shared.seam_fault(Seam::SocketWrite);
    if !job.conn.send(&line, write_fault) {
        shared.stats.dropped_responses.fetch_add(1, Ordering::Relaxed);
        obs::counter!(serve_responses_dropped).incr();
    }
    shared.stats.served.fetch_add(1, Ordering::Relaxed);
    obs::counter!(serve_ok).incr();
    obs::events::emit(
        obs::Event::new("request_done")
            .str("request_id", &job.request.id)
            .u64("worker", widx as u64)
            .str("scheme", label)
            .u64("epoch", epoch_served)
            .u64("samples", batch as u64)
            .u64("service_ns", clock::now_ns().saturating_sub(started)),
    );
}

/// Queues a background re-program of `job`'s scheme at `epoch`, unless
/// one is already in flight for that `(scheme, epoch)`.
fn request_swap(shared: &Shared, widx: usize, job: &Job, epoch: u64) {
    let key = (job.request.scheme.clone(), epoch);
    {
        let mut pending = shared.pending.lock();
        if pending.contains(&key) {
            return;
        }
        pending.insert(key.clone());
    }
    let queued = shared
        .program_queue
        .try_push(ProgramJob {
            label: job.request.scheme.clone(),
            scheme: job.scheme.clone(),
            epoch,
            widx,
        })
        .is_ok();
    if !queued {
        // Programmer backlogged or draining: un-mark so a later
        // request can try again.
        shared.pending.lock().remove(&key);
    }
}

/// The supervisor watchdog: flags a worker whose queue is nonempty but
/// whose heartbeat has gone quiet (an injected stall or a real hang).
/// Trips are counted once per stall episode.
pub(crate) fn run_supervisor(shared: Arc<Shared>) {
    let mut flagged = vec![false; shared.config.workers];
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
        let now = clock::now_ns();
        for (widx, was_flagged) in flagged.iter_mut().enumerate() {
            let beat = shared.heartbeats[widx].load(Ordering::Relaxed);
            let stalled = beat != 0
                && now.saturating_sub(beat) > WATCHDOG_NS
                && !shared.queues[widx].is_empty();
            if stalled && !*was_flagged {
                shared.stats.watchdog_trips.fetch_add(1, Ordering::Relaxed);
                obs::counter!(serve_watchdog_trips).incr();
            }
            *was_flagged = stalled;
        }
    }
    obs::flush_thread();
}
