//! Programmed-engine pooling and wear-epoch re-programming.
//!
//! Programming a model onto the simulated crossbars (mapping, A-search,
//! write-verify) is the service's cold path; this module builds
//! [`EngineSet`]s once per `(scheme, wear epoch)` and replaces them in
//! the background when the epoch advances. Programming runs under the
//! [`Seam::EngineSwap`] chaos seam: an injected fault models a failed
//! program-verify cycle and costs a seed-stable retry — the replacement
//! set that finally verifies is bit-identical to the one a fault-free
//! run would have produced, because every attempt reuses the same
//! programming seed.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use chaos::clock;
use chaos::Seam;
use neural::MvmEngine;

use crate::engine::CrossbarProvider;
use crate::error::AccelError;
use crate::scheme::{AccelConfig, ProtectionScheme};
use crate::serve::queue::Pop;
use crate::serve::{program_seed, Shared};

/// Give up a swap after this many injected verification failures in a
/// row (at the standard 25 % injection rate this is a ~1.5 · 10⁻⁵
/// event; the stale set keeps serving and a later request re-queues).
const MAX_PROGRAM_ATTEMPTS: u64 = 8;

/// One scheme's programmed engines at one wear epoch.
pub(crate) struct EngineSet {
    /// Scheme label this set serves (the pool key).
    pub label: String,
    /// Wear epoch the set was programmed at (and whose fault rate it
    /// carries).
    pub epoch: u64,
    /// One programmed engine per MVM op of the service network.
    pub engines: Vec<Box<dyn MvmEngine>>,
    /// Wall time programming took, including faulted attempts.
    pub program_ns: u64,
    /// Programming attempts burned (1 = verified first try).
    pub attempts: u64,
}

/// A background re-programming request: build `label`'s engines at
/// `epoch` and mail them to worker `widx`.
pub(crate) struct ProgramJob {
    pub label: String,
    pub scheme: ProtectionScheme,
    pub epoch: u64,
    pub widx: usize,
}

/// Programs one engine set for `(scheme, epoch)`, absorbing injected
/// verification faults with seed-stable retries.
///
/// # Errors
///
/// [`AccelError::InvalidConfig`] / [`AccelError::Code`] if the scheme
/// cannot be mapped at this epoch's fault rate, or
/// [`AccelError::Service`] when every retry was faulted away.
pub(crate) fn program_engine_set(
    shared: &Shared,
    scheme: &ProtectionScheme,
    label: &str,
    epoch: u64,
) -> Result<EngineSet, AccelError> {
    let _span = obs::span!("serve_program");
    let start = clock::now_ns();
    let config = AccelConfig::new(scheme.clone())
        .with_fault_rate(shared.config.fault_rate_at(epoch))
        .with_batch(shared.config.batch_max);
    config.validate()?;
    // One seed per (service, scheme, epoch): every attempt — and every
    // restart of the whole service — programs the same cells to the
    // same levels, which is what makes re-sent requests replayable.
    let seed = program_seed(shared.config.seed, label, epoch);
    for attempt in 1..=MAX_PROGRAM_ATTEMPTS {
        if shared.seam_fault(Seam::EngineSwap).is_some() {
            shared.stats.swap_faults.fetch_add(1, Ordering::Relaxed);
            obs::counter!(serve_swap_faults).incr();
            continue;
        }
        let provider = CrossbarProvider::new(config.clone(), seed);
        let engines = shared.qnet.build_engines(&provider);
        return Ok(EngineSet {
            label: label.to_string(),
            epoch,
            engines,
            program_ns: clock::now_ns().saturating_sub(start),
            attempts: attempt,
        });
    }
    Err(AccelError::Service {
        stage: "program".into(),
        message: format!(
            "{label} at epoch {epoch}: verification failed {MAX_PROGRAM_ATTEMPTS} attempts"
        ),
    })
}

/// The background programmer thread: drains [`ProgramJob`]s, programs
/// replacement sets, and mails them to the owning worker. The old set
/// keeps serving until the worker installs the replacement, so epoch
/// advancement never blocks the request path.
pub(crate) fn run_programmer(shared: Arc<Shared>) {
    loop {
        match shared.program_queue.pop_timeout(Duration::from_millis(50)) {
            Pop::Done => break,
            Pop::Timeout => continue,
            Pop::Item(job) => {
                let result = program_engine_set(&shared, &job.scheme, &job.label, job.epoch);
                // Clear the pending mark before delivery: if this swap
                // failed outright, the next request at the stale epoch
                // may queue a fresh attempt.
                shared
                    .pending
                    .lock()
                    .remove(&(job.label.clone(), job.epoch));
                match result {
                    Ok(set) => shared.mailboxes[job.widx].lock().push(set),
                    Err(_) => {
                        obs::counter!(serve_swap_abandoned).incr();
                    }
                }
            }
        }
    }
    obs::flush_thread();
}
