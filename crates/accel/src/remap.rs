//! Fault-aware logical-row remapping (inspired by Xia et al., §II-C6).
//!
//! The paper cites prior work that maps weight matrices *around* faults;
//! combined with arithmetic coding, the natural hybrid is to choose
//! which logical rows share a coded group so that rows whose weights
//! matter most land in the healthiest groups. This module implements a
//! two-pass greedy remap:
//!
//! 1. map the matrix once and score each group stack by its predicted
//!    error exposure (stuck rows weigh heaviest, then the analytical
//!    per-row error mass);
//! 2. rank logical rows by importance (L1 weight mass — a cheap proxy
//!    for output sensitivity) and reassign the most important rows to
//!    the healthiest group slots.
//!
//! The permutation is purely a logical relabeling: the engine applies it
//! at mapping time and inverts it on the outputs, so the network sees
//! the original row order.

use rand::Rng;

use crate::mapping::{map_matrix, MappedMatrix};
use crate::AccelConfig;

/// The outcome of a remap analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Remap {
    /// `order[new_position] = original_row`: feed rows to the mapper in
    /// this order.
    pub order: Vec<usize>,
    /// Health score per group (lower = healthier), in group order of
    /// the scouting map.
    pub group_scores: Vec<f64>,
}

impl Remap {
    /// The identity remap for `n` rows.
    pub fn identity(n: usize) -> Remap {
        Remap {
            order: (0..n).collect(),
            group_scores: Vec::new(),
        }
    }

    /// Applies the remap to a weight matrix (rows reordered).
    pub fn apply(&self, rows: &[Vec<u16>]) -> Vec<Vec<u16>> {
        self.order.iter().map(|&i| rows[i].clone()).collect()
    }

    /// Scatters outputs computed in remapped order back to the original
    /// row order.
    pub fn restore_outputs(&self, remapped: &[i64]) -> Vec<i64> {
        let mut out = vec![0i64; remapped.len()];
        for (new_pos, &orig) in self.order.iter().enumerate() {
            out[orig] = remapped[new_pos];
        }
        out
    }
}

/// Error exposure of one mapped stack: stuck rows dominate, transient
/// probability mass breaks ties.
fn stack_score(mapped: &MappedMatrix, chunk: usize, stack_idx: usize) -> f64 {
    let stack = &mapped.stacks[chunk][stack_idx];
    let mut score = 0.0;
    for (r, row) in stack.array.rows().iter().enumerate() {
        if row.has_stuck() {
            // Stuck cells in significant rows are the worst case.
            score += 10.0 * (1.0 + stack.slicer.row_lsb(r as u32) as f64 / 16.0);
        }
    }
    score
        + xbar_error_mass(mapped, chunk, stack_idx)
}

fn xbar_error_mass(mapped: &MappedMatrix, chunk: usize, stack_idx: usize) -> f64 {
    let stack = &mapped.stacks[chunk][stack_idx];
    (0..stack.array.row_count())
        .map(|r| xbar::rowerr::predict_row(&stack.array, r).p_any())
        .sum()
}

/// Computes a fault-aware row ordering for `rows` under `config`.
///
/// `rng` drives the scouting map (programming, including fault
/// placement); use the same seed the real mapping will use so the
/// scouted fault locations match the fabricated ones — the flow models
/// post-fabrication test-and-remap.
pub fn fault_aware_order<R: Rng + ?Sized>(
    rows: &[Vec<u16>],
    config: &AccelConfig,
    rng: &mut R,
) -> Remap {
    let n = rows.len();
    if !config.scheme.is_grouped() || n <= config.group.operands() {
        return Remap::identity(n);
    }
    let Ok(scout) = map_matrix(rows, config, rng) else {
        return Remap::identity(n);
    };

    // Score each group (summed across column chunks, since a logical
    // row spans all chunks).
    let groups_per_chunk = scout.stacks[0].len();
    let mut scores = vec![0.0f64; groups_per_chunk];
    for chunk in 0..scout.stacks.len() {
        for (g, score) in scores.iter_mut().enumerate() {
            *score += stack_score(&scout, chunk, g);
        }
    }

    // Rank groups: healthiest first.
    let mut group_rank: Vec<usize> = (0..groups_per_chunk).collect();
    group_rank.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));

    // Rank rows: most important first (L1 mass of unbiased weights).
    let importance = |row: &[u16]| -> f64 {
        row.iter()
            .map(|&w| (w as i64 - neural::WEIGHT_BIAS).unsigned_abs() as f64)
            .sum()
    };
    let mut row_rank: Vec<usize> = (0..n).collect();
    row_rank.sort_by(|&a, &b| importance(&rows[b]).total_cmp(&importance(&rows[a])));

    // Fill healthiest groups with the most important rows.
    let ops = config.group.operands();
    let mut order = vec![usize::MAX; n];
    let mut next_row = 0;
    for &g in &group_rank {
        let base = g * ops;
        for slot in 0..ops {
            let pos = base + slot;
            if pos >= n {
                continue;
            }
            order[pos] = row_rank[next_row];
            next_row += 1;
            if next_row >= n {
                break;
            }
        }
    }
    Remap {
        order,
        group_scores: scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtectionScheme;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rows(n: usize, cols: usize) -> Vec<Vec<u16>> {
        (0..n)
            .map(|o| {
                (0..cols)
                    .map(|j| (32768i64 + ((o * o * 37 + j * 11) % 3000) as i64 - 1500) as u16)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn identity_for_unprotected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let config = AccelConfig::new(ProtectionScheme::None);
        let remap = fault_aware_order(&rows(20, 16), &config, &mut rng);
        assert_eq!(remap.order, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn remap_is_a_permutation() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let config = AccelConfig::new(ProtectionScheme::data_aware(9)).with_fault_rate(0.01);
        let remap = fault_aware_order(&rows(24, 32), &config, &mut rng);
        let mut sorted = remap.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..24).collect::<Vec<_>>());
    }

    #[test]
    fn apply_and_restore_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let config = AccelConfig::new(ProtectionScheme::data_aware(9)).with_fault_rate(0.02);
        let data = rows(17, 24);
        let remap = fault_aware_order(&data, &config, &mut rng);
        let remapped = remap.apply(&data);
        // Outputs in remapped order scatter back to original positions.
        let fake_outputs: Vec<i64> = remap.order.iter().map(|&o| o as i64 * 10).collect();
        let restored = remap.restore_outputs(&fake_outputs);
        assert_eq!(restored, (0..17).map(|i| i as i64 * 10).collect::<Vec<_>>());
        assert_eq!(remapped.len(), 17);
    }

    #[test]
    fn important_rows_land_in_healthy_groups() {
        // Construct rows where the first 8 have huge weight mass; with
        // heavy faults, the remap should place them in the
        // lowest-scoring group.
        let mut data = rows(16, 32);
        for row in data.iter_mut().take(8) {
            for w in row.iter_mut() {
                *w = 65535;
            }
        }
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let config = AccelConfig::new(ProtectionScheme::data_aware(9)).with_fault_rate(0.05);
        let remap = fault_aware_order(&data, &config, &mut rng);
        assert_eq!(remap.group_scores.len(), 2);
        let healthiest = if remap.group_scores[0] <= remap.group_scores[1] {
            0
        } else {
            1
        };
        // The 8 heavy rows occupy the healthiest group's slots.
        let slots = &remap.order[healthiest * 8..healthiest * 8 + 8];
        assert!(slots.iter().all(|&r| r < 8), "slots {slots:?}");
    }

    #[test]
    fn small_matrices_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let config = AccelConfig::new(ProtectionScheme::data_aware(9));
        let remap = fault_aware_order(&rows(6, 8), &config, &mut rng);
        assert_eq!(remap.order, (0..6).collect::<Vec<_>>());
    }
}
