//! A counting global allocator: the dynamic half of the allocation
//! sanitizer (the static half is `repro-lint`).
//!
//! PR 1 made the MVM hot path allocation-free in steady state and
//! documented an allocation audit; this module turns that audit into an
//! enforced invariant. A test binary installs [`CountingAllocator`] as
//! its `#[global_allocator]` and wraps hot-path calls in
//! [`assert_no_alloc!`], which fails the test if the wrapped block
//! performs any heap allocation on the current thread.
//!
//! The counter is **thread-local**, so concurrently running tests (or
//! the libtest harness thread) never perturb a measurement. Only
//! allocating operations count — `alloc`, `alloc_zeroed`, and `realloc`
//! (a grow *or* shrink both take the slow path we want to catch);
//! `dealloc` is free of allocator pressure and is deliberately not
//! counted, so dropping a pre-sized buffer inside a guarded scope does
//! not trip the assertion.
//!
//! Compiled only under the `alloc-count` feature: implementing
//! [`GlobalAlloc`] requires `unsafe`, and this crate otherwise forbids
//! unsafe code outright. The feature narrows the forbid to a deny with
//! a single audited exemption (see `lib.rs`), and is enabled only by
//! the sanitizer test in `scripts/check.sh` — production builds never
//! compile this module.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    /// Allocating operations performed by the current thread since it
    /// started. Const-initialized `Cell<u64>`: no lazy init and no
    /// destructor, so reading it inside the allocator can never itself
    /// allocate or race thread teardown.
    static ALLOC_OPS: Cell<u64> = const { Cell::new(0) };
}

/// Number of allocating operations (`alloc` + `alloc_zeroed` +
/// `realloc`) the current thread has performed since it started.
///
/// Monotonically increasing; meaningful only as a *difference* across a
/// scope, which is what [`assert_no_alloc!`] computes.
pub fn thread_alloc_ops() -> u64 {
    ALLOC_OPS.with(Cell::get)
}

/// A [`System`]-backed allocator that counts allocating operations per
/// thread.
///
/// Install it once per test binary:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: accel::alloc_count::CountingAllocator =
///     accel::alloc_count::CountingAllocator::new();
/// ```
#[derive(Debug, Default)]
pub struct CountingAllocator;

impl CountingAllocator {
    /// Creates the allocator (const, so it can initialize a static).
    pub const fn new() -> CountingAllocator {
        CountingAllocator
    }
}

fn bump() {
    ALLOC_OPS.with(|c| c.set(c.get() + 1));
}

// The one audited unsafe block in the workspace: pure delegation to
// `System` plus a thread-local counter bump. No pointer arithmetic, no
// invariants beyond the ones `GlobalAlloc` already imposes on `System`.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Asserts that a block performs zero heap allocations on the current
/// thread, returning the block's value.
///
/// The first argument labels the failure message (scheme name, call
/// index, …). Requires [`CountingAllocator`] to be installed as the
/// `#[global_allocator]` of the running binary — without it the
/// counter never moves and the assertion is vacuous, so the sanitizer
/// test begins by asserting the counter *does* move for a `Vec` push.
#[macro_export]
macro_rules! assert_no_alloc {
    ($label:expr, $body:expr) => {{
        let __ops_before = $crate::alloc_count::thread_alloc_ops();
        let __value = $body;
        let __ops = $crate::alloc_count::thread_alloc_ops() - __ops_before;
        assert_eq!(
            __ops, 0,
            "{}: expected an allocation-free scope but counted {} allocating operation(s)",
            $label, __ops
        );
        __value
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: these unit tests run without the counting allocator
    // installed (the library test binary keeps the default allocator),
    // so they only cover the counter plumbing. The real end-to-end
    // guarantee lives in `tests/alloc_free.rs`, which installs the
    // allocator and proves the counter moves before relying on it.

    #[test]
    fn counter_is_monotonic_and_thread_local() {
        let base = thread_alloc_ops();
        bump();
        bump();
        assert_eq!(thread_alloc_ops(), base + 2);
        let other = std::thread::spawn(|| {
            let t = thread_alloc_ops();
            bump();
            thread_alloc_ops() - t
        })
        .join()
        .expect("thread");
        // The spawned thread saw only its own bump.
        assert_eq!(other, 1);
        // And ours is unchanged by the other thread's.
        assert_eq!(thread_alloc_ops(), base + 2);
    }

    #[test]
    fn assert_no_alloc_passes_without_counted_ops() {
        let v = assert_no_alloc!("arithmetic", 2 + 2);
        assert_eq!(v, 4);
    }

    #[test]
    #[should_panic(expected = "allocation-free scope")]
    fn assert_no_alloc_fails_when_the_counter_moves() {
        assert_no_alloc!("bumped", bump());
    }
}
