//! Lifetime fault-injection campaigns: graceful degradation over wear.
//!
//! The paper argues that data-aware codes let an accelerator "handle
//! faults gracefully" as stuck-at cells accumulate over the device
//! lifetime (§II-C6, §V-B), but evaluates only frozen fault snapshots.
//! This module closes the gap: a [`Campaign`] steps simulated lifetime
//! forward epoch by epoch, mapping accumulated writes to a stuck-cell
//! fraction through the log-uniform endurance model of
//! [`xbar::endurance`], re-programming the accelerator at the epoch's
//! fault rate (re-running the A-search and, when
//! [`AccelConfig::remap`] is set, the fault-aware remap — the
//! post-fabrication test-and-remap flow repeated at field
//! re-calibration), and recording misclassification / flip-rate / ECU
//! statistics per epoch. The result is a degradation curve over
//! lifetime rather than a point estimate.
//!
//! # Crash safety
//!
//! Campaigns are resumable: after each epoch (subject to
//! [`CampaignConfig::checkpoint_every`]) the full state serializes to a
//! JSON checkpoint, written atomically (temp file + rename) so a kill
//! mid-write never corrupts the previous checkpoint. [`Campaign::resume`]
//! validates that the checkpoint was recorded under the same campaign
//! parameters and continues from the first missing epoch. Because every
//! epoch is a pure function of `(seed, epoch, config, test set)`, a
//! resumed campaign's final state is **byte-identical** to an
//! uninterrupted run — tested in this module.
//!
//! Wall-clock timing is deliberately excluded from the state: it would
//! break byte-identical resume. Drivers that want harness-overhead
//! numbers (see `bench/src/bin/lifetime_campaign.rs`) time epochs
//! externally.

use std::path::{Path, PathBuf};

use neural::{QuantizedNetwork, Tensor};
use serde::{Deserialize, Serialize};
use xbar::endurance::EnduranceParams;

use crate::sim::{evaluate, SimResult};
use crate::{AccelConfig, AccelError, ProtectionScheme};

/// Checkpoint format version, bumped on incompatible schema changes.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Per-epoch seed stride: the 64-bit golden-ratio constant also used
/// for per-matrix seeds, so epoch streams never overlap worker streams.
const EPOCH_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Parameters of a lifetime campaign.
///
/// The epoch schedule models periodic full-array re-programming (model
/// updates / re-calibrations): before epoch `e` the array has absorbed
/// `initial_writes + writes_per_epoch · e` writes, which the endurance
/// distribution converts to a stuck-cell fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Accelerator configuration evaluated at every epoch; its
    /// `fault_rate` is overwritten per epoch from the wear model.
    pub base: AccelConfig,
    /// Number of lifetime epochs to simulate.
    pub epochs: u64,
    /// Writes already absorbed before epoch 0 (default: the weakest
    /// cells' endurance floor, so degradation starts immediately).
    pub initial_writes: f64,
    /// Full-array rewrites added per epoch.
    pub writes_per_epoch: f64,
    /// Endurance distribution mapping writes to stuck-cell fraction.
    pub endurance: EnduranceParams,
    /// Base RNG seed. Keep below 2^53: checkpoints store integers as
    /// JSON numbers, which must round-trip through `f64` exactly.
    pub seed: u64,
    /// Worker threads per evaluation.
    pub threads: usize,
    /// Write a checkpoint every this many epochs (the final epoch is
    /// always checkpointed). 0 disables periodic checkpoints.
    pub checkpoint_every: u64,
}

impl CampaignConfig {
    /// A campaign over `epochs` epochs with the default wear schedule:
    /// writes start at the endurance floor (1e6) and each epoch adds
    /// 2e4 rewrites, ramping the stuck-cell fraction from 0 to ~1.3 %
    /// over ten epochs — the regime where the paper's codes matter.
    pub fn new(base: AccelConfig, epochs: u64, seed: u64) -> CampaignConfig {
        let endurance = EnduranceParams::default();
        CampaignConfig {
            base,
            epochs,
            initial_writes: endurance.min_writes,
            writes_per_epoch: 2e4,
            endurance,
            seed,
            threads: 1,
            checkpoint_every: 1,
        }
    }

    /// Writes absorbed before epoch `epoch`.
    pub fn writes_at(&self, epoch: u64) -> f64 {
        self.initial_writes + self.writes_per_epoch * epoch as f64
    }

    /// Stuck-cell fraction at epoch `epoch`.
    pub fn fault_rate_at(&self, epoch: u64) -> f64 {
        self.endurance.failure_probability(self.writes_at(epoch))
    }

    /// The deterministic evaluation seed for one epoch.
    fn epoch_seed(&self, epoch: u64) -> u64 {
        self.seed.wrapping_add(epoch.wrapping_mul(EPOCH_SEED_STRIDE))
    }

    /// The state this config expects to find in a matching checkpoint.
    fn fresh_state(&self) -> CampaignState {
        CampaignState {
            version: CHECKPOINT_VERSION,
            scheme: self.base.scheme.label(),
            cell_bits: self.base.device.bits_per_cell as u64,
            remap: self.base.remap,
            epochs: self.epochs,
            initial_writes: self.initial_writes,
            writes_per_epoch: self.writes_per_epoch,
            min_endurance_writes: self.endurance.min_writes,
            max_endurance_writes: self.endurance.max_writes,
            seed: self.seed,
            threads: self.threads as u64,
            samples: 0,
            completed: Vec::new(),
        }
    }
}

/// One completed lifetime epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// Full-array writes absorbed before this epoch.
    pub writes: f64,
    /// Stuck-cell fraction the wear model assigns to those writes.
    pub fault_rate: f64,
    /// Top-1 misclassification rate.
    pub misclassification: f64,
    /// Top-5 misclassification rate.
    pub top5_misclassification: f64,
    /// Fraction of predictions flipped vs the exact fixed-point result.
    pub flip_rate: f64,
    /// Evaluated examples.
    pub samples: u64,
    /// ECU group-cycles decoded clean.
    pub clean: u64,
    /// ECU group-cycles corrected by a table hit.
    pub corrected: u64,
    /// ECU group-cycles with no table entry.
    pub uncorrectable: u64,
    /// ECU group-cycles flagged by the `B` check.
    pub miscorrected: u64,
    /// ECU group-cycles whose error was a multiple of `A`.
    pub silent_a: u64,
    /// ECU read retries.
    pub retries: u64,
    /// Group-cycles evaluated without any code.
    pub uncoded: u64,
}

impl EpochRecord {
    fn from_result(epoch: u64, writes: f64, fault_rate: f64, r: &SimResult) -> EpochRecord {
        EpochRecord {
            epoch,
            writes,
            fault_rate,
            misclassification: r.misclassification,
            top5_misclassification: r.top5_misclassification,
            flip_rate: r.flip_rate,
            samples: r.samples as u64,
            clean: r.stats.clean,
            corrected: r.stats.corrected,
            uncorrectable: r.stats.uncorrectable,
            miscorrected: r.stats.miscorrected,
            silent_a: r.stats.silent_a,
            retries: r.stats.retries,
            uncoded: r.stats.uncoded,
        }
    }
}

/// The complete, serializable state of a campaign: the parameters it
/// was launched with (for resume validation) plus every completed
/// epoch. Contains no wall-clock data, so serializing it is
/// deterministic — the basis of the byte-identical-resume guarantee.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignState {
    /// Checkpoint schema version ([`CHECKPOINT_VERSION`]).
    pub version: u64,
    /// Scheme label (`ProtectionScheme::label`).
    pub scheme: String,
    /// Bits per memristor cell.
    pub cell_bits: u64,
    /// Whether fault-aware remapping ran at each re-programming.
    pub remap: bool,
    /// Total epochs the campaign will run.
    pub epochs: u64,
    /// Writes absorbed before epoch 0.
    pub initial_writes: f64,
    /// Writes added per epoch.
    pub writes_per_epoch: f64,
    /// Endurance floor (writes).
    pub min_endurance_writes: f64,
    /// Endurance ceiling (writes).
    pub max_endurance_writes: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads per evaluation.
    pub threads: u64,
    /// Test-set size (0 until the first epoch runs).
    pub samples: u64,
    /// Completed epochs, in order.
    pub completed: Vec<EpochRecord>,
}

impl CampaignState {
    /// Serializes the state to pretty JSON (the checkpoint format).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Checkpoint`] if serialization fails.
    pub fn to_json(&self) -> Result<String, AccelError> {
        serde_json::to_string_pretty(self).map_err(|e| AccelError::Checkpoint {
            path: "<memory>".into(),
            message: format!("serialize: {e:?}"),
        })
    }

    /// Parses a checkpoint JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Checkpoint`] on malformed JSON or a
    /// mismatched schema version.
    pub fn from_json(json: &str) -> Result<CampaignState, AccelError> {
        let state: CampaignState =
            serde_json::from_str(json).map_err(|e| AccelError::Checkpoint {
                path: "<memory>".into(),
                message: format!("parse: {e:?}"),
            })?;
        if state.version != CHECKPOINT_VERSION {
            return Err(AccelError::Checkpoint {
                path: "<memory>".into(),
                message: format!(
                    "checkpoint version {} but this binary writes {}",
                    state.version, CHECKPOINT_VERSION
                ),
            });
        }
        Ok(state)
    }
}

/// A resumable lifetime fault-injection campaign.
///
/// # Examples
///
/// ```
/// use accel::campaign::{Campaign, CampaignConfig};
/// use accel::{AccelConfig, ProtectionScheme};
/// use neural::{Dense, Network, QuantizedNetwork, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let net = Network::new(vec![Box::new(Dense::new(8, 4, &mut rng))]);
/// let qnet = QuantizedNetwork::from_network(&net);
/// let images = Tensor::from_vec(vec![2, 8], vec![0.5; 16]);
/// let labels = vec![0usize, 1];
///
/// let base = AccelConfig::new(ProtectionScheme::None);
/// let mut campaign = Campaign::new(CampaignConfig::new(base, 2, 11))?;
/// let state = campaign.run(&qnet, &images, &labels)?;
/// assert_eq!(state.completed.len(), 2);
/// // Accumulated writes grow the stuck-cell fraction monotonically.
/// assert!(state.completed[1].fault_rate >= state.completed[0].fault_rate);
/// # Ok::<(), accel::AccelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
    state: CampaignState,
    checkpoint: Option<PathBuf>,
}

impl Campaign {
    /// Starts a fresh campaign.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] when the base accelerator
    /// config fails validation, the scheme label is not round-trippable
    /// (it must be, for checkpoints), or the seed exceeds 2^53 (JSON
    /// numbers must round-trip through `f64` exactly).
    pub fn new(config: CampaignConfig) -> Result<Campaign, AccelError> {
        config.base.validate()?;
        if ProtectionScheme::from_label(&config.base.scheme.label()).as_ref()
            != Some(&config.base.scheme)
        {
            return Err(AccelError::InvalidConfig(format!(
                "scheme {} does not survive a checkpoint label round-trip",
                config.base.scheme.label()
            )));
        }
        if config.seed >= (1u64 << 53) {
            return Err(AccelError::InvalidConfig(
                "campaign seeds must stay below 2^53 to round-trip through JSON".into(),
            ));
        }
        let state = config.fresh_state();
        Ok(Campaign {
            config,
            state,
            checkpoint: None,
        })
    }

    /// Resumes a campaign from a checkpoint file, validating that the
    /// checkpoint was recorded under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Checkpoint`] when the file cannot be read
    /// or parsed, and [`AccelError::ResumeMismatch`] when any campaign
    /// parameter (scheme, cell bits, remap, epoch schedule, endurance
    /// range, seed, threads) differs from the checkpoint's.
    pub fn resume(config: CampaignConfig, path: &Path) -> Result<Campaign, AccelError> {
        let json = std::fs::read_to_string(path).map_err(|e| AccelError::Checkpoint {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        let state = CampaignState::from_json(&json)?;
        let mut campaign = Campaign::new(config)?;
        let expected = &campaign.state;
        let mismatch = |field: &str, want: &dyn std::fmt::Debug, got: &dyn std::fmt::Debug| {
            Err(AccelError::ResumeMismatch(format!(
                "{field}: campaign wants {want:?}, checkpoint has {got:?}"
            )))
        };
        if state.scheme != expected.scheme {
            return mismatch("scheme", &expected.scheme, &state.scheme);
        }
        if state.cell_bits != expected.cell_bits {
            return mismatch("cell_bits", &expected.cell_bits, &state.cell_bits);
        }
        if state.remap != expected.remap {
            return mismatch("remap", &expected.remap, &state.remap);
        }
        if state.epochs != expected.epochs {
            return mismatch("epochs", &expected.epochs, &state.epochs);
        }
        if state.initial_writes != expected.initial_writes {
            return mismatch(
                "initial_writes",
                &expected.initial_writes,
                &state.initial_writes,
            );
        }
        if state.writes_per_epoch != expected.writes_per_epoch {
            return mismatch(
                "writes_per_epoch",
                &expected.writes_per_epoch,
                &state.writes_per_epoch,
            );
        }
        if state.min_endurance_writes != expected.min_endurance_writes
            || state.max_endurance_writes != expected.max_endurance_writes
        {
            return mismatch(
                "endurance range",
                &(expected.min_endurance_writes, expected.max_endurance_writes),
                &(state.min_endurance_writes, state.max_endurance_writes),
            );
        }
        if state.seed != expected.seed {
            return mismatch("seed", &expected.seed, &state.seed);
        }
        if state.threads != expected.threads {
            return mismatch("threads", &expected.threads, &state.threads);
        }
        if state.completed.len() as u64 > state.epochs {
            return Err(AccelError::ResumeMismatch(format!(
                "checkpoint claims {} completed epochs of {}",
                state.completed.len(),
                state.epochs
            )));
        }
        campaign.state = state;
        campaign.checkpoint = Some(path.to_path_buf());
        Ok(campaign)
    }

    /// Sets the checkpoint path for periodic saves during
    /// [`run`](Campaign::run).
    #[must_use]
    pub fn with_checkpoint(mut self, path: PathBuf) -> Campaign {
        self.checkpoint = Some(path);
        self
    }

    /// The campaign state accumulated so far.
    pub fn state(&self) -> &CampaignState {
        &self.state
    }

    /// Number of epochs already completed.
    pub fn completed_epochs(&self) -> u64 {
        self.state.completed.len() as u64
    }

    /// Whether every epoch has been evaluated.
    pub fn is_complete(&self) -> bool {
        self.completed_epochs() >= self.config.epochs
    }

    /// Runs every remaining epoch, checkpointing per
    /// [`CampaignConfig::checkpoint_every`].
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors ([`crate::sim::evaluate`]) and
    /// checkpoint I/O failures; returns
    /// [`AccelError::ResumeMismatch`] when the test set's size differs
    /// from the one recorded in a resumed checkpoint. On error the
    /// completed epochs remain in [`state`](Campaign::state) so callers
    /// can dump partial results.
    pub fn run(
        &mut self,
        qnet: &QuantizedNetwork,
        images: &Tensor,
        labels: &[usize],
    ) -> Result<&CampaignState, AccelError> {
        self.run_epochs(qnet, images, labels, self.config.epochs)
    }

    /// Runs remaining epochs up to epoch `limit` (exclusive), capped at
    /// the campaign's epoch count. Used to simulate interrupted runs in
    /// tests and to step campaigns incrementally.
    ///
    /// # Errors
    ///
    /// See [`run`](Campaign::run).
    pub fn run_epochs(
        &mut self,
        qnet: &QuantizedNetwork,
        images: &Tensor,
        labels: &[usize],
        limit: u64,
    ) -> Result<&CampaignState, AccelError> {
        if self.state.samples != 0 && self.state.samples != labels.len() as u64 {
            return Err(AccelError::ResumeMismatch(format!(
                "checkpoint evaluated {} samples, this test set has {}",
                self.state.samples,
                labels.len()
            )));
        }
        let limit = limit.min(self.config.epochs);
        while self.completed_epochs() < limit {
            let epoch = self.completed_epochs();
            let writes = self.config.writes_at(epoch);
            let fault_rate = self.config.fault_rate_at(epoch);
            let config = self.config.base.clone().with_fault_rate(fault_rate);
            // Wall timings live only in the event log, never in
            // `CampaignState`: checkpoints must stay byte-identical
            // across re-runs. `span_total_ns("program")` deltas isolate
            // the re-program + A-search share of the evaluation (shard
            // workers flush their metric shards before `evaluate`
            // returns, so the total is current at both reads).
            let eval_start_ns = obs::now_ns();
            let program_ns_before = obs::span_total_ns("program");
            let result = evaluate(
                qnet,
                images,
                labels,
                &config,
                self.config.epoch_seed(epoch),
                self.config.threads,
            )?;
            let eval_ns = obs::now_ns().saturating_sub(eval_start_ns);
            let program_ns = obs::span_total_ns("program").saturating_sub(program_ns_before);
            self.state.samples = labels.len() as u64;
            let record = EpochRecord::from_result(epoch, writes, fault_rate, &result);
            self.state.completed.push(record.clone());
            let due = self.config.checkpoint_every != 0
                && (epoch + 1) % self.config.checkpoint_every == 0;
            let mut checkpoint_ns = 0u64;
            if due || self.is_complete() {
                let ckpt_start_ns = obs::now_ns();
                self.save_checkpoint()?;
                // Only report a write latency when a checkpoint was
                // actually written; with no path configured the save is
                // a no-op and the field stays 0.
                if self.checkpoint.is_some() {
                    checkpoint_ns = obs::now_ns().saturating_sub(ckpt_start_ns);
                }
            }
            obs::events::emit(
                obs::Event::new("campaign_epoch")
                    .str("scheme", &self.state.scheme)
                    .u64("epoch", record.epoch)
                    .f64("writes", record.writes)
                    .f64("fault_rate", record.fault_rate)
                    .f64("misclassification", record.misclassification)
                    .f64("top5_misclassification", record.top5_misclassification)
                    .f64("flip_rate", record.flip_rate)
                    .u64("samples", record.samples)
                    .u64("clean", record.clean)
                    .u64("corrected", record.corrected)
                    .u64("uncorrectable", record.uncorrectable)
                    .u64("miscorrected", record.miscorrected)
                    .u64("silent_a", record.silent_a)
                    .u64("retries", record.retries)
                    .u64("uncoded", record.uncoded)
                    .u64("eval_ns", eval_ns)
                    .u64("program_ns", program_ns)
                    .u64("checkpoint_ns", checkpoint_ns),
            );
        }
        Ok(&self.state)
    }

    /// Writes the current state to the configured checkpoint path (a
    /// no-op if none is set), atomically: the JSON goes to a temporary
    /// sibling file which is then renamed over the target, so a kill
    /// mid-write leaves the previous checkpoint intact.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Checkpoint`] on I/O failure.
    pub fn save_checkpoint(&self) -> Result<(), AccelError> {
        let Some(path) = &self.checkpoint else {
            return Ok(());
        };
        let json = self.state.to_json()?;
        let io_err = |e: std::io::Error| AccelError::Checkpoint {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(io_err)?;
            }
        }
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, json).map_err(io_err)?;
        std::fs::rename(&tmp, path).map_err(io_err)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtectionScheme;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A tiny trained network and test set (same recipe as the sim
    /// tests, smaller test split: campaigns evaluate it many times).
    fn tiny_problem() -> (QuantizedNetwork, Tensor, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut net = neural::models::mlp2(&mut rng);
        let mut train = neural::data::digits(400, 1);
        neural::data::shuffle(&mut train, 2);
        for _ in 0..3 {
            net.train_epoch(&train.images, &train.labels, 32, 0.1);
        }
        let test = neural::data::digits(8, 99);
        let qnet = QuantizedNetwork::from_network(&net);
        (qnet, test.images, test.labels)
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("campaign-{}-{name}.json", std::process::id()))
    }

    fn small_campaign(scheme: ProtectionScheme, epochs: u64) -> CampaignConfig {
        let mut config = CampaignConfig::new(AccelConfig::new(scheme), epochs, 41);
        config.threads = 2;
        // Steep wear schedule so fault rates move visibly in few epochs.
        config.writes_per_epoch = 2e5;
        config
    }

    #[test]
    fn fault_rate_ramps_with_epochs() {
        let config = small_campaign(ProtectionScheme::None, 8);
        assert_eq!(config.fault_rate_at(0), 0.0);
        let mut prev = -1.0;
        for e in 0..8 {
            let r = config.fault_rate_at(e);
            assert!(r >= prev, "epoch {e}");
            prev = r;
        }
        assert!(prev > 0.0);
    }

    #[test]
    fn resume_after_kill_is_byte_identical() {
        let (qnet, images, labels) = tiny_problem();
        let config = small_campaign(ProtectionScheme::None, 4);

        // Uninterrupted reference run.
        let mut reference = Campaign::new(config.clone()).expect("campaign");
        reference.run(&qnet, &images, &labels).expect("run");
        let reference_json = reference.state().to_json().expect("json");

        // Interrupted run: stop after 2 of 4 epochs ("kill"), then
        // resume from the checkpoint and finish.
        let path = temp_path("resume");
        let mut interrupted = Campaign::new(config.clone())
            .expect("campaign")
            .with_checkpoint(path.clone());
        interrupted
            .run_epochs(&qnet, &images, &labels, 2)
            .expect("partial run");
        assert_eq!(interrupted.completed_epochs(), 2);
        drop(interrupted);

        let mut resumed = Campaign::resume(config, &path).expect("resume");
        assert_eq!(resumed.completed_epochs(), 2);
        resumed.run(&qnet, &images, &labels).expect("resumed run");
        let resumed_json = resumed.state().to_json().expect("json");

        assert_eq!(resumed_json, reference_json);
        // The checkpoint on disk is the final state too.
        let on_disk = std::fs::read_to_string(&path).expect("read checkpoint");
        assert_eq!(on_disk, reference_json);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_mismatched_campaigns() {
        let (qnet, images, labels) = tiny_problem();
        let config = small_campaign(ProtectionScheme::None, 3);
        let path = temp_path("mismatch");
        let mut campaign = Campaign::new(config.clone())
            .expect("campaign")
            .with_checkpoint(path.clone());
        campaign
            .run_epochs(&qnet, &images, &labels, 1)
            .expect("one epoch");

        // Different scheme.
        let other = small_campaign(ProtectionScheme::Static16, 3);
        assert!(matches!(
            Campaign::resume(other, &path),
            Err(AccelError::ResumeMismatch(_))
        ));
        // Different seed.
        let mut other = config.clone();
        other.seed = 999;
        assert!(matches!(
            Campaign::resume(other, &path),
            Err(AccelError::ResumeMismatch(_))
        ));
        // Different wear schedule.
        let mut other = config.clone();
        other.writes_per_epoch *= 2.0;
        assert!(matches!(
            Campaign::resume(other, &path),
            Err(AccelError::ResumeMismatch(_))
        ));
        // Matching config resumes fine, but a different test set is
        // rejected at run time.
        let mut resumed = Campaign::resume(config, &path).expect("resume");
        assert!(matches!(
            resumed.run_epochs(&qnet, &images, &labels[..4], 2),
            Err(AccelError::ResumeMismatch(_))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checkpoints_are_typed_errors() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "{ not json").expect("write");
        let config = small_campaign(ProtectionScheme::None, 2);
        assert!(matches!(
            Campaign::resume(config.clone(), &path),
            Err(AccelError::Checkpoint { .. })
        ));
        let _ = std::fs::remove_file(&path);
        // Missing file is also a checkpoint error, not a panic.
        assert!(matches!(
            Campaign::resume(config, &path),
            Err(AccelError::Checkpoint { .. })
        ));
    }

    #[test]
    fn invalid_campaigns_are_rejected() {
        let bad = CampaignConfig::new(
            AccelConfig::new(ProtectionScheme::None).with_fault_rate(2.0),
            2,
            1,
        );
        assert!(matches!(
            Campaign::new(bad),
            Err(AccelError::InvalidConfig(_))
        ));
        let mut big_seed = CampaignConfig::new(AccelConfig::new(ProtectionScheme::None), 2, 1);
        big_seed.seed = 1u64 << 53;
        assert!(matches!(
            Campaign::new(big_seed),
            Err(AccelError::InvalidConfig(_))
        ));
    }

    #[test]
    fn seed_boundary_pins_the_json_f64_limit() {
        // The vendored serde stub stores JSON numbers as f64, and
        // 2^53 - 1 is the largest integer f64 round-trips exactly
        // (see CHANGES.md, PR 2). Pin both sides of the boundary so a
        // future serde swap that lifts the limit shows up here.
        let mut config = CampaignConfig::new(AccelConfig::new(ProtectionScheme::None), 2, 1);
        config.seed = (1u64 << 53) - 1;
        assert!(Campaign::new(config.clone()).is_ok());
        config.seed = 1u64 << 53;
        match Campaign::new(config) {
            Err(AccelError::InvalidConfig(msg)) => {
                assert!(msg.contains("2^53"), "message should name the limit: {msg}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    fn arb_record() -> impl Strategy<Value = EpochRecord> {
        (
            (0u64..100, 0.0f64..1e12, 0.0f64..1.0, 0.0f64..1.0),
            (0.0f64..1.0, 0.0f64..1.0, 0u64..10_000),
            proptest::collection::vec(0u64..1_000_000, 7),
        )
            .prop_map(|((epoch, writes, fault, mis), (top5, flip, samples), counts)| {
                EpochRecord {
                    epoch,
                    writes,
                    fault_rate: fault,
                    misclassification: mis,
                    top5_misclassification: top5,
                    flip_rate: flip,
                    samples,
                    clean: counts[0],
                    corrected: counts[1],
                    uncorrectable: counts[2],
                    miscorrected: counts[3],
                    silent_a: counts[4],
                    retries: counts[5],
                    uncoded: counts[6],
                }
            })
    }

    proptest! {
        #[test]
        fn checkpoint_json_roundtrips(
            records in proptest::collection::vec(arb_record(), 0..6),
            seed in 0u64..(1u64 << 53),
            epochs in 0u64..1000,
            threads in 1u64..64,
            initial in 1e5f64..1e7,
            per_epoch in 1.0f64..1e6,
        ) {
            let state = CampaignState {
                version: CHECKPOINT_VERSION,
                scheme: "ABN-9".into(),
                cell_bits: 2,
                remap: true,
                epochs,
                initial_writes: initial,
                writes_per_epoch: per_epoch,
                min_endurance_writes: 1e6,
                max_endurance_writes: 1e12,
                seed,
                threads,
                samples: 20,
                completed: records,
            };
            let json = state.to_json().expect("serialize");
            let back = CampaignState::from_json(&json).expect("parse");
            prop_assert_eq!(&back, &state);
            // Re-serialization is byte-stable (the resume guarantee).
            prop_assert_eq!(back.to_json().expect("serialize"), json);
        }
    }
}
