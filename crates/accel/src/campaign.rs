//! Lifetime fault-injection campaigns: graceful degradation over wear.
//!
//! The paper argues that data-aware codes let an accelerator "handle
//! faults gracefully" as stuck-at cells accumulate over the device
//! lifetime (§II-C6, §V-B), but evaluates only frozen fault snapshots.
//! This module closes the gap: a [`Campaign`] steps simulated lifetime
//! forward epoch by epoch, mapping accumulated writes to a stuck-cell
//! fraction through the log-uniform endurance model of
//! [`xbar::endurance`], re-programming the accelerator at the epoch's
//! fault rate (re-running the A-search and, when
//! [`AccelConfig::remap`] is set, the fault-aware remap — the
//! post-fabrication test-and-remap flow repeated at field
//! re-calibration), and recording misclassification / flip-rate / ECU
//! statistics per epoch. The result is a degradation curve over
//! lifetime rather than a point estimate.
//!
//! # Crash safety
//!
//! Campaigns are resumable, and the recovery path is hardened against
//! everything the `chaos` crate can throw at it:
//!
//! - **A/B generation slots.** After each epoch (subject to
//!   [`CampaignConfig::checkpoint_every`]) the full state serializes
//!   into a checkpoint *slot*: `<path>.a` for even generations,
//!   `<path>.b` for odd, where the generation is the completed-epoch
//!   count. Each slot is written atomically (temp file + rename) and
//!   carries a one-line envelope header with the payload length and a
//!   CRC-32 checksum, so a torn or bit-flipped slot is *detected*, not
//!   silently resumed from. Because writes alternate slots, the
//!   previous generation always survives a failed write.
//! - **Self-healing resume.** [`Campaign::resume`] examines both slots
//!   plus the plain final file and recovers from the newest artifact
//!   that verifies (CRC + parse + version); every corrupt candidate is
//!   surfaced as a `checkpoint_fallback` obs event. Only when *no*
//!   artifact verifies does resume fail.
//! - **Non-fatal periodic saves.** A periodic slot write that fails
//!   every retry ([`Campaign::with_write_retries`]) emits
//!   `checkpoint_write_failed` and the campaign continues — losing a
//!   checkpoint costs re-computation, not results. Only the *final*
//!   plain-JSON write on completion is load-bearing and fails the run;
//!   because that file carries no CRC envelope, it is read back and
//!   verified after every apparently-successful write (a silent bit
//!   flip burns a retry instead of shipping corrupt results).
//! - **Deterministic chaos.** [`Campaign::with_chaos`] installs a
//!   [`chaos::ChaosSchedule`] that injects seeded faults at every seam
//!   (checkpoint writes/reads, the final write, worker shards), so the
//!   whole recovery machinery is exercised reproducibly in tests.
//!
//! [`Campaign::resume`] validates that the checkpoint was recorded
//! under the same campaign parameters and continues from the first
//! missing epoch. Because every epoch is a pure function of
//! `(seed, epoch, config, test set)`, a resumed campaign's final state
//! is **byte-identical** to an uninterrupted run — tested in this
//! module and in `tests/chaos_soak.rs`.
//!
//! Wall-clock timing is deliberately excluded from the state: it would
//! break byte-identical resume. Drivers that want harness-overhead
//! numbers (see `bench/src/bin/lifetime_campaign.rs`) time epochs
//! externally.

use std::path::{Path, PathBuf};

use chaos::{ChaosSchedule, IoFault, Seam};
use neural::{QuantizedNetwork, Tensor};
use serde::{Deserialize, Serialize};
use xbar::endurance::EnduranceParams;

use crate::analytic::ErrorModel;
use crate::sim::{evaluate_with_model, ShardGap, SimResult};
use crate::{AccelConfig, AccelError, ProtectionScheme};

/// Checkpoint format version, bumped on incompatible schema changes.
/// Version 2 added graceful-degradation fields (`lost_samples`,
/// `gaps`) to epoch records and moved periodic checkpoints into
/// CRC-protected A/B generation slots.
pub const CHECKPOINT_VERSION: u64 = 2;

/// Per-epoch seed stride: the 64-bit golden-ratio constant also used
/// for per-matrix seeds, so epoch streams never overlap worker streams.
const EPOCH_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Parameters of a lifetime campaign.
///
/// The epoch schedule models periodic full-array re-programming (model
/// updates / re-calibrations): before epoch `e` the array has absorbed
/// `initial_writes + writes_per_epoch · e` writes, which the endurance
/// distribution converts to a stuck-cell fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Accelerator configuration evaluated at every epoch; its
    /// `fault_rate` is overwritten per epoch from the wear model.
    pub base: AccelConfig,
    /// Number of lifetime epochs to simulate.
    pub epochs: u64,
    /// Writes already absorbed before epoch 0 (default: the weakest
    /// cells' endurance floor, so degradation starts immediately).
    pub initial_writes: f64,
    /// Full-array rewrites added per epoch.
    pub writes_per_epoch: f64,
    /// Endurance distribution mapping writes to stuck-cell fraction.
    pub endurance: EnduranceParams,
    /// Base RNG seed. Keep below 2^53: checkpoints store integers as
    /// JSON numbers, which must round-trip through `f64` exactly.
    pub seed: u64,
    /// Worker threads per evaluation.
    pub threads: usize,
    /// Write a checkpoint every this many epochs (the final epoch is
    /// always checkpointed). 0 disables periodic checkpoints.
    pub checkpoint_every: u64,
    /// Which error model evaluates each epoch. Campaign checkpoints
    /// are byte-compared across resumes, so a series must stay
    /// single-estimator: [`ErrorModel::Auto`] resolves to Monte-Carlo
    /// here (never per-epoch switching), and the analytic fast path
    /// must be requested explicitly — in which case resuming a
    /// checkpoint is refused, because the recorded epochs cannot be
    /// proven to share the estimator. Not serialized into
    /// [`CampaignState`]: the model is a run-time policy, like
    /// `threads`.
    pub error_model: ErrorModel,
}

impl CampaignConfig {
    /// A campaign over `epochs` epochs with the default wear schedule:
    /// writes start at the endurance floor (1e6) and each epoch adds
    /// 2e4 rewrites, ramping the stuck-cell fraction from 0 to ~1.3 %
    /// over ten epochs — the regime where the paper's codes matter.
    pub fn new(base: AccelConfig, epochs: u64, seed: u64) -> CampaignConfig {
        let endurance = EnduranceParams::default();
        CampaignConfig {
            base,
            epochs,
            initial_writes: endurance.min_writes,
            writes_per_epoch: 2e4,
            endurance,
            seed,
            threads: 1,
            checkpoint_every: 1,
            error_model: ErrorModel::Mc,
        }
    }

    /// Writes absorbed before epoch `epoch`.
    pub fn writes_at(&self, epoch: u64) -> f64 {
        self.initial_writes + self.writes_per_epoch * epoch as f64
    }

    /// Stuck-cell fraction at epoch `epoch`.
    pub fn fault_rate_at(&self, epoch: u64) -> f64 {
        self.endurance.failure_probability(self.writes_at(epoch))
    }

    /// The deterministic evaluation seed for one epoch.
    fn epoch_seed(&self, epoch: u64) -> u64 {
        self.seed.wrapping_add(epoch.wrapping_mul(EPOCH_SEED_STRIDE))
    }

    /// The state this config expects to find in a matching checkpoint.
    fn fresh_state(&self) -> CampaignState {
        CampaignState {
            version: CHECKPOINT_VERSION,
            scheme: self.base.scheme.label(),
            cell_bits: self.base.device.bits_per_cell as u64,
            remap: self.base.remap,
            epochs: self.epochs,
            initial_writes: self.initial_writes,
            writes_per_epoch: self.writes_per_epoch,
            min_endurance_writes: self.endurance.min_writes,
            max_endurance_writes: self.endurance.max_writes,
            seed: self.seed,
            threads: self.threads as u64,
            samples: 0,
            completed: Vec::new(),
        }
    }
}

/// One completed lifetime epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// Full-array writes absorbed before this epoch.
    pub writes: f64,
    /// Stuck-cell fraction the wear model assigns to those writes.
    pub fault_rate: f64,
    /// Top-1 misclassification rate.
    pub misclassification: f64,
    /// Top-5 misclassification rate.
    pub top5_misclassification: f64,
    /// Fraction of predictions flipped vs the exact fixed-point result.
    pub flip_rate: f64,
    /// Evaluated examples.
    pub samples: u64,
    /// ECU group-cycles decoded clean.
    pub clean: u64,
    /// ECU group-cycles corrected by a table hit.
    pub corrected: u64,
    /// ECU group-cycles with no table entry.
    pub uncorrectable: u64,
    /// ECU group-cycles flagged by the `B` check.
    pub miscorrected: u64,
    /// ECU group-cycles whose error was a multiple of `A`.
    pub silent_a: u64,
    /// ECU read retries.
    pub retries: u64,
    /// Group-cycles evaluated without any code.
    pub uncoded: u64,
    /// Samples dropped by graceful degradation (`max_lost_shards`);
    /// the epoch's rates are over `samples - lost_samples`.
    pub lost_samples: u64,
    /// Sample ranges the dropped shards would have evaluated — the
    /// explicit record of what this epoch's numbers do *not* cover.
    pub gaps: Vec<ShardGap>,
}

impl EpochRecord {
    fn from_result(epoch: u64, writes: f64, fault_rate: f64, r: &SimResult) -> EpochRecord {
        EpochRecord {
            epoch,
            writes,
            fault_rate,
            misclassification: r.misclassification,
            top5_misclassification: r.top5_misclassification,
            flip_rate: r.flip_rate,
            samples: r.samples as u64,
            clean: r.stats.clean,
            corrected: r.stats.corrected,
            uncorrectable: r.stats.uncorrectable,
            miscorrected: r.stats.miscorrected,
            silent_a: r.stats.silent_a,
            retries: r.stats.retries,
            uncoded: r.stats.uncoded,
            lost_samples: r.lost_samples as u64,
            gaps: r.gaps.clone(),
        }
    }
}

/// The complete, serializable state of a campaign: the parameters it
/// was launched with (for resume validation) plus every completed
/// epoch. Contains no wall-clock data, so serializing it is
/// deterministic — the basis of the byte-identical-resume guarantee.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignState {
    /// Checkpoint schema version ([`CHECKPOINT_VERSION`]).
    pub version: u64,
    /// Scheme label (`ProtectionScheme::label`).
    pub scheme: String,
    /// Bits per memristor cell.
    pub cell_bits: u64,
    /// Whether fault-aware remapping ran at each re-programming.
    pub remap: bool,
    /// Total epochs the campaign will run.
    pub epochs: u64,
    /// Writes absorbed before epoch 0.
    pub initial_writes: f64,
    /// Writes added per epoch.
    pub writes_per_epoch: f64,
    /// Endurance floor (writes).
    pub min_endurance_writes: f64,
    /// Endurance ceiling (writes).
    pub max_endurance_writes: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads per evaluation.
    pub threads: u64,
    /// Test-set size (0 until the first epoch runs).
    pub samples: u64,
    /// Completed epochs, in order.
    pub completed: Vec<EpochRecord>,
}

impl CampaignState {
    /// Serializes the state to pretty JSON (the checkpoint format).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Checkpoint`] if serialization fails.
    pub fn to_json(&self) -> Result<String, AccelError> {
        serde_json::to_string_pretty(self).map_err(|e| AccelError::Checkpoint {
            path: "<memory>".into(),
            message: format!("serialize: {e:?}"),
        })
    }

    /// Parses a checkpoint JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Checkpoint`] on malformed JSON or a
    /// mismatched schema version.
    pub fn from_json(json: &str) -> Result<CampaignState, AccelError> {
        let state: CampaignState =
            serde_json::from_str(json).map_err(|e| AccelError::Checkpoint {
                path: "<memory>".into(),
                message: format!("parse: {e:?}"),
            })?;
        if state.version != CHECKPOINT_VERSION {
            return Err(AccelError::Checkpoint {
                path: "<memory>".into(),
                message: format!(
                    "checkpoint version {} but this binary writes {}",
                    state.version, CHECKPOINT_VERSION
                ),
            });
        }
        Ok(state)
    }
}

/// A resumable lifetime fault-injection campaign.
///
/// # Examples
///
/// ```
/// use accel::campaign::{Campaign, CampaignConfig};
/// use accel::{AccelConfig, ProtectionScheme};
/// use neural::{Dense, Network, QuantizedNetwork, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let net = Network::new(vec![Box::new(Dense::new(8, 4, &mut rng))]);
/// let qnet = QuantizedNetwork::from_network(&net);
/// let images = Tensor::from_vec(vec![2, 8], vec![0.5; 16]);
/// let labels = vec![0usize, 1];
///
/// let base = AccelConfig::new(ProtectionScheme::None);
/// let mut campaign = Campaign::new(CampaignConfig::new(base, 2, 11))?;
/// let state = campaign.run(&qnet, &images, &labels)?;
/// assert_eq!(state.completed.len(), 2);
/// // Accumulated writes grow the stuck-cell fraction monotonically.
/// assert!(state.completed[1].fault_rate >= state.completed[0].fault_rate);
/// # Ok::<(), accel::AccelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
    state: CampaignState,
    checkpoint: Option<PathBuf>,
    /// Deterministic fault-injection schedule; `None` (the default)
    /// means every I/O seam and shard runs clean.
    chaos: Option<ChaosSchedule>,
    /// Retries after a failed checkpoint/final write (so a write gets
    /// `write_retries + 1` attempts).
    write_retries: u32,
    /// Per-seam operation counters feeding the chaos schedule
    /// (indexed by `Seam`; process-local, deliberately not part of the
    /// serialized state — chaos decisions replay from the seed and
    /// these indices, which restart at 0 per `Campaign` value).
    io_index: [u64; 4],
}

/// The checkpoint-slot envelope header: the first line of a slot file,
/// ahead of the pretty-printed [`CampaignState`] payload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct SlotHeader {
    /// Envelope format version (equals [`CHECKPOINT_VERSION`]).
    ckpt: u64,
    /// Completed-epoch count at write time; resume picks the highest
    /// generation that verifies.
    generation: u64,
    /// Byte length of the state payload after the header line.
    len: u64,
    /// CRC-32 (IEEE) of the state payload bytes.
    crc32: u64,
}

/// Path of the A/B slot for a generation: `<path>.a` for even
/// generations, `<path>.b` for odd. Alternating means a failed or torn
/// write can only damage the slot being replaced, never the newest
/// surviving generation.
fn slot_path(path: &Path, generation: u64) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let suffix = if generation % 2 == 0 { "a" } else { "b" };
    path.with_file_name(format!("{name}.{suffix}"))
}

/// Renders a slot file: header line, newline, state JSON.
fn render_slot(state_json: &str, generation: u64) -> Vec<u8> {
    let body = state_json.as_bytes();
    let mut out = format!(
        "{{\"ckpt\":{CHECKPOINT_VERSION},\"generation\":{generation},\"len\":{},\"crc32\":{}}}\n",
        body.len(),
        chaos::crc::crc32(body)
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// Parses and verifies a slot file: header shape, payload length,
/// CRC-32, then the state JSON itself. Any failure returns a short
/// reason string (surfaced in `checkpoint_fallback` events).
fn parse_slot(bytes: &[u8]) -> Result<(u64, CampaignState), String> {
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or("no envelope header line")?;
    let header_text =
        std::str::from_utf8(&bytes[..nl]).map_err(|_| "envelope header is not UTF-8")?;
    let header: SlotHeader =
        serde_json::from_str(header_text).map_err(|e| format!("bad envelope header: {e:?}"))?;
    if header.ckpt != CHECKPOINT_VERSION {
        return Err(format!(
            "envelope version {} but this binary writes {CHECKPOINT_VERSION}",
            header.ckpt
        ));
    }
    let body = &bytes[nl + 1..];
    if body.len() as u64 != header.len {
        return Err(format!(
            "payload is {} bytes but the header promises {} (torn write)",
            body.len(),
            header.len
        ));
    }
    let crc = u64::from(chaos::crc::crc32(body));
    if crc != header.crc32 {
        return Err(format!(
            "payload CRC-32 {crc:#010x} does not match header {:#010x} (corruption)",
            header.crc32
        ));
    }
    let text = std::str::from_utf8(body).map_err(|_| "payload is not UTF-8")?;
    let state = CampaignState::from_json(text).map_err(|e| e.to_string())?;
    Ok((header.generation, state))
}

impl Campaign {
    /// Starts a fresh campaign.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] when the base accelerator
    /// config fails validation, the scheme label is not round-trippable
    /// (it must be, for checkpoints), or the seed exceeds 2^53 (JSON
    /// numbers must round-trip through `f64` exactly).
    pub fn new(config: CampaignConfig) -> Result<Campaign, AccelError> {
        config.base.validate()?;
        if ProtectionScheme::from_label(&config.base.scheme.label()).as_ref()
            != Some(&config.base.scheme)
        {
            return Err(AccelError::InvalidConfig(format!(
                "scheme {} does not survive a checkpoint label round-trip",
                config.base.scheme.label()
            )));
        }
        if config.seed >= (1u64 << 53) {
            return Err(AccelError::InvalidConfig(
                "campaign seeds must stay below 2^53 to round-trip through JSON".into(),
            ));
        }
        let state = config.fresh_state();
        Ok(Campaign {
            config,
            state,
            checkpoint: None,
            chaos: None,
            write_retries: 2,
            io_index: [0; 4],
        })
    }

    /// Resumes a campaign from a checkpoint path, validating that the
    /// checkpoint was recorded under `config`.
    ///
    /// Recovery examines up to three artifacts — the `.a` and `.b`
    /// generation slots and the plain final file at `path` — and
    /// proceeds from the newest one that verifies (envelope, CRC-32,
    /// parse). Each corrupt or torn candidate is reported as a
    /// `checkpoint_fallback` obs event rather than failing the resume;
    /// only when no artifact verifies is the error surfaced.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Checkpoint`] when no artifact can be read
    /// and verified, and [`AccelError::ResumeMismatch`] when any
    /// campaign parameter (scheme, cell bits, remap, epoch schedule,
    /// endurance range, seed, threads) differs from the checkpoint's.
    pub fn resume(config: CampaignConfig, path: &Path) -> Result<Campaign, AccelError> {
        Self::resume_with_chaos(config, path, None)
    }

    /// [`resume`](Campaign::resume) with a chaos schedule installed
    /// *before* the checkpoint artifacts are read, so the read seam
    /// ([`chaos::Seam::CheckpointRead`]) is under injection too.
    pub fn resume_with_chaos(
        config: CampaignConfig,
        path: &Path,
        chaos: Option<ChaosSchedule>,
    ) -> Result<Campaign, AccelError> {
        if config.error_model == ErrorModel::Analytic {
            return Err(AccelError::AnalyticResume {
                path: path.display().to_string(),
            });
        }
        let mut campaign = Campaign::new(config)?;
        campaign.chaos = chaos;

        // Collect every candidate artifact: the two generation slots
        // and the plain final/pre-slot file. A missing file is simply
        // not a candidate; a present-but-invalid one is a fallback.
        let mut best: Option<(u64, CampaignState)> = None;
        let mut failures: Vec<(String, String)> = Vec::new();
        let mut consider = |campaign: &mut Campaign, candidate: &Path, slotted: bool| {
            if !candidate.exists() {
                return;
            }
            let fault = campaign.io_fault(Seam::CheckpointRead);
            let parsed = chaos::fs::read(candidate, fault)
                .map_err(|e| e.to_string())
                .and_then(|bytes| {
                    if slotted {
                        parse_slot(&bytes)
                    } else {
                        // The plain file has no envelope; its
                        // generation is its completed-epoch count.
                        let text = std::str::from_utf8(&bytes)
                            .map_err(|_| "payload is not UTF-8".to_string())?;
                        let state =
                            CampaignState::from_json(text).map_err(|e| e.to_string())?;
                        Ok((state.completed.len() as u64, state))
                    }
                });
            match parsed {
                Ok((generation, state)) => {
                    if best.as_ref().map_or(true, |(g, _)| generation > *g) {
                        best = Some((generation, state));
                    }
                }
                Err(reason) => failures.push((candidate.display().to_string(), reason)),
            }
        };
        consider(&mut campaign, &slot_path(path, 0), true);
        consider(&mut campaign, &slot_path(path, 1), true);
        consider(&mut campaign, path, false);

        let Some((generation, state)) = best else {
            let message = if failures.is_empty() {
                "no checkpoint artifact found (checked .a/.b slots and the final file)"
                    .to_string()
            } else {
                let mut m = String::from("every checkpoint artifact failed verification:");
                for (p, reason) in &failures {
                    m.push_str(&format!(" [{p}: {reason}]"));
                }
                m
            };
            return Err(AccelError::Checkpoint {
                path: path.display().to_string(),
                message,
            });
        };
        // Surface each rejected artifact: recovery happened, and the
        // event log should say so (and from which generation).
        for (p, reason) in &failures {
            obs::events::emit(
                obs::Event::new("checkpoint_fallback")
                    .str("path", p)
                    .str("reason", reason)
                    .u64("used_generation", generation),
            );
        }

        let expected = &campaign.state;
        let mismatch = |field: &str, want: &dyn std::fmt::Debug, got: &dyn std::fmt::Debug| {
            Err(AccelError::ResumeMismatch(format!(
                "{field}: campaign wants {want:?}, checkpoint has {got:?}"
            )))
        };
        if state.scheme != expected.scheme {
            return mismatch("scheme", &expected.scheme, &state.scheme);
        }
        if state.cell_bits != expected.cell_bits {
            return mismatch("cell_bits", &expected.cell_bits, &state.cell_bits);
        }
        if state.remap != expected.remap {
            return mismatch("remap", &expected.remap, &state.remap);
        }
        if state.epochs != expected.epochs {
            return mismatch("epochs", &expected.epochs, &state.epochs);
        }
        if state.initial_writes != expected.initial_writes {
            return mismatch(
                "initial_writes",
                &expected.initial_writes,
                &state.initial_writes,
            );
        }
        if state.writes_per_epoch != expected.writes_per_epoch {
            return mismatch(
                "writes_per_epoch",
                &expected.writes_per_epoch,
                &state.writes_per_epoch,
            );
        }
        if state.min_endurance_writes != expected.min_endurance_writes
            || state.max_endurance_writes != expected.max_endurance_writes
        {
            return mismatch(
                "endurance range",
                &(expected.min_endurance_writes, expected.max_endurance_writes),
                &(state.min_endurance_writes, state.max_endurance_writes),
            );
        }
        if state.seed != expected.seed {
            return mismatch("seed", &expected.seed, &state.seed);
        }
        if state.threads != expected.threads {
            return mismatch("threads", &expected.threads, &state.threads);
        }
        if state.completed.len() as u64 > state.epochs {
            return Err(AccelError::ResumeMismatch(format!(
                "checkpoint claims {} completed epochs of {}",
                state.completed.len(),
                state.epochs
            )));
        }
        campaign.state = state;
        campaign.checkpoint = Some(path.to_path_buf());
        Ok(campaign)
    }

    /// Claims a campaign at `path`: resumes when any checkpoint
    /// artifact exists there, starts fresh otherwise. Either way the
    /// returned campaign checkpoints to `path`.
    ///
    /// This is the grid worker's claim hook: a cell retried after a
    /// kill must pick up its own half-finished checkpoint, and a cell
    /// whose every artifact is corrupt may safely recompute from
    /// epoch 0 (every epoch is a pure function of the config), so an
    /// unreadable checkpoint degrades to a fresh start rather than
    /// failing the cell.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::AnalyticResume`] when artifacts exist and
    /// the config forces the analytic model, and propagates
    /// [`AccelError::ResumeMismatch`] — both mean the artifacts belong
    /// to a *different* campaign and recomputing would silently
    /// overwrite it. Only [`AccelError::Checkpoint`] (nothing
    /// readable) falls back to fresh.
    pub fn new_or_resume(config: CampaignConfig, path: &Path) -> Result<Campaign, AccelError> {
        Self::new_or_resume_with_chaos(config, path, None)
    }

    /// [`new_or_resume`](Campaign::new_or_resume) with a chaos
    /// schedule installed before any artifact is read.
    pub fn new_or_resume_with_chaos(
        config: CampaignConfig,
        path: &Path,
        chaos: Option<ChaosSchedule>,
    ) -> Result<Campaign, AccelError> {
        let any_artifact = path.exists()
            || slot_path(path, 0).exists()
            || slot_path(path, 1).exists();
        if any_artifact {
            match Self::resume_with_chaos(config.clone(), path, chaos) {
                Ok(campaign) => return Ok(campaign),
                // Nothing verified: every epoch is recomputable, so
                // start over. Mismatch/analytic errors still propagate.
                Err(AccelError::Checkpoint { .. }) => {}
                Err(other) => return Err(other),
            }
        }
        let mut campaign = Campaign::new(config)?.with_checkpoint(path.to_path_buf());
        campaign.chaos = chaos;
        Ok(campaign)
    }

    /// Sets the checkpoint path for periodic saves during
    /// [`run`](Campaign::run).
    #[must_use]
    pub fn with_checkpoint(mut self, path: PathBuf) -> Campaign {
        self.checkpoint = Some(path);
        self
    }

    /// Installs a deterministic chaos schedule: seeded faults at the
    /// checkpoint/final-write I/O seams and (unless the base config
    /// already sets explicit [`chaos::ShardChaos`]) per-epoch worker
    /// shard chaos. Testing support — results under chaos must equal
    /// the clean run (see `tests/chaos_soak.rs`).
    #[must_use]
    pub fn with_chaos(mut self, schedule: ChaosSchedule) -> Campaign {
        self.chaos = Some(schedule);
        self
    }

    /// Sets how many times a failed checkpoint/final write is retried
    /// (default 2, i.e. three attempts per write).
    #[must_use]
    pub fn with_write_retries(mut self, retries: u32) -> Campaign {
        self.write_retries = retries;
        self
    }

    /// Rolls the chaos schedule (if any) for the next operation on an
    /// I/O seam, advancing that seam's operation index. An injected
    /// fault is announced as a `chaos_fault` obs event, so chaos runs
    /// are self-documenting.
    fn io_fault(&mut self, seam: Seam) -> Option<IoFault> {
        let schedule = self.chaos?;
        let slot = match seam {
            Seam::CheckpointWrite => 0,
            Seam::CheckpointRead => 1,
            Seam::FinalWrite => 2,
            Seam::EventWrite => 3,
            // The serve and grid seams roll their own counters (see
            // `serve::Shared::seam_fault` / `grid::lease`); a campaign
            // never touches them.
            Seam::SocketAccept
            | Seam::SocketRead
            | Seam::SocketWrite
            | Seam::EngineSwap
            | Seam::ProcessSpawn
            | Seam::LeaseWrite
            | Seam::LeaseRead => return None,
        };
        let index = self.io_index[slot];
        self.io_index[slot] += 1;
        let fault = schedule.io_fault(seam, index);
        if let Some(f) = &fault {
            obs::events::emit(
                obs::Event::new("chaos_fault")
                    .str("seam", seam.label())
                    .u64("index", index)
                    .str("fault", f.label()),
            );
        }
        fault
    }

    /// The campaign state accumulated so far.
    pub fn state(&self) -> &CampaignState {
        &self.state
    }

    /// Number of epochs already completed.
    pub fn completed_epochs(&self) -> u64 {
        self.state.completed.len() as u64
    }

    /// Whether every epoch has been evaluated.
    pub fn is_complete(&self) -> bool {
        self.completed_epochs() >= self.config.epochs
    }

    /// Runs every remaining epoch, checkpointing per
    /// [`CampaignConfig::checkpoint_every`].
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors ([`crate::sim::evaluate`]) and
    /// checkpoint I/O failures; returns
    /// [`AccelError::ResumeMismatch`] when the test set's size differs
    /// from the one recorded in a resumed checkpoint. On error the
    /// completed epochs remain in [`state`](Campaign::state) so callers
    /// can dump partial results.
    pub fn run(
        &mut self,
        qnet: &QuantizedNetwork,
        images: &Tensor,
        labels: &[usize],
    ) -> Result<&CampaignState, AccelError> {
        self.run_epochs(qnet, images, labels, self.config.epochs)
    }

    /// Runs remaining epochs up to epoch `limit` (exclusive), capped at
    /// the campaign's epoch count. Used to simulate interrupted runs in
    /// tests and to step campaigns incrementally.
    ///
    /// # Errors
    ///
    /// See [`run`](Campaign::run).
    pub fn run_epochs(
        &mut self,
        qnet: &QuantizedNetwork,
        images: &Tensor,
        labels: &[usize],
        limit: u64,
    ) -> Result<&CampaignState, AccelError> {
        if self.state.samples != 0 && self.state.samples != labels.len() as u64 {
            return Err(AccelError::ResumeMismatch(format!(
                "checkpoint evaluated {} samples, this test set has {}",
                self.state.samples,
                labels.len()
            )));
        }
        let limit = limit.min(self.config.epochs);
        while self.completed_epochs() < limit {
            let epoch = self.completed_epochs();
            let writes = self.config.writes_at(epoch);
            let fault_rate = self.config.fault_rate_at(epoch);
            let mut config = self.config.base.clone().with_fault_rate(fault_rate);
            // The base config's `max_lost_shards` is a *campaign-wide*
            // degradation budget: each epoch may spend only what the
            // completed epochs have not already spent.
            let lost_so_far: usize = self.state.completed.iter().map(|r| r.gaps.len()).sum();
            config.max_lost_shards = self.config.base.max_lost_shards.saturating_sub(lost_so_far);
            // Shard chaos comes from the schedule per epoch unless the
            // base config pinned an explicit hook (tests do). Analytic
            // campaigns skip it: shard chaos exercises the MC
            // scheduler's panic/retry machinery, which the analytic
            // path does not have — drawing it would only force an
            // envelope refusal (`analytic::supports`), not test
            // anything. The I/O seams (checkpoint, final, lease) stay
            // fully injected for analytic cells.
            if let Some(schedule) = self.chaos {
                if matches!(config.shard_chaos, chaos::ShardChaos::Off)
                    && !matches!(self.config.error_model, ErrorModel::Analytic)
                {
                    config.shard_chaos = schedule.shard_chaos(epoch);
                }
            }
            // Wall timings live only in the event log, never in
            // `CampaignState`: checkpoints must stay byte-identical
            // across re-runs. `span_total_ns("program")` deltas isolate
            // the re-program + A-search share of the evaluation (shard
            // workers flush their metric shards before `evaluate`
            // returns, so the total is current at both reads).
            let eval_start_ns = obs::now_ns();
            let program_ns_before = obs::span_total_ns("program");
            // `Auto` resolved to Monte-Carlo at campaign level (see
            // `CampaignConfig::error_model`): per-epoch switching would
            // mix estimators inside one byte-compared series.
            let model = match self.config.error_model {
                ErrorModel::Analytic => ErrorModel::Analytic,
                ErrorModel::Mc | ErrorModel::Auto => ErrorModel::Mc,
            };
            let result = evaluate_with_model(
                qnet,
                images,
                labels,
                &config,
                self.config.epoch_seed(epoch),
                self.config.threads,
                model,
            )?;
            let eval_ns = obs::now_ns().saturating_sub(eval_start_ns);
            let program_ns = obs::span_total_ns("program").saturating_sub(program_ns_before);
            self.state.samples = labels.len() as u64;
            let record = EpochRecord::from_result(epoch, writes, fault_rate, &result);
            self.state.completed.push(record.clone());
            let due = self.config.checkpoint_every != 0
                && (epoch + 1) % self.config.checkpoint_every == 0;
            let mut checkpoint_ns = 0u64;
            if due || self.is_complete() {
                let ckpt_start_ns = obs::now_ns();
                if let Err(e) = self.save_checkpoint() {
                    // A lost periodic checkpoint costs re-computation
                    // on resume, never results: report it and keep
                    // going. The newest surviving generation remains
                    // the recovery point.
                    obs::events::emit(
                        obs::Event::new("checkpoint_write_failed")
                            .str(
                                "path",
                                &self
                                    .checkpoint
                                    .as_ref()
                                    .map(|p| p.display().to_string())
                                    .unwrap_or_default(),
                            )
                            .u64("attempts", u64::from(self.write_retries) + 1)
                            .str("error", &e.to_string()),
                    );
                }
                // Only report a write latency when a checkpoint was
                // actually written; with no path configured the save is
                // a no-op and the field stays 0.
                if self.checkpoint.is_some() {
                    checkpoint_ns = obs::now_ns().saturating_sub(ckpt_start_ns);
                }
            }
            obs::events::emit(
                obs::Event::new("campaign_epoch")
                    .str("scheme", &self.state.scheme)
                    .u64("epoch", record.epoch)
                    .f64("writes", record.writes)
                    .f64("fault_rate", record.fault_rate)
                    .f64("misclassification", record.misclassification)
                    .f64("top5_misclassification", record.top5_misclassification)
                    .f64("flip_rate", record.flip_rate)
                    .u64("samples", record.samples)
                    .u64("clean", record.clean)
                    .u64("corrected", record.corrected)
                    .u64("uncorrectable", record.uncorrectable)
                    .u64("miscorrected", record.miscorrected)
                    .u64("silent_a", record.silent_a)
                    .u64("retries", record.retries)
                    .u64("uncoded", record.uncoded)
                    .u64("eval_ns", eval_ns)
                    .u64("program_ns", program_ns)
                    .u64("checkpoint_ns", checkpoint_ns)
                    .u64("lost_samples", record.lost_samples),
            );
            if self.is_complete() {
                // The final results file is load-bearing (it is what
                // BENCH_campaign curves and downstream tooling read),
                // so unlike the periodic slots its failure fails the
                // run. Written plain (no envelope) and atomically, so
                // completed campaigns keep the stable byte-identical
                // JSON format.
                self.write_final()?;
            }
        }
        Ok(&self.state)
    }

    /// Writes the current state into its generation slot (a no-op if
    /// no checkpoint path is set), atomically: the envelope + JSON go
    /// to a temporary sibling file which is then renamed over the
    /// slot. Generations alternate between the `.a` and `.b` slots, so
    /// the previous checkpoint survives any failure here.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Checkpoint`] when every attempt
    /// (`1 + write_retries`) fails. Callers inside the epoch loop
    /// treat that as non-fatal; the CLI's partial-result dump path
    /// propagates it.
    pub fn save_checkpoint(&mut self) -> Result<(), AccelError> {
        let Some(path) = self.checkpoint.clone() else {
            return Ok(());
        };
        let json = self.state.to_json()?;
        let generation = self.state.completed.len() as u64;
        let slot = slot_path(&path, generation);
        let payload = render_slot(&json, generation);
        self.ensure_parent_dir(&path)?;
        let mut last_err: Option<std::io::Error> = None;
        for _ in 0..=self.write_retries {
            let fault = self.io_fault(Seam::CheckpointWrite);
            match chaos::fs::write_atomic(&slot, &payload, fault) {
                Ok(()) => return Ok(()),
                Err(e) => last_err = Some(e),
            }
        }
        Err(AccelError::Checkpoint {
            path: slot.display().to_string(),
            message: last_err
                .map(|e| e.to_string())
                .unwrap_or_else(|| "write failed".into()),
        })
    }

    /// Rewrites the plain final-results file when the campaign is
    /// complete (a no-op otherwise, and without a checkpoint path).
    ///
    /// [`run`](Campaign::run) writes the final file from the epoch
    /// loop, but a campaign killed between its completing checkpoint
    /// slot and the final write resumes fully complete with *no*
    /// epochs left to execute — `run` returns without touching disk
    /// and the load-bearing final artifact stays missing (or corrupt,
    /// if it was flipped in place). Callers that must guarantee the
    /// final artifact verifies — the grid worker does — call this
    /// after `run`; the rewrite is byte-identical when the file
    /// already exists.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Checkpoint`] when every write attempt
    /// fails read-back verification.
    pub fn finalize(&mut self) -> Result<(), AccelError> {
        if self.is_complete() {
            self.write_final()
        } else {
            Ok(())
        }
    }

    /// Writes the plain final-results JSON to the checkpoint path
    /// itself (no envelope — the stable format every consumer reads),
    /// atomically and with retries. A no-op without a checkpoint path.
    ///
    /// Unlike the slots, the final file carries no CRC envelope, so a
    /// silently corrupted write (one flipped bit, `Ok` returned) would
    /// ship bad results to every consumer. Each apparently-successful
    /// write is therefore **read back and compared** against the
    /// payload; a mismatch burns a retry like any hard failure. One
    /// extra read per campaign buys end-to-end integrity for the one
    /// artifact nothing downstream re-verifies.
    fn write_final(&mut self) -> Result<(), AccelError> {
        let Some(path) = self.checkpoint.clone() else {
            return Ok(());
        };
        let json = self.state.to_json()?;
        self.ensure_parent_dir(&path)?;
        let mut last_err: Option<std::io::Error> = None;
        for _ in 0..=self.write_retries {
            let fault = self.io_fault(Seam::FinalWrite);
            match chaos::fs::write_atomic(&path, json.as_bytes(), fault) {
                // Read-back goes through the chaos read seam (no fault
                // drawn: the FinalWrite draw above already decided this
                // attempt's fate, and a second draw would shift the
                // seed-pinned schedule) so the verification path stays
                // injectable alongside every other durable read.
                Ok(()) => match chaos::fs::read(&path, None) {
                    Ok(bytes) if bytes == json.as_bytes() => return Ok(()),
                    Ok(_) => {
                        last_err = Some(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "read-back verification found corrupted bytes",
                        ));
                    }
                    Err(e) => last_err = Some(e),
                },
                Err(e) => last_err = Some(e),
            }
        }
        Err(AccelError::Checkpoint {
            path: path.display().to_string(),
            message: format!(
                "final results write failed every attempt: {}",
                last_err.map(|e| e.to_string()).unwrap_or_default()
            ),
        })
    }

    fn ensure_parent_dir(&self, path: &Path) -> Result<(), AccelError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                // lint: allow(chaos_seam_coverage, idempotent mkdir -p of the artifact directory; it leaves no partial artifact to tear and its ENOSPC/EIO failures surface as typed Checkpoint errors)
                std::fs::create_dir_all(dir).map_err(|e| AccelError::Checkpoint {
                    path: path.display().to_string(),
                    message: e.to_string(),
                })?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtectionScheme;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A tiny trained network and test set (same recipe as the sim
    /// tests, smaller test split: campaigns evaluate it many times).
    fn tiny_problem() -> (QuantizedNetwork, Tensor, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut net = neural::models::mlp2(&mut rng);
        let mut train = neural::data::digits(400, 1);
        neural::data::shuffle(&mut train, 2);
        for _ in 0..3 {
            net.train_epoch(&train.images, &train.labels, 32, 0.1);
        }
        let test = neural::data::digits(8, 99);
        let qnet = QuantizedNetwork::from_network(&net);
        (qnet, test.images, test.labels)
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("campaign-{}-{name}.json", std::process::id()))
    }

    fn small_campaign(scheme: ProtectionScheme, epochs: u64) -> CampaignConfig {
        let mut config = CampaignConfig::new(AccelConfig::new(scheme), epochs, 41);
        config.threads = 2;
        // Steep wear schedule so fault rates move visibly in few epochs.
        config.writes_per_epoch = 2e5;
        config
    }

    #[test]
    fn fault_rate_ramps_with_epochs() {
        let config = small_campaign(ProtectionScheme::None, 8);
        assert_eq!(config.fault_rate_at(0), 0.0);
        let mut prev = -1.0;
        for e in 0..8 {
            let r = config.fault_rate_at(e);
            assert!(r >= prev, "epoch {e}");
            prev = r;
        }
        assert!(prev > 0.0);
    }

    #[test]
    fn resume_after_kill_is_byte_identical() {
        let (qnet, images, labels) = tiny_problem();
        let config = small_campaign(ProtectionScheme::None, 4);

        // Uninterrupted reference run.
        let mut reference = Campaign::new(config.clone()).expect("campaign");
        reference.run(&qnet, &images, &labels).expect("run");
        let reference_json = reference.state().to_json().expect("json");

        // Interrupted run: stop after 2 of 4 epochs ("kill"), then
        // resume from the checkpoint and finish.
        let path = temp_path("resume");
        let mut interrupted = Campaign::new(config.clone())
            .expect("campaign")
            .with_checkpoint(path.clone());
        interrupted
            .run_epochs(&qnet, &images, &labels, 2)
            .expect("partial run");
        assert_eq!(interrupted.completed_epochs(), 2);
        drop(interrupted);

        let mut resumed = Campaign::resume(config, &path).expect("resume");
        assert_eq!(resumed.completed_epochs(), 2);
        resumed.run(&qnet, &images, &labels).expect("resumed run");
        let resumed_json = resumed.state().to_json().expect("json");

        assert_eq!(resumed_json, reference_json);
        // The checkpoint on disk is the final state too.
        let on_disk = std::fs::read_to_string(&path).expect("read checkpoint");
        assert_eq!(on_disk, reference_json);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn new_or_resume_claims_fresh_resumed_and_corrupt_cells() {
        let (qnet, images, labels) = tiny_problem();
        let config = small_campaign(ProtectionScheme::None, 4);
        let path = temp_path("claim");
        let _ = std::fs::remove_file(&path);

        // No artifacts: a fresh campaign, already checkpointing to path.
        let mut fresh = Campaign::new_or_resume(config.clone(), &path).expect("fresh claim");
        assert_eq!(fresh.completed_epochs(), 0);
        fresh
            .run_epochs(&qnet, &images, &labels, 2)
            .expect("partial run");
        drop(fresh);

        // Artifacts present: the claim resumes them.
        let resumed = Campaign::new_or_resume(config.clone(), &path).expect("resume claim");
        assert_eq!(resumed.completed_epochs(), 2);
        drop(resumed);

        // Every artifact corrupt: the claim degrades to a fresh start
        // (epochs are pure recomputation), never an error.
        for p in [slot_path(&path, 0), slot_path(&path, 1), path.clone()] {
            if p.exists() {
                std::fs::write(&p, b"not a checkpoint").expect("corrupt");
            }
        }
        let recovered = Campaign::new_or_resume(config.clone(), &path).expect("corrupt claim");
        assert_eq!(recovered.completed_epochs(), 0);

        // But a genuine mismatch still propagates: the artifacts are
        // someone else's work and must not be silently overwritten.
        let mut fresh = Campaign::new_or_resume(config.clone(), &path).expect("fresh claim");
        fresh
            .run_epochs(&qnet, &images, &labels, 1)
            .expect("one epoch");
        drop(fresh);
        let mut other = config;
        other.seed = 999;
        assert!(matches!(
            Campaign::new_or_resume(other, &path),
            Err(AccelError::ResumeMismatch(_))
        ));
        for p in [slot_path(&path, 0), slot_path(&path, 1), path.clone()] {
            let _ = std::fs::remove_file(&p);
        }
    }

    #[test]
    fn resume_rejects_mismatched_campaigns() {
        let (qnet, images, labels) = tiny_problem();
        let config = small_campaign(ProtectionScheme::None, 3);
        let path = temp_path("mismatch");
        let mut campaign = Campaign::new(config.clone())
            .expect("campaign")
            .with_checkpoint(path.clone());
        campaign
            .run_epochs(&qnet, &images, &labels, 1)
            .expect("one epoch");

        // Different scheme.
        let other = small_campaign(ProtectionScheme::Static16, 3);
        assert!(matches!(
            Campaign::resume(other, &path),
            Err(AccelError::ResumeMismatch(_))
        ));
        // Different seed.
        let mut other = config.clone();
        other.seed = 999;
        assert!(matches!(
            Campaign::resume(other, &path),
            Err(AccelError::ResumeMismatch(_))
        ));
        // Different wear schedule.
        let mut other = config.clone();
        other.writes_per_epoch *= 2.0;
        assert!(matches!(
            Campaign::resume(other, &path),
            Err(AccelError::ResumeMismatch(_))
        ));
        // Matching config resumes fine, but a different test set is
        // rejected at run time.
        let mut resumed = Campaign::resume(config, &path).expect("resume");
        assert!(matches!(
            resumed.run_epochs(&qnet, &images, &labels[..4], 2),
            Err(AccelError::ResumeMismatch(_))
        ));
        let _ = std::fs::remove_file(&path);
    }

    /// `Auto` is resolved to Monte-Carlo at campaign level: per-epoch
    /// estimator switching would mix estimators inside one
    /// byte-compared series. An `Auto` campaign must therefore produce
    /// a state byte-identical to an explicit `Mc` campaign.
    #[test]
    fn auto_campaign_is_byte_identical_to_mc() {
        let (qnet, images, labels) = tiny_problem();
        let mc_config = small_campaign(ProtectionScheme::None, 3);
        let mut auto_config = mc_config.clone();
        auto_config.error_model = ErrorModel::Auto;

        let mut mc = Campaign::new(mc_config).expect("campaign");
        mc.run(&qnet, &images, &labels).expect("mc run");
        let mut auto = Campaign::new(auto_config).expect("campaign");
        auto.run(&qnet, &images, &labels).expect("auto run");
        assert_eq!(
            auto.state().to_json().expect("json"),
            mc.state().to_json().expect("json"),
        );
    }

    /// Checkpoints never record which estimator produced an epoch, so
    /// resuming under the analytic model could silently mix estimators.
    /// Resume must refuse it outright.
    #[test]
    fn analytic_campaign_refuses_resume() {
        let (qnet, images, labels) = tiny_problem();
        let config = small_campaign(ProtectionScheme::None, 4);
        let path = temp_path("analytic-resume");
        let mut campaign = Campaign::new(config.clone())
            .expect("campaign")
            .with_checkpoint(path.clone());
        campaign
            .run_epochs(&qnet, &images, &labels, 2)
            .expect("partial run");
        drop(campaign);

        let mut analytic = config.clone();
        analytic.error_model = ErrorModel::Analytic;
        match Campaign::resume(analytic.clone(), &path) {
            Err(err @ AccelError::AnalyticResume { .. }) => {
                // The message must name both flags so the operator can
                // see exactly which combination was refused and how to
                // proceed.
                let msg = err.to_string();
                assert!(msg.contains("--error-model analytic"), "message: {msg}");
                assert!(msg.contains("--resume"), "message: {msg}");
                assert!(msg.contains(&path.display().to_string()), "message: {msg}");
            }
            other => panic!("expected AnalyticResume, got {other:?}"),
        }
        // The claim hook refuses identically: an existing artifact plus
        // a forced analytic model must not silently restart fresh.
        match Campaign::new_or_resume(analytic, &path) {
            Err(AccelError::AnalyticResume { .. }) => {}
            other => panic!("expected AnalyticResume from new_or_resume, got {other:?}"),
        }
        // The same checkpoint resumes fine under the recorded model.
        assert!(Campaign::resume(config, &path).is_ok());
        for slot in 0..2 {
            let _ = std::fs::remove_file(slot_path(&path, slot));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checkpoints_are_typed_errors() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "{ not json").expect("write");
        let config = small_campaign(ProtectionScheme::None, 2);
        assert!(matches!(
            Campaign::resume(config.clone(), &path),
            Err(AccelError::Checkpoint { .. })
        ));
        let _ = std::fs::remove_file(&path);
        // Missing file is also a checkpoint error, not a panic.
        assert!(matches!(
            Campaign::resume(config, &path),
            Err(AccelError::Checkpoint { .. })
        ));
    }

    #[test]
    fn invalid_campaigns_are_rejected() {
        let bad = CampaignConfig::new(
            AccelConfig::new(ProtectionScheme::None).with_fault_rate(2.0),
            2,
            1,
        );
        assert!(matches!(
            Campaign::new(bad),
            Err(AccelError::InvalidConfig(_))
        ));
        let mut big_seed = CampaignConfig::new(AccelConfig::new(ProtectionScheme::None), 2, 1);
        big_seed.seed = 1u64 << 53;
        assert!(matches!(
            Campaign::new(big_seed),
            Err(AccelError::InvalidConfig(_))
        ));
    }

    #[test]
    fn seed_boundary_pins_the_json_f64_limit() {
        // The vendored serde stub stores JSON numbers as f64, and
        // 2^53 - 1 is the largest integer f64 round-trips exactly
        // (see CHANGES.md, PR 2). Pin both sides of the boundary so a
        // future serde swap that lifts the limit shows up here.
        let mut config = CampaignConfig::new(AccelConfig::new(ProtectionScheme::None), 2, 1);
        config.seed = (1u64 << 53) - 1;
        assert!(Campaign::new(config.clone()).is_ok());
        config.seed = 1u64 << 53;
        match Campaign::new(config) {
            Err(AccelError::InvalidConfig(msg)) => {
                assert!(msg.contains("2^53"), "message should name the limit: {msg}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn slot_paths_alternate_a_and_b() {
        let base = Path::new("/tmp/x/out.json");
        assert_eq!(slot_path(base, 0), Path::new("/tmp/x/out.json.a"));
        assert_eq!(slot_path(base, 1), Path::new("/tmp/x/out.json.b"));
        assert_eq!(slot_path(base, 2), Path::new("/tmp/x/out.json.a"));
        assert_eq!(slot_path(base, 7), Path::new("/tmp/x/out.json.b"));
    }

    #[test]
    fn slot_envelope_roundtrips_and_detects_damage() {
        let config = small_campaign(ProtectionScheme::None, 4);
        let state = config.fresh_state();
        let json = state.to_json().expect("json");
        let bytes = render_slot(&json, 3);

        let (generation, back) = parse_slot(&bytes).expect("intact slot parses");
        assert_eq!(generation, 3);
        assert_eq!(back, state);

        // A torn write (strict prefix) is caught by the length check.
        let torn = parse_slot(&bytes[..bytes.len() - 7]).expect_err("torn");
        assert!(torn.contains("torn write"), "reason: {torn}");

        // A single flipped payload bit is caught by the CRC.
        let mut flipped = bytes.clone();
        let mid = bytes.len() / 2;
        flipped[mid] ^= 0x10;
        let corrupt = parse_slot(&flipped).expect_err("bitflip");
        assert!(corrupt.contains("CRC-32"), "reason: {corrupt}");

        // A foreign envelope version is refused before the payload is
        // trusted.
        let old = String::from_utf8(bytes.clone())
            .expect("utf8")
            .replacen("\"ckpt\":2", "\"ckpt\":1", 1);
        let version = parse_slot(old.as_bytes()).expect_err("version");
        assert!(version.contains("envelope version 1"), "reason: {version}");

        // No header line at all.
        assert!(parse_slot(b"not a slot file").is_err());
    }

    #[test]
    fn resume_falls_back_to_previous_generation_on_corrupt_slot() {
        let (qnet, images, labels) = tiny_problem();
        let config = small_campaign(ProtectionScheme::None, 4);

        // Uninterrupted reference run.
        let mut reference = Campaign::new(config.clone()).expect("campaign");
        reference.run(&qnet, &images, &labels).expect("run");
        let reference_json = reference.state().to_json().expect("json");

        // Interrupted run: 3 of 4 epochs leaves generation 3 in the
        // `.b` slot and generation 2 in `.a`.
        let path = temp_path("fallback");
        let mut interrupted = Campaign::new(config.clone())
            .expect("campaign")
            .with_checkpoint(path.clone());
        interrupted
            .run_epochs(&qnet, &images, &labels, 3)
            .expect("partial run");
        drop(interrupted);
        let newest = slot_path(&path, 3);
        let older = slot_path(&path, 2);
        assert!(newest.exists() && older.exists());

        // Flip one payload bit in the newest slot: resume must detect
        // the damage and recover from generation 2 instead.
        let mut bytes = std::fs::read(&newest).expect("read slot");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&newest, &bytes).expect("corrupt slot");

        let mut resumed = Campaign::resume(config, &path).expect("resume");
        assert_eq!(
            resumed.completed_epochs(),
            2,
            "resume should fall back to generation 2"
        );
        resumed.run(&qnet, &images, &labels).expect("resumed run");
        assert_eq!(resumed.state().to_json().expect("json"), reference_json);
        let on_disk = std::fs::read_to_string(&path).expect("read final");
        assert_eq!(on_disk, reference_json);
        for p in [&path, &newest, &older] {
            let _ = std::fs::remove_file(p);
        }
    }

    /// Both slots *and* the plain file corrupt: resume reports every
    /// failed artifact instead of picking one arbitrarily.
    #[test]
    fn resume_with_no_valid_artifact_lists_every_failure() {
        let config = small_campaign(ProtectionScheme::None, 2);
        let path = temp_path("allbad");
        std::fs::write(&path, "{ not json").expect("write");
        std::fs::write(slot_path(&path, 0), "garbage without a header").expect("write");
        match Campaign::resume(config, &path) {
            Err(AccelError::Checkpoint { message, .. }) => {
                assert!(
                    message.contains("every checkpoint artifact failed verification"),
                    "message: {message}"
                );
                assert!(message.contains(".a"), "message should name the slot: {message}");
            }
            other => panic!("expected Checkpoint error, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(slot_path(&path, 0));
    }

    /// A checkpoint-write seam that always fails must not fail the
    /// campaign: periodic saves are best-effort, and the final write
    /// (a different seam) still lands the results.
    #[test]
    fn hopeless_checkpoint_seam_degrades_to_final_write() {
        let (qnet, images, labels) = tiny_problem();
        let config = small_campaign(ProtectionScheme::None, 2);

        let mut reference = Campaign::new(config.clone()).expect("campaign");
        reference.run(&qnet, &images, &labels).expect("run");
        let reference_json = reference.state().to_json().expect("json");

        let always_fail = ChaosSchedule::new(
            3,
            chaos::ChaosConfig {
                write_error_permille: 1000,
                ..chaos::ChaosConfig::default()
            },
        );
        let path = temp_path("hopeless");
        let mut campaign = Campaign::new(config)
            .expect("campaign")
            .with_checkpoint(path.clone())
            .with_chaos(always_fail)
            .with_write_retries(0);
        let result = campaign.run(&qnet, &images, &labels);
        // Every write (periodic and final) fails: periodic failures
        // are swallowed, the final write's failure is the one error.
        match result {
            Err(AccelError::Checkpoint { message, .. }) => {
                assert!(
                    message.contains("final results write failed"),
                    "message: {message}"
                );
            }
            other => panic!("expected final-write Checkpoint error, got {other:?}"),
        }
        // All epochs still completed in memory — partial results are
        // dumpable even when the disk is gone.
        assert_eq!(campaign.completed_epochs(), 2);
        assert_eq!(campaign.state().to_json().expect("json"), reference_json);
        for g in 0..2 {
            let _ = std::fs::remove_file(slot_path(&path, g));
        }
        let _ = std::fs::remove_file(&path);
    }

    fn arb_gap() -> impl Strategy<Value = ShardGap> {
        (0u64..8, 0u64..1_000, 1u64..200).prop_map(|(shard, lo, width)| ShardGap {
            shard,
            lo,
            hi: lo + width,
        })
    }

    fn arb_record() -> impl Strategy<Value = EpochRecord> {
        (
            (0u64..100, 0.0f64..1e12, 0.0f64..1.0, 0.0f64..1.0),
            (0.0f64..1.0, 0.0f64..1.0, 0u64..10_000),
            proptest::collection::vec(0u64..1_000_000, 7),
            (0u64..200, proptest::collection::vec(arb_gap(), 0..3)),
        )
            .prop_map(
                |((epoch, writes, fault, mis), (top5, flip, samples), counts, (lost, gaps))| {
                    EpochRecord {
                        epoch,
                        writes,
                        fault_rate: fault,
                        misclassification: mis,
                        top5_misclassification: top5,
                        flip_rate: flip,
                        samples,
                        clean: counts[0],
                        corrected: counts[1],
                        uncorrectable: counts[2],
                        miscorrected: counts[3],
                        silent_a: counts[4],
                        retries: counts[5],
                        uncoded: counts[6],
                        lost_samples: lost,
                        gaps,
                    }
                },
            )
    }

    proptest! {
        #[test]
        fn checkpoint_json_roundtrips(
            records in proptest::collection::vec(arb_record(), 0..6),
            seed in 0u64..(1u64 << 53),
            epochs in 0u64..1000,
            threads in 1u64..64,
            initial in 1e5f64..1e7,
            per_epoch in 1.0f64..1e6,
        ) {
            let state = CampaignState {
                version: CHECKPOINT_VERSION,
                scheme: "ABN-9".into(),
                cell_bits: 2,
                remap: true,
                epochs,
                initial_writes: initial,
                writes_per_epoch: per_epoch,
                min_endurance_writes: 1e6,
                max_endurance_writes: 1e12,
                seed,
                threads,
                samples: 20,
                completed: records,
            };
            let json = state.to_json().expect("serialize");
            let back = CampaignState::from_json(&json).expect("parse");
            prop_assert_eq!(&back, &state);
            // Re-serialization is byte-stable (the resume guarantee).
            prop_assert_eq!(back.to_json().expect("serialize"), json);
        }
    }
}
