//! Hierarchical organization and resource accounting (§II-B2).
//!
//! ISAAC-class accelerators arrange crossbars in a hierarchy — arrays
//! inside in-situ multiply-accumulate units (IMAs), IMAs inside tiles,
//! tiles on a chip — with ADCs, DACs and the shift-and-add network
//! shared at each level, and (with this paper's scheme) one error
//! correction unit per IMA whose correction table is time-multiplexed
//! across the operands of a group (§VI). This module plans a network's
//! placement onto that hierarchy and accounts for the resources and
//! per-inference energy, including the check-bit overhead the code adds.
//!
//! Absolute energy numbers are *relative accounting*, calibrated to
//! ISAAC-era constants (32 nm); what the experiments compare is the
//! overhead between protection schemes, which depends only on the
//! ratios.

use neural::QuantizedNetwork;

use crate::{AccelConfig, ProtectionScheme};

/// Geometry of the accelerator hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyConfig {
    /// Rows per crossbar array.
    pub array_rows: usize,
    /// Columns per crossbar array.
    pub array_cols: usize,
    /// Crossbar arrays per IMA (8 in ISAAC).
    pub arrays_per_ima: usize,
    /// IMAs per tile (12 in ISAAC).
    pub imas_per_tile: usize,
    /// Energy per ADC conversion (pJ).
    pub adc_energy_pj: f64,
    /// Energy per driven cell per cycle (pJ) — array read energy.
    pub cell_energy_pj: f64,
    /// Energy per ECU decode (residue, table lookup, correction,
    /// detection) (pJ).
    pub ecu_energy_pj: f64,
}

impl Default for HierarchyConfig {
    fn default() -> HierarchyConfig {
        HierarchyConfig {
            array_rows: 128,
            array_cols: 128,
            arrays_per_ima: 8,
            imas_per_tile: 12,
            adc_energy_pj: 2.0,
            cell_energy_pj: 0.02,
            ecu_energy_pj: 1.5,
        }
    }
}

/// Resource and energy plan for one network on the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourcePlan {
    /// Physical crossbar rows storing data bits.
    pub data_rows: usize,
    /// Physical rows added by check bits.
    pub check_rows: usize,
    /// 128×128 arrays occupied.
    pub arrays: usize,
    /// IMAs occupied.
    pub imas: usize,
    /// Tiles occupied.
    pub tiles: usize,
    /// Fraction of physical rows that are check-bit overhead.
    pub storage_overhead: f64,
    /// ADC conversions per inference.
    pub adc_conversions: u64,
    /// ECU decodes per inference.
    pub ecu_decodes: u64,
    /// Estimated array + ADC + ECU energy per inference (nJ).
    pub energy_nj: f64,
    /// Pipeline cycles per inference (bit-serial input streaming; the
    /// ECU adds pipeline *stages*, not cycles — §VIII-B3).
    pub cycles: u64,
}

/// Plans a quantized network onto the hierarchy under a protection
/// scheme.
///
/// Row counts follow the same packing the engine uses: per-row coding
/// for `None`/`Static16`, 8-operand 128-bit groups for the grouped
/// schemes, `ceil(width / cell_bits)` physical rows per coded word,
/// column chunks of at most `array_cols`.
pub fn plan_network(
    qnet: &QuantizedNetwork,
    accel: &AccelConfig,
    hierarchy: &HierarchyConfig,
) -> ResourcePlan {
    let cell_bits = accel.device.bits_per_cell;
    let input_bits = accel.input_bits as u64;
    let mut data_rows = 0usize;
    let mut total_rows = 0usize;
    let mut adc_conversions = 0u64;
    let mut ecu_decodes = 0u64;
    let mut energy_pj = 0.0f64;
    let mut cycles = 0u64;

    for matrix in qnet.mvm_matrices() {
        let (out, inp) = (matrix.out_dim(), matrix.in_dim());
        let chunks = inp.div_ceil(hierarchy.array_cols);
        let cols_per_chunk = inp.div_ceil(chunks);

        let (stacks_per_chunk, word_bits, coded_bits, decodes_per_stack) =
            match &accel.scheme {
                ProtectionScheme::None => (out, 16u32, 16u32, 0u64),
                ProtectionScheme::Static16 => {
                    let code = crate::scheme::static16_code(cell_bits);
                    (out, 16, 16 + code.check_bits(), input_bits)
                }
                ProtectionScheme::Static128 => {
                    let code = crate::scheme::static128_code(cell_bits);
                    (out.div_ceil(8), 128, 128 + code.check_bits(), input_bits)
                }
                ProtectionScheme::DataAware { check_bits, .. } => {
                    (out.div_ceil(8), 128, 128 + check_bits, input_bits)
                }
            };

        let rows_per_stack = coded_bits.div_ceil(cell_bits) as usize;
        let data_rows_per_stack = word_bits.div_ceil(cell_bits) as usize;
        let matrix_rows = chunks * stacks_per_chunk * rows_per_stack;
        total_rows += matrix_rows;
        data_rows += chunks * stacks_per_chunk * data_rows_per_stack;

        // Per inference: every physical row converts once per input bit.
        let conversions = matrix_rows as u64 * input_bits;
        adc_conversions += conversions;
        ecu_decodes += chunks as u64 * stacks_per_chunk as u64 * decodes_per_stack;

        energy_pj += conversions as f64 * hierarchy.adc_energy_pj;
        energy_pj += matrix_rows as f64
            * cols_per_chunk as f64
            * input_bits as f64
            * 0.5 // average input-bit density
            * hierarchy.cell_energy_pj;

        // Layers execute sequentially; within a layer the hierarchy
        // pipelines rows, so a layer costs one bit-serial pass.
        cycles += input_bits;
    }
    energy_pj += ecu_decodes as f64 * hierarchy.ecu_energy_pj;

    let arrays = total_rows.div_ceil(hierarchy.array_rows);
    let imas = arrays.div_ceil(hierarchy.arrays_per_ima);
    let tiles = imas.div_ceil(hierarchy.imas_per_tile);

    ResourcePlan {
        data_rows,
        check_rows: total_rows - data_rows,
        arrays,
        imas,
        tiles,
        storage_overhead: (total_rows - data_rows) as f64 / total_rows.max(1) as f64,
        adc_conversions,
        ecu_decodes,
        energy_nj: energy_pj / 1000.0,
        cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::{models, QuantizedNetwork};
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn qnet() -> QuantizedNetwork {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        QuantizedNetwork::from_network(&models::mlp2(&mut rng))
    }

    #[test]
    fn unprotected_has_no_check_rows() {
        let plan = plan_network(
            &qnet(),
            &AccelConfig::new(ProtectionScheme::None),
            &HierarchyConfig::default(),
        );
        assert_eq!(plan.check_rows, 0);
        assert_eq!(plan.storage_overhead, 0.0);
        assert_eq!(plan.ecu_decodes, 0);
        assert!(plan.arrays > 0 && plan.imas > 0 && plan.tiles > 0);
    }

    #[test]
    fn mlp2_row_accounting() {
        // MLP2: 784×800 + 800×10 at 2 bits/cell, unprotected:
        // 8 rows/word; layer 1: 7 chunks × 800 stacks × 8 rows.
        let plan = plan_network(
            &qnet(),
            &AccelConfig::new(ProtectionScheme::None),
            &HierarchyConfig::default(),
        );
        let expected_l1 = 7 * 800 * 8;
        let expected_l2 = 7 * 10 * 8;
        assert_eq!(plan.data_rows, expected_l1 + expected_l2);
    }

    #[test]
    fn data_aware_overhead_matches_check_bits() {
        // ABN-9 over 128-bit groups: 9 / (128 + 9) ≈ 6.6 % of rows at
        // 1 bit/cell (exact because every bit is one row).
        let config = AccelConfig::new(ProtectionScheme::data_aware(9)).with_cell_bits(1);
        let plan = plan_network(&qnet(), &config, &HierarchyConfig::default());
        assert!(
            (plan.storage_overhead - 9.0 / 137.0).abs() < 0.01,
            "overhead {}",
            plan.storage_overhead
        );
    }

    #[test]
    fn static16_costs_more_storage_than_data_aware() {
        let s16 = plan_network(
            &qnet(),
            &AccelConfig::new(ProtectionScheme::Static16),
            &HierarchyConfig::default(),
        );
        let abn = plan_network(
            &qnet(),
            &AccelConfig::new(ProtectionScheme::data_aware(9)),
            &HierarchyConfig::default(),
        );
        assert!(s16.storage_overhead > abn.storage_overhead);
        assert!(s16.check_rows > abn.check_rows);
    }

    #[test]
    fn energy_grows_with_protection() {
        let none = plan_network(
            &qnet(),
            &AccelConfig::new(ProtectionScheme::None),
            &HierarchyConfig::default(),
        );
        let abn = plan_network(
            &qnet(),
            &AccelConfig::new(ProtectionScheme::data_aware(9)),
            &HierarchyConfig::default(),
        );
        assert!(abn.energy_nj > none.energy_nj);
        // But the overhead is moderate (the paper's ~6 % ballpark at the
        // storage level; ADC dominance keeps the total modest).
        assert!(abn.energy_nj < none.energy_nj * 1.25);
    }

    #[test]
    fn fewer_bits_per_cell_needs_more_arrays() {
        let at1 = plan_network(
            &qnet(),
            &AccelConfig::new(ProtectionScheme::data_aware(9)).with_cell_bits(1),
            &HierarchyConfig::default(),
        );
        let at4 = plan_network(
            &qnet(),
            &AccelConfig::new(ProtectionScheme::data_aware(9)).with_cell_bits(4),
            &HierarchyConfig::default(),
        );
        assert!(at1.arrays > 3 * at4.arrays);
        // The paper's §VIII-A example: 4-bit coded groups use 35 slices
        // vs 64 unprotected 2-bit slices per 8 operands.
        let unprotected_2b = plan_network(
            &qnet(),
            &AccelConfig::new(ProtectionScheme::None).with_cell_bits(2),
            &HierarchyConfig::default(),
        );
        let coded_4b = plan_network(
            &qnet(),
            &AccelConfig::new(ProtectionScheme::data_aware(9)).with_cell_bits(4),
            &HierarchyConfig::default(),
        );
        assert!(coded_4b.data_rows + coded_4b.check_rows
            < unprotected_2b.data_rows + unprotected_2b.check_rows);
    }

    #[test]
    fn cycles_count_layers() {
        let plan = plan_network(
            &qnet(),
            &AccelConfig::new(ProtectionScheme::None),
            &HierarchyConfig::default(),
        );
        // Two MVM layers × 16 input bits.
        assert_eq!(plan.cycles, 32);
    }
}
