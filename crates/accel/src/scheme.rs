//! Protection schemes and accelerator configuration.

use ancode::{AbnCode, AnCode, CorrectionPolicy, CorrectionTable, ErrorListConfig, GroupLayout};
use xbar::DeviceParams;

/// The error-protection configurations evaluated in Figures 10–12.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProtectionScheme {
    /// Unprotected 16-bit weights — the `NoECC` baseline.
    None,
    /// The naïve per-operand static code: each 16-bit weight encoded
    /// with the minimal single-error `A` (47) and a `B = 3` check term.
    /// Costs 6 check bits per operand (48 per 8-operand group).
    Static16,
    /// The naïve multi-operand static code: one minimal single-error
    /// code over the whole 128-bit group with `B = 3`, no data
    /// awareness.
    Static128,
    /// Data-aware ABN code over 128-bit groups (`ABN-X` in the paper,
    /// where `X` is the total check-bit budget, 7–10).
    DataAware {
        /// Total ECC bits available to `A·B`.
        check_bits: u32,
        /// Restrict the `A` search to the five hardware divider
        /// constants (the paper's §VI optimization) instead of all odd
        /// candidates.
        hardware_candidates: bool,
    },
}

impl ProtectionScheme {
    /// The detection multiplier used by every coded scheme.
    pub const B: u64 = 3;

    /// Convenience constructor for `ABN-X` with the hardware candidate
    /// set (the configuration the paper evaluates).
    pub fn data_aware(check_bits: u32) -> ProtectionScheme {
        ProtectionScheme::DataAware {
            check_bits,
            hardware_candidates: true,
        }
    }

    /// Whether the scheme encodes whole operand groups (vs per-operand
    /// or no coding).
    pub fn is_grouped(&self) -> bool {
        matches!(
            self,
            ProtectionScheme::Static128 | ProtectionScheme::DataAware { .. }
        )
    }

    /// Whether any arithmetic code is applied.
    pub fn is_coded(&self) -> bool {
        !matches!(self, ProtectionScheme::None)
    }

    /// Short display name matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            ProtectionScheme::None => "NoECC".into(),
            ProtectionScheme::Static16 => "Static16".into(),
            ProtectionScheme::Static128 => "Static128".into(),
            ProtectionScheme::DataAware { check_bits, .. } => format!("ABN-{check_bits}"),
        }
    }

    /// Parses a figure-legend label back into a scheme — the inverse of
    /// [`label`](ProtectionScheme::label), used by the CLI and by
    /// campaign checkpoints (whose JSON stores the label string).
    pub fn from_label(label: &str) -> Option<ProtectionScheme> {
        match label {
            "NoECC" => Some(ProtectionScheme::None),
            "Static16" => Some(ProtectionScheme::Static16),
            "Static128" => Some(ProtectionScheme::Static128),
            _ => {
                let bits: u32 = label.strip_prefix("ABN-")?.parse().ok()?;
                Some(ProtectionScheme::data_aware(bits))
            }
        }
    }

    /// Check bits added per 128-bit (8×16-bit) group of weights.
    pub fn check_bits_per_group(&self) -> u32 {
        match self {
            ProtectionScheme::None => 0,
            // 6 bits of A per operand (the B term rides along in the
            // paper's accounting).
            ProtectionScheme::Static16 => 48,
            ProtectionScheme::Static128 => {
                let a = ancode::search::min_a_for_data_bits(128);
                crate::scheme::total_check_bits(a, ProtectionScheme::B)
            }
            ProtectionScheme::DataAware { check_bits, .. } => *check_bits,
        }
    }
}

/// Check bits consumed by the multiplier `a·b`.
pub(crate) fn total_check_bits(a: u64, b: u64) -> u32 {
    let m = a * b;
    64 - (m - 1).leading_zeros()
}

/// Builds the static per-operand code used by `Static16`: minimal
/// single-error `A` for 16-bit operands with `B = 3`, table covering
/// per-row errors for the given cell width.
pub(crate) fn static16_code(cell_bits: u32) -> AbnCode {
    let a = ancode::search::min_a_for_data_bits(16); // 47
    let an = AnCode::new(a).expect("minimal A is valid");
    let width = 16 + total_check_bits(a, ProtectionScheme::B);
    let table = CorrectionTable::for_cell_rows(&an, width, cell_bits);
    AbnCode::from_table(a, ProtectionScheme::B, table, 16).expect("static code is valid")
}

/// Builds the static multi-operand code used by `Static128`.
pub(crate) fn static128_code(cell_bits: u32) -> AbnCode {
    let a = ancode::search::min_a_for_data_bits(128);
    let an = AnCode::new(a).expect("minimal A is valid");
    let width = 128 + total_check_bits(a, ProtectionScheme::B);
    let table = CorrectionTable::for_cell_rows(&an, width, cell_bits);
    AbnCode::from_table(a, ProtectionScheme::B, table, 128).expect("static code is valid")
}

/// Full accelerator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AccelConfig {
    /// Device and noise parameters (Table I defaults).
    pub device: DeviceParams,
    /// The protection scheme under evaluation.
    pub scheme: ProtectionScheme,
    /// Policy when the `B` check flags a miscorrection.
    pub policy: CorrectionPolicy,
    /// Retries of a group read on an uncorrectable error (0 in the
    /// paper's default pipeline; >0 models the §VI-A retry option).
    pub max_retries: u32,
    /// Operand group geometry (8 × 16-bit in the paper).
    pub group: GroupLayout,
    /// Maximum crossbar columns per chunk (128 in the paper).
    pub max_columns: usize,
    /// Bits of each input applied bit-serially per cycle (16-bit
    /// activations).
    pub input_bits: u32,
    /// Error-list enumeration bounds for data-aware table construction.
    pub error_list: ErrorListConfig,
    /// Remap logical rows away from faulty cells before programming
    /// (the Xia-et-al. composition of [`crate::remap`]).
    pub remap: bool,
    /// Worker-shard fault injection ([`chaos::ShardChaos`]): panics and
    /// stalls at deterministic `(shard, attempt)` points. Always
    /// [`chaos::ShardChaos::Off`] outside chaos runs and tests.
    pub shard_chaos: chaos::ShardChaos,
    /// Per-shard watchdog deadline in nanoseconds (0 disables). A shard
    /// exceeding it aborts at the next sample boundary and is retried
    /// from its fixed seed, so a fired watchdog never changes results —
    /// it only costs one of the bounded retries.
    pub watchdog_ns: u64,
    /// Seed-stable retries allowed per failing shard (panic or watchdog)
    /// before the shard counts as failed. 1 reproduces the classic
    /// single-retry behavior.
    pub shard_retries: u32,
    /// Backoff slept before shard retry `k` (1-based):
    /// `retry_backoff_ms << (k - 1)`, exponent capped at 6. 0 disables.
    pub retry_backoff_ms: u64,
    /// Graceful degradation: up to this many shards may fail all their
    /// retries and be dropped — recorded as explicit
    /// [`ShardGap`](crate::sim::ShardGap)s with rates computed over the
    /// samples actually evaluated — instead of failing the run. 0 (the
    /// default) keeps the strict abort-on-persistent-failure behavior.
    pub max_lost_shards: usize,
    /// Input vectors evaluated per MVM pass. 1 (the default) runs the
    /// original bit-serial kernel unchanged, draw-for-draw. Larger
    /// batches take the amortized `mvm_batch_into` path on
    /// [`CrossbarEngine`](crate::CrossbarEngine): one RTN snapshot and
    /// one set of conductance planes per batch. Like `REPRO_THREADS`,
    /// changing the batch changes the noise draws but not the estimator.
    pub batch: usize,
}

impl AccelConfig {
    /// A configuration with Table I device defaults and the paper's
    /// array geometry.
    pub fn new(scheme: ProtectionScheme) -> AccelConfig {
        AccelConfig {
            device: DeviceParams::default(),
            scheme,
            policy: CorrectionPolicy::Revert,
            max_retries: 0,
            group: GroupLayout::PAPER_128,
            max_columns: 128,
            input_bits: 16,
            error_list: crate::mapping::mapping_error_list_config(),
            remap: false,
            shard_chaos: chaos::ShardChaos::Off,
            watchdog_ns: 0,
            shard_retries: 1,
            retry_backoff_ms: 0,
            max_lost_shards: 0,
            batch: 1,
        }
    }

    /// Checks the configuration for internal consistency, reporting the
    /// first problem found.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`](crate::AccelError) when a
    /// field is out of its physical range: zero cell bits (or more than
    /// the device's level budget supports), a fault rate outside
    /// `[0, 1]`, zero crossbar columns, zero input bits, or a
    /// data-aware check-bit budget outside the paper's 7–10 range the
    /// hardware table sizes were derived for.
    pub fn validate(&self) -> Result<(), crate::AccelError> {
        let invalid = |detail: String| Err(crate::AccelError::InvalidConfig(detail));
        if self.device.bits_per_cell == 0 || self.device.bits_per_cell > 5 {
            return invalid(format!(
                "bits_per_cell must be 1-5, got {}",
                self.device.bits_per_cell
            ));
        }
        if !(0.0..=1.0).contains(&self.device.fault_rate) {
            return invalid(format!(
                "fault_rate must lie in [0, 1], got {}",
                self.device.fault_rate
            ));
        }
        if self.max_columns == 0 {
            return invalid("max_columns must be nonzero".into());
        }
        if self.input_bits == 0 || self.input_bits > 16 {
            return invalid(format!("input_bits must be 1-16, got {}", self.input_bits));
        }
        if self.batch == 0 {
            return invalid("batch must be at least 1".into());
        }
        if let ProtectionScheme::DataAware { check_bits, .. } = self.scheme {
            if !(7..=10).contains(&check_bits) {
                return invalid(format!(
                    "data-aware check_bits must be 7-10, got {check_bits}"
                ));
            }
        }
        Ok(())
    }

    /// Sets the bits per memristor cell (1–5 in the evaluation).
    #[must_use]
    pub fn with_cell_bits(mut self, bits: u32) -> AccelConfig {
        self.device.bits_per_cell = bits;
        self
    }

    /// Sets the stuck-at fault rate (0 disables cell faults).
    #[must_use]
    pub fn with_fault_rate(mut self, rate: f64) -> AccelConfig {
        self.device.fault_rate = rate;
        self
    }

    /// Sets the number of input vectors evaluated per MVM pass.
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> AccelConfig {
        self.batch = batch;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(ProtectionScheme::None.label(), "NoECC");
        assert_eq!(ProtectionScheme::Static16.label(), "Static16");
        assert_eq!(ProtectionScheme::Static128.label(), "Static128");
        assert_eq!(ProtectionScheme::data_aware(9).label(), "ABN-9");
    }

    #[test]
    fn grouping_classification() {
        assert!(!ProtectionScheme::None.is_grouped());
        assert!(!ProtectionScheme::Static16.is_grouped());
        assert!(ProtectionScheme::Static128.is_grouped());
        assert!(ProtectionScheme::data_aware(8).is_grouped());
        assert!(!ProtectionScheme::None.is_coded());
        assert!(ProtectionScheme::Static16.is_coded());
    }

    #[test]
    fn static16_uses_minimal_a_47() {
        let code = static16_code(2);
        assert_eq!(code.a(), 47);
        assert_eq!(code.b(), 3);
        // Every 2-bit row of the 16-bit operand is covered at ±1.
        assert!(code.table().len() >= 16);
    }

    #[test]
    fn static128_a_covers_group() {
        let code = static128_code(2);
        assert!(code.a() >= 277, "A = {}", code.a());
        assert_eq!(code.data_bits(), 128);
    }

    #[test]
    fn check_bit_accounting() {
        assert_eq!(ProtectionScheme::None.check_bits_per_group(), 0);
        assert_eq!(ProtectionScheme::Static16.check_bits_per_group(), 48);
        assert!(ProtectionScheme::Static128.check_bits_per_group() >= 10);
        assert_eq!(ProtectionScheme::data_aware(7).check_bits_per_group(), 7);
    }

    #[test]
    fn from_label_round_trips() {
        for scheme in [
            ProtectionScheme::None,
            ProtectionScheme::Static16,
            ProtectionScheme::Static128,
            ProtectionScheme::data_aware(7),
            ProtectionScheme::data_aware(10),
        ] {
            assert_eq!(ProtectionScheme::from_label(&scheme.label()), Some(scheme));
        }
        assert_eq!(ProtectionScheme::from_label("ABN-x"), None);
        assert_eq!(ProtectionScheme::from_label("bogus"), None);
    }

    #[test]
    fn validate_accepts_defaults_and_rejects_bad_fields() {
        assert!(AccelConfig::new(ProtectionScheme::data_aware(9))
            .validate()
            .is_ok());
        assert!(AccelConfig::new(ProtectionScheme::None)
            .with_cell_bits(0)
            .validate()
            .is_err());
        assert!(AccelConfig::new(ProtectionScheme::None)
            .with_fault_rate(1.5)
            .validate()
            .is_err());
        assert!(AccelConfig::new(ProtectionScheme::data_aware(11))
            .validate()
            .is_err());
        let mut c = AccelConfig::new(ProtectionScheme::None);
        c.max_columns = 0;
        assert!(c.validate().is_err());
        assert!(AccelConfig::new(ProtectionScheme::None)
            .with_batch(0)
            .validate()
            .is_err());
    }

    #[test]
    fn chaos_and_durability_default_off() {
        let c = AccelConfig::new(ProtectionScheme::None);
        assert_eq!(c.shard_chaos, chaos::ShardChaos::Off);
        assert_eq!(c.watchdog_ns, 0);
        assert_eq!(c.shard_retries, 1);
        assert_eq!(c.retry_backoff_ms, 0);
        assert_eq!(c.max_lost_shards, 0);
        assert_eq!(c.batch, 1);
    }

    #[test]
    fn config_builders() {
        let c = AccelConfig::new(ProtectionScheme::data_aware(9))
            .with_cell_bits(4)
            .with_fault_rate(0.0);
        assert_eq!(c.device.bits_per_cell, 4);
        assert_eq!(c.device.fault_rate, 0.0);
        assert_eq!(c.max_columns, 128);
        assert_eq!(c.input_bits, 16);
    }
}
