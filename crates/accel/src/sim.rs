//! Monte-Carlo accuracy evaluation (§VII of the paper).
//!
//! The paper evaluates each configuration by running inference over test
//! examples on the noisy accelerator and reporting the misclassification
//! rate. This module does the same, fanning the test set out across
//! threads; each thread programs its own accelerator instance (an
//! independently fabricated chip) from a deterministic seed.
//!
//! # Crash safety
//!
//! Workers run under [`std::panic::catch_unwind`]. A failing shard is
//! retried from its original seed — a shard is a pure function of
//! `(seed, sample range, config)`, so a retry reproduces the original
//! draw sequence bit-for-bit and a successful retry yields results
//! identical to a run that never failed. The failure envelope is
//! configurable on [`AccelConfig`]:
//!
//! - `shard_retries` bounds the seed-stable retries per shard (default
//!   1, the classic single retry), with optional exponential backoff
//!   (`retry_backoff_ms`) between attempts;
//! - `watchdog_ns` sets a deadline on each shard's evaluation loop
//!   (armed after crossbar programming, where the cooperative checks
//!   live): a shard that exceeds it aborts at the next sample boundary
//!   and is retried like a panic — a fired watchdog only costs a
//!   retry, never changes results;
//! - `max_lost_shards` opts into graceful degradation: shards that
//!   exhaust their retries are dropped and recorded as [`ShardGap`]s
//!   (rates then cover only the evaluated samples) instead of failing
//!   the run with [`AccelError::WorkerPanic`];
//! - `shard_chaos` injects deterministic panics/stalls mid-shard
//!   ([`chaos::ShardChaos`]) so all of the above is testable.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use serde::{Deserialize, Serialize};

use neural::{QuantizedNetwork, Tensor};

use crate::{AccelConfig, AccelError, CrossbarProvider, DecodeStats};

/// A shard dropped under graceful degradation: its sample range was
/// never evaluated and is recorded explicitly rather than silently
/// folded into the rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardGap {
    /// Index of the dropped shard (worker thread).
    pub shard: u64,
    /// First sample index of the unevaluated range.
    pub lo: u64,
    /// One past the last sample index of the unevaluated range.
    pub hi: u64,
}

/// The outcome of one accuracy evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Top-1 misclassification rate (over the evaluated samples).
    pub misclassification: f64,
    /// Top-5 misclassification rate (1.0-capped; equals top-1 for tasks
    /// with ≤ 5 classes).
    pub top5_misclassification: f64,
    /// Fraction of predictions that differ from the *exact fixed-point*
    /// result — a low-variance measure of accelerator-induced damage
    /// (zero when the analog path is error-free, regardless of how hard
    /// the task is).
    pub flip_rate: f64,
    /// Number of requested examples (evaluated = `samples -
    /// lost_samples`).
    pub samples: usize,
    /// Samples dropped with lost shards under graceful degradation
    /// (`max_lost_shards`); 0 unless degradation was opted into.
    pub lost_samples: usize,
    /// The dropped shards, as explicit unevaluated sample ranges.
    /// Empty in a fault-free or strict run.
    pub gaps: Vec<ShardGap>,
    /// Aggregate ECU statistics over the run.
    pub stats: DecodeStats,
}

/// Per-shard tallies: top-1 errors, top-5 errors, prediction flips, and
/// the shard's decode statistics.
type ShardTallies = (usize, usize, usize, DecodeStats);

/// Runs one worker shard: programs a fresh accelerator from
/// `shard_seed` and classifies samples `lo..hi`.
///
/// A shard is a pure function of its arguments — no shared mutable
/// state, every RNG seeded from `shard_seed` — which is what makes the
/// deterministic retry in [`evaluate`] sound.
#[allow(clippy::too_many_arguments)] // private helper: the shard closure's captures, made explicit
fn run_shard(
    qnet: &QuantizedNetwork,
    images_data: &[f32],
    labels: &[usize],
    per_image: usize,
    config: &AccelConfig,
    shard_seed: u64,
    lo: usize,
    hi: usize,
    shard: usize,
    attempt: u32,
) -> ShardTallies {
    let _span = obs::span!("shard");
    let provider = CrossbarProvider::new(config.clone(), shard_seed);
    let mut engines = qnet.build_engines(&provider);
    let mut exact_engines = qnet.build_engines(&neural::ExactProvider);
    // Watchdog epoch: armed once per attempt, *after* crossbar
    // programming, because elapsed time is only checked cooperatively
    // at the sample boundaries below — a deadline covering the
    // (uncheckable, debug-build-expensive) programming phase could
    // trip spuriously without ever detecting a hang there. The clock
    // is read only when a deadline is armed, and its reading flows
    // only into the abort decision — never into seeded computation —
    // so results are bit-identical whether or not the watchdog trips.
    let watchdog_start_ns = if config.watchdog_ns != 0 {
        chaos::clock::now_ns()
    } else {
        0
    };
    // Per-worker reusable buffers: after the first example
    // grows them to the network's high-water mark, the loop
    // body performs no heap allocation.
    let mut scratch = neural::RunScratch::new();
    let mut exact_scratch = neural::RunScratch::new();
    let mut top = Vec::with_capacity(TOP_K);
    let mut top1_errors = 0usize;
    let mut top5_errors = 0usize;
    let mut flips = 0usize;
    let batch = config.batch.max(1);
    // The cooperative control points — watchdog deadline and chaos
    // injection — fire at submission boundaries: per image when
    // `batch == 1`, per window otherwise. Chaos anchors on the legacy
    // per-image midpoint so the same `ShardChaos` config faults the
    // same logical position at every batch size.
    let chaos_at = lo + (hi - lo) / 2;
    let mut wlo = lo;
    while wlo < hi {
        if config.watchdog_ns != 0
            && chaos::clock::now_ns().saturating_sub(watchdog_start_ns) > config.watchdog_ns
        {
            // lint: allow(panic_in_harness, the watchdog's abort channel: caught by evaluate's catch_unwind and converted into a seed-stable retry)
            panic!(
                "watchdog: shard {shard} exceeded its {} ms deadline (attempt {attempt})",
                config.watchdog_ns / 1_000_000
            );
        }
        let wend = (wlo + batch).min(hi);
        // Chaos injection, mid-shard so a retry must also discard the
        // partial tallies accumulated before the fault.
        if (wlo..wend).contains(&chaos_at) {
            match config.shard_chaos.decide(shard as u64, attempt) {
                Some(chaos::ExecFault::Panic) => {
                    // lint: allow(panic_in_harness, deterministic fault injection: caught by evaluate's catch_unwind, which is the path under test)
                    panic!("chaos: injected worker panic (shard {shard}, attempt {attempt})")
                }
                Some(chaos::ExecFault::Stall { ms }) => {
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
                None => {}
            }
        }
        let window = wend - wlo;
        let logits_all = if window == 1 {
            // Batch-of-1 (including a ragged final window of one) takes
            // the original per-image path, draw-for-draw.
            qnet.run_with(
                &images_data[wlo * per_image..wend * per_image],
                &mut engines,
                &mut scratch,
            )
        } else {
            qnet.run_batch_with(
                &images_data[wlo * per_image..wend * per_image],
                window,
                &mut engines,
                &mut scratch,
            )
        };
        let out_dim = logits_all.len() / window;
        for v in 0..window {
            let i = wlo + v;
            let logits = &logits_all[v * out_dim..(v + 1) * out_dim];
            top_k_into(logits, TOP_K.min(out_dim), &mut top);
            if top[0] != labels[i] {
                top1_errors += 1;
            }
            if !top.contains(&labels[i]) {
                top5_errors += 1;
            }
            let image = &images_data[i * per_image..(i + 1) * per_image];
            if qnet.predict_with(image, &mut exact_engines, &mut exact_scratch) != top[0] {
                flips += 1;
            }
        }
        wlo = wend;
    }
    obs::counter!(prediction_flips).add(flips as u64);
    (top1_errors, top5_errors, flips, provider.stats())
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Evaluates a quantized network on the noisy accelerator over a test
/// set.
///
/// `images` is the `[n, ...]` test tensor. With the default
/// `config.batch == 1` inference runs one image at a time on the
/// original bit-serial kernel; larger batches submit windows of
/// `config.batch` images per MVM pass (the final window is ragged when
/// the shard size is not a multiple, and a batch larger than the shard
/// simply clamps to it), amortizing the per-pass RTN snapshot and row
/// read-outs. Accuracy tallies stay per-example either way. `threads`
/// bounds the worker count; each worker programs its own engines with a
/// seed derived from `seed`.
///
/// Worker panics (and watchdog timeouts) are caught; the failing shard
/// is re-run from its original seed (bit-identical to a run that never
/// panicked, since a shard is a pure function of seed + range +
/// config) up to `config.shard_retries` times before the error is
/// surfaced — or, with `config.max_lost_shards > 0`, dropped and
/// recorded as a [`ShardGap`].
///
/// # Examples
///
/// ```
/// use accel::{sim::evaluate, AccelConfig, ProtectionScheme};
/// use neural::{Dense, Network, QuantizedNetwork, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let net = Network::new(vec![Box::new(Dense::new(8, 4, &mut rng))]);
/// let qnet = QuantizedNetwork::from_network(&net);
/// let images = Tensor::from_vec(vec![3, 8], vec![0.25; 24]);
/// let labels = vec![0usize, 1, 2];
///
/// let config = AccelConfig::new(ProtectionScheme::data_aware(9));
/// let result = evaluate(&qnet, &images, &labels, &config, 42, 2)?;
/// assert_eq!(result.samples, 3);
/// assert!(result.misclassification <= 1.0);
/// # Ok::<(), accel::AccelError>(())
/// ```
///
/// Batched submission changes throughput, not the estimator — with
/// noise disabled the results are identical at every batch size:
///
/// ```
/// # use accel::{sim::evaluate, AccelConfig, ProtectionScheme};
/// # use neural::{Dense, Network, QuantizedNetwork, Tensor};
/// # use rand::SeedableRng;
/// # let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// # let net = Network::new(vec![Box::new(Dense::new(8, 4, &mut rng))]);
/// # let qnet = QuantizedNetwork::from_network(&net);
/// # let images = Tensor::from_vec(vec![3, 8], vec![0.25; 24]);
/// # let labels = vec![0usize, 1, 2];
/// let mut config = AccelConfig::new(ProtectionScheme::None);
/// config.device.rtn_state_probability = 0.0;
/// config.device.programming_tolerance = 0.0;
/// config.device.fault_rate = 0.0;
/// config.device.bandwidth = 0.0;
/// let one = evaluate(&qnet, &images, &labels, &config, 42, 1)?;
/// let batched = evaluate(&qnet, &images, &labels, &config.with_batch(2), 42, 1)?;
/// assert_eq!(one.misclassification, batched.misclassification);
/// # Ok::<(), accel::AccelError>(())
/// ```
///
/// # Observability
///
/// With the `obs` feature, each worker merges its thread-local metric
/// shard as it finishes (`obs::flush_thread`), so by the time
/// `evaluate` returns the global counter totals equal the returned
/// [`SimResult::stats`] exactly — independent of thread count and join
/// order (DESIGN.md §8):
///
/// ```
/// # use accel::{sim::evaluate, AccelConfig, ProtectionScheme};
/// # use neural::{Dense, Network, QuantizedNetwork, Tensor};
/// # use rand::SeedableRng;
/// # let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// # let net = Network::new(vec![Box::new(Dense::new(8, 4, &mut rng))]);
/// # let qnet = QuantizedNetwork::from_network(&net);
/// # let images = Tensor::from_vec(vec![3, 8], vec![0.25; 24]);
/// # let labels = vec![0usize, 1, 2];
/// obs::reset();
/// let config = AccelConfig::new(ProtectionScheme::None);
/// let result = evaluate(&qnet, &images, &labels, &config, 42, 2)?;
/// if obs::enabled() {
///     assert_eq!(obs::counter_value("ecc_uncoded"), result.stats.uncoded);
/// }
/// # Ok::<(), accel::AccelError>(())
/// ```
///
/// # Errors
///
/// Returns [`AccelError::EmptyTestSet`] for zero labels,
/// [`AccelError::ShapeMismatch`] when `images` does not hold one sample
/// per label, [`AccelError::InvalidConfig`] for an inconsistent
/// `config`, [`AccelError::WorkerPanic`] when a shard fails every
/// allowed retry with no degradation budget left, and
/// [`AccelError::AllShardsLost`] when degradation dropped every shard.
pub fn evaluate(
    qnet: &QuantizedNetwork,
    images: &Tensor,
    labels: &[usize],
    config: &AccelConfig,
    seed: u64,
    threads: usize,
) -> Result<SimResult, AccelError> {
    let n = labels.len();
    if n == 0 {
        return Err(AccelError::EmptyTestSet);
    }
    let samples_in_tensor = images.shape().first().copied().unwrap_or(0);
    if samples_in_tensor != n {
        return Err(AccelError::ShapeMismatch {
            detail: format!("{n} labels but the image tensor holds {samples_in_tensor} samples"),
        });
    }
    config.validate()?;
    let per_image = images.len() / n;
    let threads = threads.clamp(1, n);

    let chunk = n.div_ceil(threads);
    let mut results: Vec<Result<ShardOutcome, AccelError>> = Vec::new();
    // Shared graceful-degradation budget: shards claim a slot with a
    // fetch_add so at most `max_lost_shards` are ever dropped, however
    // the thread interleaving falls out. Which shards are *candidates*
    // for dropping is deterministic (shards are pure functions of their
    // seed), so with a budget at least as large as the failing-shard
    // count the recorded gaps are deterministic too.
    let lost_budget = AtomicUsize::new(0);

    let scope_result = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let images_data = images.data();
            let lost_budget = &lost_budget;
            let handle = scope.spawn(move |_| {
                let shard_seed = seed.wrapping_add(t as u64);
                let max_attempts = config.shard_retries.saturating_add(1);
                let mut attempt = 0u32;
                loop {
                    let start_ns = obs::now_ns();
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        run_shard(
                            qnet,
                            images_data,
                            labels,
                            per_image,
                            config,
                            shard_seed,
                            lo,
                            hi,
                            t,
                            attempt,
                        )
                    }));
                    match outcome {
                        Ok(tallies) => {
                            obs::events::emit(
                                obs::Event::new("shard_done")
                                    .u64("shard", t as u64)
                                    .u64("lo", lo as u64)
                                    .u64("hi", hi as u64)
                                    .u64("duration_ns", obs::now_ns().saturating_sub(start_ns)),
                            );
                            // Join point: merge this worker's metric
                            // shard before the thread ends, so totals
                            // are complete when `evaluate` returns.
                            obs::flush_thread();
                            return Ok(ShardOutcome::Done(tallies));
                        }
                        Err(payload) => {
                            // Discard the partial metric shard first:
                            // counters must match what a successful
                            // attempt actually counted, never a mix of
                            // abandoned attempts.
                            obs::discard_thread();
                            let message = panic_message(payload.as_ref());
                            let reason = if message.starts_with("watchdog:") {
                                "watchdog"
                            } else {
                                "panic"
                            };
                            if attempt + 1 < max_attempts {
                                // Deterministic retry: the shard
                                // restarts from `shard_seed`, so a
                                // success here is bit-identical to a
                                // first-try success. Flush immediately
                                // so the retry bookkeeping survives the
                                // next attempt's discard.
                                obs::counter!(shard_retries).incr();
                                attempt += 1;
                                // The shard seed spans the full u64
                                // range (epoch seeds are wrapping
                                // golden-ratio offsets), wider than
                                // JSON's exact-integer window — emit
                                // it as a decimal string.
                                obs::events::emit(
                                    obs::Event::new("shard_retry")
                                        .u64("shard", t as u64)
                                        .str("seed", &shard_seed.to_string())
                                        .u64("attempt", u64::from(attempt))
                                        .str("reason", reason),
                                );
                                obs::flush_thread();
                                if config.retry_backoff_ms != 0 {
                                    let shift = (attempt - 1).min(6);
                                    std::thread::sleep(std::time::Duration::from_millis(
                                        config.retry_backoff_ms << shift,
                                    ));
                                }
                            } else if lost_budget.fetch_add(1, Ordering::SeqCst)
                                < config.max_lost_shards
                            {
                                // Graceful degradation: drop the shard,
                                // record the gap, keep the run alive.
                                obs::counter!(shards_lost).incr();
                                obs::events::emit(
                                    obs::Event::new("shard_lost")
                                        .u64("shard", t as u64)
                                        .u64("lo", lo as u64)
                                        .u64("hi", hi as u64)
                                        .u64("attempts", u64::from(max_attempts))
                                        .str("reason", reason),
                                );
                                obs::flush_thread();
                                return Ok(ShardOutcome::Lost {
                                    shard: t as u64,
                                    lo: lo as u64,
                                    hi: hi as u64,
                                });
                            } else {
                                return Err(AccelError::WorkerPanic {
                                    shard: t,
                                    seed: shard_seed,
                                    message,
                                });
                            }
                        }
                    }
                }
            });
            handles.push(handle);
        }
        for (t, handle) in handles.into_iter().enumerate() {
            results.push(handle.join().unwrap_or_else(|payload| {
                // Unreachable in practice (the closure catches its own
                // panics), but a join failure must not abort the run.
                Err(AccelError::WorkerPanic {
                    shard: t,
                    seed: seed.wrapping_add(t as u64),
                    message: panic_message(payload.as_ref()),
                })
            }));
        }
    });
    if let Err(payload) = scope_result {
        return Err(AccelError::WorkerPanic {
            shard: threads,
            seed,
            message: format!("thread scope teardown: {}", panic_message(payload.as_ref())),
        });
    }

    let mut stats = DecodeStats::default();
    let mut top1 = 0usize;
    let mut top5 = 0usize;
    let mut flips = 0usize;
    let mut lost = 0usize;
    let mut gaps = Vec::new();
    for shard in results {
        match shard? {
            ShardOutcome::Done((t1, t5, f, s)) => {
                top1 += t1;
                top5 += t5;
                flips += f;
                stats = merge(stats, s);
            }
            ShardOutcome::Lost { shard, lo, hi } => {
                lost += (hi - lo) as usize;
                gaps.push(ShardGap { shard, lo, hi });
            }
        }
    }
    let evaluated = n - lost;
    if evaluated == 0 {
        return Err(AccelError::AllShardsLost { lost });
    }
    Ok(SimResult {
        misclassification: top1 as f64 / evaluated as f64,
        top5_misclassification: top5 as f64 / evaluated as f64,
        flip_rate: flips as f64 / evaluated as f64,
        samples: n,
        lost_samples: lost,
        gaps,
        stats,
    })
}

/// What one worker shard ultimately produced: its tallies, or — under
/// graceful degradation — an explicit gap.
enum ShardOutcome {
    Done(ShardTallies),
    Lost { shard: u64, lo: u64, hi: u64 },
}

/// Evaluates the float software baseline on the same test set (the
/// "Software" bars of Figures 10–11).
pub fn software_baseline(
    network: &mut neural::Network,
    images: &Tensor,
    labels: &[usize],
) -> f64 {
    1.0 - network.evaluate(images, labels)
}

/// Classes counted for the top-k misclassification rate.
const TOP_K: usize = 5;

/// Writes the indices of the `k` largest logits into `top`, in
/// descending order, reusing the buffer.
///
/// Matches `Tensor::top_k` exactly, including tie-breaking: that method
/// stable-sorts descending by value, so equal logits keep ascending
/// index order. Here the ascending scan inserts a tying index after the
/// entries already present (which all have smaller indices), preserving
/// the same order without sorting the full array or allocating.
fn top_k_into(logits: &[f32], k: usize, top: &mut Vec<usize>) {
    top.clear();
    for i in 0..logits.len() {
        let mut pos = top.len();
        while pos > 0 && logits[top[pos - 1]] < logits[i] {
            pos -= 1;
        }
        if pos < k {
            if top.len() == k {
                top.pop();
            }
            top.insert(pos, i);
        }
    }
}

fn merge(mut a: DecodeStats, b: DecodeStats) -> DecodeStats {
    a.clean += b.clean;
    a.corrected += b.corrected;
    a.uncorrectable += b.uncorrectable;
    a.miscorrected += b.miscorrected;
    a.silent_a += b.silent_a;
    a.retries += b.retries;
    a.uncoded += b.uncoded;
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtectionScheme;
    use neural::{models, QuantizedNetwork};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A tiny trained network and test set, shared by the tests.
    fn tiny_problem() -> (QuantizedNetwork, Tensor, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut net = models::mlp2(&mut rng);
        let mut train = neural::data::digits(400, 1);
        neural::data::shuffle(&mut train, 2);
        for _ in 0..5 {
            net.train_epoch(&train.images, &train.labels, 32, 0.1);
        }
        let test = neural::data::digits(20, 99);
        let qnet = QuantizedNetwork::from_network(&net);
        (qnet, test.images, test.labels)
    }

    #[test]
    fn noiseless_accelerator_matches_software() {
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::None);
        config.device.rtn_state_probability = 0.0;
        config.device.programming_tolerance = 0.0;
        config.device.fault_rate = 0.0;
        config.device.bandwidth = 0.0;
        let result = evaluate(&qnet, &images, &labels, &config, 3, 2).expect("evaluate");
        // Noise-free fixed point: identical predictions to the exact
        // fixed-point engine.
        let mut exact_engines = qnet.build_engines(&neural::ExactProvider);
        let mut exact_errors = 0;
        let per = images.len() / labels.len();
        for (i, &label) in labels.iter().enumerate() {
            let p = qnet.predict(&images.data()[i * per..(i + 1) * per], &mut exact_engines);
            if p != label {
                exact_errors += 1;
            }
        }
        assert_eq!(
            result.misclassification,
            exact_errors as f64 / labels.len() as f64
        );
        assert!(result.top5_misclassification <= result.misclassification);
        assert_eq!(result.flip_rate, 0.0);
        assert_eq!(result.samples, 20);
    }

    #[test]
    fn multithreaded_matches_single_thread_counts() {
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::None);
        config.device.rtn_state_probability = 0.0;
        config.device.programming_tolerance = 0.0;
        config.device.fault_rate = 0.0;
        config.device.bandwidth = 0.0;
        // Noise-free: results are deterministic, so thread count must not
        // change them.
        let single = evaluate(&qnet, &images, &labels, &config, 3, 1).expect("evaluate");
        for threads in [2, 4, 7] {
            let multi = evaluate(&qnet, &images, &labels, &config, 3, threads).expect("evaluate");
            assert_eq!(single.misclassification, multi.misclassification, "{threads} threads");
            assert_eq!(
                single.top5_misclassification, multi.top5_misclassification,
                "{threads} threads"
            );
            assert_eq!(single.flip_rate, multi.flip_rate, "{threads} threads");
            assert_eq!(single.samples, multi.samples, "{threads} threads");
            // The per-worker decode counters partition the example set,
            // so their noise-free aggregate is partition-independent too.
            assert_eq!(single.stats, multi.stats, "{threads} threads");
        }
    }

    #[test]
    fn double_run_same_seed_is_bit_identical() {
        // The dynamic counterpart of the `nondeterminism` lint (L3):
        // with realistic noise every RNG draw matters, so two runs from
        // the same seed must produce bit-identical results — including
        // the f64 rates — at every thread count. The per-thread-count
        // runs also keep this robust under `--test-threads` variation:
        // shard results depend only on (seed, range, config), never on
        // scheduling. Static16 exercises the full noisy decode draw
        // order without data-aware A-search programming cost.
        let (qnet, images, labels) = tiny_problem();
        let samples = 4;
        let per = images.len() / labels.len();
        let images = Tensor::from_vec(
            vec![samples, 1, 28, 28],
            images.data()[..samples * per].to_vec(),
        );
        let labels = &labels[..samples];
        let config = AccelConfig::new(ProtectionScheme::Static16).with_fault_rate(0.002);
        for threads in [1, 2] {
            let first = evaluate(&qnet, &images, labels, &config, 9, threads).expect("first");
            let second = evaluate(&qnet, &images, labels, &config, 9, threads).expect("second");
            assert_eq!(first, second, "{threads} threads");
        }
    }

    #[test]
    fn batched_evaluate_matches_per_image_when_noiseless() {
        // 20 examples: batch 7 leaves a ragged final window per shard,
        // batch 64 exceeds the whole shard and clamps to it. Noise off,
        // so every batch size must reproduce the per-image results and
        // decode counters exactly.
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::Static16);
        config.device.rtn_state_probability = 0.0;
        config.device.programming_tolerance = 0.0;
        config.device.fault_rate = 0.0;
        config.device.bandwidth = 0.0;
        let per_image = evaluate(&qnet, &images, &labels, &config, 3, 2).expect("batch 1");
        for batch in [2usize, 7, 64] {
            let batched = evaluate(
                &qnet,
                &images,
                &labels,
                &config.clone().with_batch(batch),
                3,
                2,
            )
            .expect("batched");
            assert_eq!(per_image, batched, "batch {batch}");
        }
    }

    #[test]
    fn batched_shard_panic_is_retried_to_identical_results() {
        // The retry contract holds on the windowed loop too: chaos fires
        // at the legacy per-image midpoint's window, the retry restarts
        // the shard from its seed, and results match the fault-free run.
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::data_aware(9))
            .with_fault_rate(0.002)
            .with_batch(4);
        let clean = evaluate(&qnet, &images, &labels, &config, 11, 2).expect("clean run");
        config.shard_chaos = chaos::ShardChaos::PanicOn { shard: 1, attempts: 1 };
        let retried = evaluate(&qnet, &images, &labels, &config, 11, 2).expect("retried run");
        assert_eq!(clean, retried);
    }

    #[test]
    fn top_k_scan_matches_tensor_top_k() {
        // Including ties, which must resolve to ascending index order.
        let cases: Vec<Vec<f32>> = vec![
            vec![0.1, 0.9, 0.5, 0.9, 0.2, 0.9, 0.05],
            vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
            vec![-3.0, -1.0, -2.0],
            vec![0.25],
            (0..12).map(|i| ((i * 7) % 5) as f32).collect(),
        ];
        let mut top = Vec::new();
        for logits in cases {
            for k in 1..=logits.len().min(6) {
                let expected = Tensor::from_vec(vec![logits.len()], logits.clone()).top_k(k);
                top_k_into(&logits, k, &mut top);
                assert_eq!(top, expected, "logits {logits:?} k {k}");
            }
        }
    }

    #[test]
    fn noisy_runs_produce_decode_stats() {
        let (qnet, images, labels) = tiny_problem();
        let config = AccelConfig::new(ProtectionScheme::data_aware(9)).with_fault_rate(0.0);
        // Two examples suffice to exercise the path.
        let images_small = Tensor::from_vec(
            vec![2, 1, 28, 28],
            images.data()[..2 * 784].to_vec(),
        );
        let result = evaluate(&qnet, &images_small, &labels[..2], &config, 7, 1).expect("evaluate");
        assert!(result.stats.total() > 0);
        assert_eq!(result.samples, 2);
    }

    #[test]
    fn degenerate_inputs_yield_typed_errors() {
        let (qnet, images, labels) = tiny_problem();
        let config = AccelConfig::new(ProtectionScheme::None);
        assert_eq!(
            evaluate(&qnet, &images, &[], &config, 1, 1),
            Err(crate::AccelError::EmptyTestSet)
        );
        assert!(matches!(
            evaluate(&qnet, &images, &labels[..labels.len() - 1], &config, 1, 1),
            Err(crate::AccelError::ShapeMismatch { .. })
        ));
        let bad = AccelConfig::new(ProtectionScheme::None).with_fault_rate(2.0);
        assert!(matches!(
            evaluate(&qnet, &images, &labels, &bad, 1, 1),
            Err(crate::AccelError::InvalidConfig(_))
        ));
    }

    #[test]
    fn injected_panic_is_retried_to_identical_results() {
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::data_aware(9)).with_fault_rate(0.002);
        let clean = evaluate(&qnet, &images, &labels, &config, 11, 2).expect("clean run");
        // Shard 1 panics mid-shard on its first attempt; the retry
        // restarts it from its original seed, so the final results must
        // be bit-identical to the panic-free run.
        config.shard_chaos = chaos::ShardChaos::PanicOn { shard: 1, attempts: 1 };
        let retried = evaluate(&qnet, &images, &labels, &config, 11, 2).expect("retried run");
        assert_eq!(clean, retried);
    }

    #[test]
    fn bounded_retries_extend_the_failure_envelope() {
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::None).with_fault_rate(0.0);
        let clean = evaluate(&qnet, &images, &labels, &config, 11, 2).expect("clean run");
        // Three straight panics exceed the default single retry but not
        // a 3-retry budget; the eventual success is bit-identical.
        config.shard_chaos = chaos::ShardChaos::PanicOn { shard: 1, attempts: 3 };
        assert!(matches!(
            evaluate(&qnet, &images, &labels, &config, 11, 2),
            Err(crate::AccelError::WorkerPanic { shard: 1, .. })
        ));
        config.shard_retries = 3;
        let retried = evaluate(&qnet, &images, &labels, &config, 11, 2).expect("3-retry run");
        assert_eq!(clean, retried);
    }

    #[test]
    fn watchdog_timeout_is_retried_to_identical_results() {
        let (qnet, images, labels) = tiny_problem();
        // Small and single-threaded so the un-stalled attempt finishes
        // well inside the deadline even on a loaded debug-build host.
        let samples = 4;
        let per = images.len() / labels.len();
        let images = Tensor::from_vec(
            vec![samples, 1, 28, 28],
            images.data()[..samples * per].to_vec(),
        );
        let labels = &labels[..samples];
        let mut config = AccelConfig::new(ProtectionScheme::None).with_fault_rate(0.0);
        config.device.rtn_state_probability = 0.0;
        config.device.programming_tolerance = 0.0;
        config.device.bandwidth = 0.0;
        let clean = evaluate(&qnet, &images, labels, &config, 11, 1).expect("clean run");
        // Attempt 0 stalls 6 s mid-shard; the 2.5 s watchdog notices at
        // the next sample boundary and aborts into a seed-stable retry,
        // which does not stall and must reproduce the clean results.
        // The deadline is wall-clock, so keep a wide margin over the
        // un-stalled shard's nominal run time (tens of ms) and a retry
        // budget: when the whole test suite loads the host, a clean
        // attempt over the deadline just retries to identical results.
        config.shard_chaos = chaos::ShardChaos::StallOn { shard: 0, ms: 6_000, attempts: 1 };
        config.watchdog_ns = 2_500_000_000;
        config.shard_retries = 3;
        let retried = evaluate(&qnet, &images, labels, &config, 11, 1).expect("watchdog run");
        assert_eq!(clean, retried);
    }

    #[test]
    fn lost_shards_become_explicit_gaps() {
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::None).with_fault_rate(0.0);
        config.device.rtn_state_probability = 0.0;
        config.device.programming_tolerance = 0.0;
        config.device.bandwidth = 0.0;
        config.shard_chaos = chaos::ShardChaos::PanicOn { shard: 1, attempts: u32::MAX };
        config.max_lost_shards = 1;
        let degraded = evaluate(&qnet, &images, &labels, &config, 11, 2).expect("degraded run");
        let n = labels.len();
        let chunk = n.div_ceil(2);
        assert_eq!(
            degraded.gaps,
            vec![ShardGap { shard: 1, lo: chunk as u64, hi: n as u64 }]
        );
        assert_eq!(degraded.lost_samples, n - chunk);
        assert_eq!(degraded.samples, n);
        // Rates cover only the evaluated samples: they must match the
        // surviving shard evaluated on its own.
        let images_kept = Tensor::from_vec(
            vec![chunk, 1, 28, 28],
            images.data()[..chunk * (images.len() / n)].to_vec(),
        );
        let mut solo_config = config.clone();
        solo_config.shard_chaos = chaos::ShardChaos::Off;
        solo_config.max_lost_shards = 0;
        let solo =
            evaluate(&qnet, &images_kept, &labels[..chunk], &solo_config, 11, 1).expect("solo");
        assert_eq!(degraded.misclassification, solo.misclassification);
        assert_eq!(degraded.flip_rate, solo.flip_rate);
        assert_eq!(degraded.stats, solo.stats);
    }

    #[test]
    fn losing_every_shard_is_a_typed_error() {
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::None).with_fault_rate(0.0);
        config.shard_chaos = chaos::ShardChaos::PanicOn { shard: 0, attempts: u32::MAX };
        config.max_lost_shards = 1;
        assert_eq!(
            evaluate(&qnet, &images, &labels, &config, 11, 1),
            Err(crate::AccelError::AllShardsLost { lost: labels.len() })
        );
    }

    #[test]
    fn persistent_panic_surfaces_shard_and_seed() {
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::None).with_fault_rate(0.0);
        config.shard_chaos = chaos::ShardChaos::PanicOn { shard: 1, attempts: u32::MAX };
        match evaluate(&qnet, &images, &labels, &config, 11, 2) {
            Err(crate::AccelError::WorkerPanic {
                shard,
                seed,
                message,
            }) => {
                assert_eq!(shard, 1);
                assert_eq!(seed, 12); // base seed 11 + shard 1
                assert!(message.contains("injected worker panic"), "{message}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }
}
