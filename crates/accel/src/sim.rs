//! Monte-Carlo accuracy evaluation (§VII of the paper).
//!
//! The paper evaluates each configuration by running inference over test
//! examples on the noisy accelerator and reporting the misclassification
//! rate. This module does the same, fanning the test set out across
//! threads; each thread programs its own accelerator instance (an
//! independently fabricated chip) from a deterministic seed.

use neural::{QuantizedNetwork, Tensor};

use crate::{AccelConfig, CrossbarProvider, DecodeStats};

/// The outcome of one accuracy evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Top-1 misclassification rate.
    pub misclassification: f64,
    /// Top-5 misclassification rate (1.0-capped; equals top-1 for tasks
    /// with ≤ 5 classes).
    pub top5_misclassification: f64,
    /// Fraction of predictions that differ from the *exact fixed-point*
    /// result — a low-variance measure of accelerator-induced damage
    /// (zero when the analog path is error-free, regardless of how hard
    /// the task is).
    pub flip_rate: f64,
    /// Number of evaluated examples.
    pub samples: usize,
    /// Aggregate ECU statistics over the run.
    pub stats: DecodeStats,
}

/// Evaluates a quantized network on the noisy accelerator over a test
/// set.
///
/// `images` is the `[n, ...]` test tensor; inference runs one image at
/// a time (the accelerator pipeline is throughput-oriented, but accuracy
/// is per-example). `threads` bounds the worker count; each worker
/// programs its own engines with a seed derived from `seed`.
pub fn evaluate(
    qnet: &QuantizedNetwork,
    images: &Tensor,
    labels: &[usize],
    config: &AccelConfig,
    seed: u64,
    threads: usize,
) -> SimResult {
    let n = labels.len();
    assert!(n > 0, "empty test set");
    assert_eq!(images.shape()[0], n, "one label per image");
    let per_image = images.len() / n;
    let threads = threads.clamp(1, n);

    let chunk = n.div_ceil(threads);
    let mut results: Vec<(usize, usize, usize, DecodeStats)> = Vec::new();

    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let images_data = images.data();
            let handle = scope.spawn(move |_| {
                let provider = CrossbarProvider::new(config.clone(), seed.wrapping_add(t as u64));
                let mut engines = qnet.build_engines(&provider);
                let mut exact_engines = qnet.build_engines(&neural::ExactProvider);
                let mut top1_errors = 0usize;
                let mut top5_errors = 0usize;
                let mut flips = 0usize;
                for i in lo..hi {
                    let image = &images_data[i * per_image..(i + 1) * per_image];
                    let logits = qnet.run(image, &mut engines);
                    let k = 5.min(logits.len());
                    let top = Tensor::from_vec(vec![logits.len()], logits).top_k(k);
                    if top[0] != labels[i] {
                        top1_errors += 1;
                    }
                    if !top.contains(&labels[i]) {
                        top5_errors += 1;
                    }
                    if qnet.predict(image, &mut exact_engines) != top[0] {
                        flips += 1;
                    }
                }
                (top1_errors, top5_errors, flips, provider.stats())
            });
            handles.push(handle);
        }
        for handle in handles {
            results.push(handle.join().expect("worker thread panicked"));
        }
    })
    .expect("thread scope");

    let mut stats = DecodeStats::default();
    let mut top1 = 0usize;
    let mut top5 = 0usize;
    let mut flips = 0usize;
    for (t1, t5, f, s) in results {
        top1 += t1;
        top5 += t5;
        flips += f;
        stats = merge(stats, s);
    }
    SimResult {
        misclassification: top1 as f64 / n as f64,
        top5_misclassification: top5 as f64 / n as f64,
        flip_rate: flips as f64 / n as f64,
        samples: n,
        stats,
    }
}

/// Evaluates the float software baseline on the same test set (the
/// "Software" bars of Figures 10–11).
pub fn software_baseline(
    network: &mut neural::Network,
    images: &Tensor,
    labels: &[usize],
) -> f64 {
    1.0 - network.evaluate(images, labels)
}

fn merge(mut a: DecodeStats, b: DecodeStats) -> DecodeStats {
    a.clean += b.clean;
    a.corrected += b.corrected;
    a.uncorrectable += b.uncorrectable;
    a.miscorrected += b.miscorrected;
    a.silent_a += b.silent_a;
    a.retries += b.retries;
    a.uncoded += b.uncoded;
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtectionScheme;
    use neural::{models, QuantizedNetwork};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A tiny trained network and test set, shared by the tests.
    fn tiny_problem() -> (QuantizedNetwork, Tensor, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut net = models::mlp2(&mut rng);
        let mut train = neural::data::digits(400, 1);
        neural::data::shuffle(&mut train, 2);
        for _ in 0..5 {
            net.train_epoch(&train.images, &train.labels, 32, 0.1);
        }
        let test = neural::data::digits(20, 99);
        let qnet = QuantizedNetwork::from_network(&net);
        (qnet, test.images, test.labels)
    }

    #[test]
    fn noiseless_accelerator_matches_software() {
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::None);
        config.device.rtn_state_probability = 0.0;
        config.device.programming_tolerance = 0.0;
        config.device.fault_rate = 0.0;
        config.device.bandwidth = 0.0;
        let result = evaluate(&qnet, &images, &labels, &config, 3, 2);
        // Noise-free fixed point: identical predictions to the exact
        // fixed-point engine.
        let mut exact_engines = qnet.build_engines(&neural::ExactProvider);
        let mut exact_errors = 0;
        let per = images.len() / labels.len();
        for (i, &label) in labels.iter().enumerate() {
            let p = qnet.predict(&images.data()[i * per..(i + 1) * per], &mut exact_engines);
            if p != label {
                exact_errors += 1;
            }
        }
        assert_eq!(
            result.misclassification,
            exact_errors as f64 / labels.len() as f64
        );
        assert!(result.top5_misclassification <= result.misclassification);
        assert_eq!(result.flip_rate, 0.0);
        assert_eq!(result.samples, 20);
    }

    #[test]
    fn multithreaded_matches_single_thread_counts() {
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::None);
        config.device.rtn_state_probability = 0.0;
        config.device.programming_tolerance = 0.0;
        config.device.fault_rate = 0.0;
        config.device.bandwidth = 0.0;
        // Noise-free: results are deterministic, so thread count must not
        // change them.
        let single = evaluate(&qnet, &images, &labels, &config, 3, 1);
        let multi = evaluate(&qnet, &images, &labels, &config, 3, 4);
        assert_eq!(single.misclassification, multi.misclassification);
    }

    #[test]
    fn noisy_runs_produce_decode_stats() {
        let (qnet, images, labels) = tiny_problem();
        let config = AccelConfig::new(ProtectionScheme::data_aware(9)).with_fault_rate(0.0);
        // Two examples suffice to exercise the path.
        let images_small = Tensor::from_vec(
            vec![2, 1, 28, 28],
            images.data()[..2 * 784].to_vec(),
        );
        let result = evaluate(&qnet, &images_small, &labels[..2], &config, 7, 1);
        assert!(result.stats.total() > 0);
        assert_eq!(result.samples, 2);
    }
}
