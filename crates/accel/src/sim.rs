//! Monte-Carlo accuracy evaluation (§VII of the paper).
//!
//! The paper evaluates each configuration by running inference over test
//! examples on the noisy accelerator and reporting the misclassification
//! rate. This module does the same, fanning the test set out across
//! threads; each thread programs its own accelerator instance (an
//! independently fabricated chip) from a deterministic seed.
//!
//! # Crash safety
//!
//! Workers run under [`std::panic::catch_unwind`]. A panicking shard is
//! retried **once** from its original seed — a shard is a pure function
//! of `(seed, sample range, config)`, so the retry reproduces the
//! original draw sequence bit-for-bit and a successful retry yields
//! results identical to a run that never panicked. A shard that panics
//! twice surfaces as [`AccelError::WorkerPanic`] naming the shard and
//! seed, instead of aborting the whole process mid-campaign.

use std::panic::{catch_unwind, AssertUnwindSafe};

use neural::{QuantizedNetwork, Tensor};

use crate::{AccelConfig, AccelError, CrossbarProvider, DecodeStats};

/// The outcome of one accuracy evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Top-1 misclassification rate.
    pub misclassification: f64,
    /// Top-5 misclassification rate (1.0-capped; equals top-1 for tasks
    /// with ≤ 5 classes).
    pub top5_misclassification: f64,
    /// Fraction of predictions that differ from the *exact fixed-point*
    /// result — a low-variance measure of accelerator-induced damage
    /// (zero when the analog path is error-free, regardless of how hard
    /// the task is).
    pub flip_rate: f64,
    /// Number of evaluated examples.
    pub samples: usize,
    /// Aggregate ECU statistics over the run.
    pub stats: DecodeStats,
}

/// Per-shard tallies: top-1 errors, top-5 errors, prediction flips, and
/// the shard's decode statistics.
type ShardTallies = (usize, usize, usize, DecodeStats);

/// Runs one worker shard: programs a fresh accelerator from
/// `shard_seed` and classifies samples `lo..hi`.
///
/// A shard is a pure function of its arguments — no shared mutable
/// state, every RNG seeded from `shard_seed` — which is what makes the
/// deterministic retry in [`evaluate`] sound.
#[allow(clippy::too_many_arguments)] // private helper: the shard closure's captures, made explicit
fn run_shard(
    qnet: &QuantizedNetwork,
    images_data: &[f32],
    labels: &[usize],
    per_image: usize,
    config: &AccelConfig,
    shard_seed: u64,
    lo: usize,
    hi: usize,
    shard: usize,
    attempt: u32,
) -> ShardTallies {
    let _span = obs::span!("shard");
    let provider = CrossbarProvider::new(config.clone(), shard_seed);
    let mut engines = qnet.build_engines(&provider);
    let mut exact_engines = qnet.build_engines(&neural::ExactProvider);
    // Per-worker reusable buffers: after the first example
    // grows them to the network's high-water mark, the loop
    // body performs no heap allocation.
    let mut scratch = neural::RunScratch::new();
    let mut exact_scratch = neural::RunScratch::new();
    let mut top = Vec::with_capacity(TOP_K);
    let mut top1_errors = 0usize;
    let mut top5_errors = 0usize;
    let mut flips = 0usize;
    for i in lo..hi {
        // Test-only fault injection, mid-shard so a retry must also
        // discard the partial tallies accumulated before the panic.
        if i == lo + (hi - lo) / 2 && config.worker_panic_hook.should_panic(shard, attempt) {
            panic!("injected worker panic (shard {shard}, attempt {attempt})");
        }
        let image = &images_data[i * per_image..(i + 1) * per_image];
        let logits = qnet.run_with(image, &mut engines, &mut scratch);
        top_k_into(logits, TOP_K.min(logits.len()), &mut top);
        if top[0] != labels[i] {
            top1_errors += 1;
        }
        if !top.contains(&labels[i]) {
            top5_errors += 1;
        }
        if qnet.predict_with(image, &mut exact_engines, &mut exact_scratch) != top[0] {
            flips += 1;
        }
    }
    obs::counter!(prediction_flips).add(flips as u64);
    (top1_errors, top5_errors, flips, provider.stats())
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Evaluates a quantized network on the noisy accelerator over a test
/// set.
///
/// `images` is the `[n, ...]` test tensor; inference runs one image at
/// a time (the accelerator pipeline is throughput-oriented, but accuracy
/// is per-example). `threads` bounds the worker count; each worker
/// programs its own engines with a seed derived from `seed`.
///
/// Worker panics are caught; the failing shard is re-run once from its
/// original seed (bit-identical to a run that never panicked, since a
/// shard is a pure function of seed + range + config) before the error
/// is surfaced.
///
/// # Examples
///
/// ```
/// use accel::{sim::evaluate, AccelConfig, ProtectionScheme};
/// use neural::{Dense, Network, QuantizedNetwork, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let net = Network::new(vec![Box::new(Dense::new(8, 4, &mut rng))]);
/// let qnet = QuantizedNetwork::from_network(&net);
/// let images = Tensor::from_vec(vec![3, 8], vec![0.25; 24]);
/// let labels = vec![0usize, 1, 2];
///
/// let config = AccelConfig::new(ProtectionScheme::data_aware(9));
/// let result = evaluate(&qnet, &images, &labels, &config, 42, 2)?;
/// assert_eq!(result.samples, 3);
/// assert!(result.misclassification <= 1.0);
/// # Ok::<(), accel::AccelError>(())
/// ```
///
/// # Observability
///
/// With the `obs` feature, each worker merges its thread-local metric
/// shard as it finishes (`obs::flush_thread`), so by the time
/// `evaluate` returns the global counter totals equal the returned
/// [`SimResult::stats`] exactly — independent of thread count and join
/// order (DESIGN.md §8):
///
/// ```
/// # use accel::{sim::evaluate, AccelConfig, ProtectionScheme};
/// # use neural::{Dense, Network, QuantizedNetwork, Tensor};
/// # use rand::SeedableRng;
/// # let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// # let net = Network::new(vec![Box::new(Dense::new(8, 4, &mut rng))]);
/// # let qnet = QuantizedNetwork::from_network(&net);
/// # let images = Tensor::from_vec(vec![3, 8], vec![0.25; 24]);
/// # let labels = vec![0usize, 1, 2];
/// obs::reset();
/// let config = AccelConfig::new(ProtectionScheme::None);
/// let result = evaluate(&qnet, &images, &labels, &config, 42, 2)?;
/// if obs::enabled() {
///     assert_eq!(obs::counter_value("ecc_uncoded"), result.stats.uncoded);
/// }
/// # Ok::<(), accel::AccelError>(())
/// ```
///
/// # Errors
///
/// Returns [`AccelError::EmptyTestSet`] for zero labels,
/// [`AccelError::ShapeMismatch`] when `images` does not hold one sample
/// per label, [`AccelError::InvalidConfig`] for an inconsistent
/// `config`, and [`AccelError::WorkerPanic`] when a shard panics twice.
pub fn evaluate(
    qnet: &QuantizedNetwork,
    images: &Tensor,
    labels: &[usize],
    config: &AccelConfig,
    seed: u64,
    threads: usize,
) -> Result<SimResult, AccelError> {
    let n = labels.len();
    if n == 0 {
        return Err(AccelError::EmptyTestSet);
    }
    let samples_in_tensor = images.shape().first().copied().unwrap_or(0);
    if samples_in_tensor != n {
        return Err(AccelError::ShapeMismatch {
            detail: format!("{n} labels but the image tensor holds {samples_in_tensor} samples"),
        });
    }
    config.validate()?;
    let per_image = images.len() / n;
    let threads = threads.clamp(1, n);

    let chunk = n.div_ceil(threads);
    let mut results: Vec<Result<ShardTallies, AccelError>> = Vec::new();

    let scope_result = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let images_data = images.data();
            let handle = scope.spawn(move |_| {
                let shard_seed = seed.wrapping_add(t as u64);
                let mut attempt = 0u32;
                loop {
                    let start_ns = obs::now_ns();
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        run_shard(
                            qnet,
                            images_data,
                            labels,
                            per_image,
                            config,
                            shard_seed,
                            lo,
                            hi,
                            t,
                            attempt,
                        )
                    }));
                    match outcome {
                        Ok(tallies) => {
                            obs::events::emit(
                                obs::Event::new("shard_done")
                                    .u64("shard", t as u64)
                                    .u64("lo", lo as u64)
                                    .u64("hi", hi as u64)
                                    .u64("duration_ns", obs::now_ns().saturating_sub(start_ns)),
                            );
                            // Join point: merge this worker's metric
                            // shard before the thread ends, so totals
                            // are complete when `evaluate` returns.
                            obs::flush_thread();
                            return Ok(tallies);
                        }
                        Err(payload) if attempt == 0 => {
                            // Deterministic retry: the shard restarts
                            // from `shard_seed`, discarding all partial
                            // state, so a success here is bit-identical
                            // to a first-try success. The partial metric
                            // shard is discarded for the same reason —
                            // counters must match what the successful
                            // attempt actually counted.
                            let _ = payload;
                            obs::discard_thread();
                            obs::counter!(shard_retries).incr();
                            attempt = 1;
                            obs::events::emit(
                                obs::Event::new("shard_retry")
                                    .u64("shard", t as u64)
                                    .u64("seed", shard_seed)
                                    .u64("attempt", u64::from(attempt)),
                            );
                        }
                        Err(payload) => {
                            obs::discard_thread();
                            return Err(AccelError::WorkerPanic {
                                shard: t,
                                seed: shard_seed,
                                message: panic_message(payload.as_ref()),
                            });
                        }
                    }
                }
            });
            handles.push(handle);
        }
        for (t, handle) in handles.into_iter().enumerate() {
            results.push(handle.join().unwrap_or_else(|payload| {
                // Unreachable in practice (the closure catches its own
                // panics), but a join failure must not abort the run.
                Err(AccelError::WorkerPanic {
                    shard: t,
                    seed: seed.wrapping_add(t as u64),
                    message: panic_message(payload.as_ref()),
                })
            }));
        }
    });
    if let Err(payload) = scope_result {
        return Err(AccelError::WorkerPanic {
            shard: threads,
            seed,
            message: format!("thread scope teardown: {}", panic_message(payload.as_ref())),
        });
    }

    let mut stats = DecodeStats::default();
    let mut top1 = 0usize;
    let mut top5 = 0usize;
    let mut flips = 0usize;
    for shard in results {
        let (t1, t5, f, s) = shard?;
        top1 += t1;
        top5 += t5;
        flips += f;
        stats = merge(stats, s);
    }
    Ok(SimResult {
        misclassification: top1 as f64 / n as f64,
        top5_misclassification: top5 as f64 / n as f64,
        flip_rate: flips as f64 / n as f64,
        samples: n,
        stats,
    })
}

/// Evaluates the float software baseline on the same test set (the
/// "Software" bars of Figures 10–11).
pub fn software_baseline(
    network: &mut neural::Network,
    images: &Tensor,
    labels: &[usize],
) -> f64 {
    1.0 - network.evaluate(images, labels)
}

/// Classes counted for the top-k misclassification rate.
const TOP_K: usize = 5;

/// Writes the indices of the `k` largest logits into `top`, in
/// descending order, reusing the buffer.
///
/// Matches `Tensor::top_k` exactly, including tie-breaking: that method
/// stable-sorts descending by value, so equal logits keep ascending
/// index order. Here the ascending scan inserts a tying index after the
/// entries already present (which all have smaller indices), preserving
/// the same order without sorting the full array or allocating.
fn top_k_into(logits: &[f32], k: usize, top: &mut Vec<usize>) {
    top.clear();
    for i in 0..logits.len() {
        let mut pos = top.len();
        while pos > 0 && logits[top[pos - 1]] < logits[i] {
            pos -= 1;
        }
        if pos < k {
            if top.len() == k {
                top.pop();
            }
            top.insert(pos, i);
        }
    }
}

fn merge(mut a: DecodeStats, b: DecodeStats) -> DecodeStats {
    a.clean += b.clean;
    a.corrected += b.corrected;
    a.uncorrectable += b.uncorrectable;
    a.miscorrected += b.miscorrected;
    a.silent_a += b.silent_a;
    a.retries += b.retries;
    a.uncoded += b.uncoded;
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtectionScheme;
    use neural::{models, QuantizedNetwork};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A tiny trained network and test set, shared by the tests.
    fn tiny_problem() -> (QuantizedNetwork, Tensor, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut net = models::mlp2(&mut rng);
        let mut train = neural::data::digits(400, 1);
        neural::data::shuffle(&mut train, 2);
        for _ in 0..5 {
            net.train_epoch(&train.images, &train.labels, 32, 0.1);
        }
        let test = neural::data::digits(20, 99);
        let qnet = QuantizedNetwork::from_network(&net);
        (qnet, test.images, test.labels)
    }

    #[test]
    fn noiseless_accelerator_matches_software() {
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::None);
        config.device.rtn_state_probability = 0.0;
        config.device.programming_tolerance = 0.0;
        config.device.fault_rate = 0.0;
        config.device.bandwidth = 0.0;
        let result = evaluate(&qnet, &images, &labels, &config, 3, 2).expect("evaluate");
        // Noise-free fixed point: identical predictions to the exact
        // fixed-point engine.
        let mut exact_engines = qnet.build_engines(&neural::ExactProvider);
        let mut exact_errors = 0;
        let per = images.len() / labels.len();
        for (i, &label) in labels.iter().enumerate() {
            let p = qnet.predict(&images.data()[i * per..(i + 1) * per], &mut exact_engines);
            if p != label {
                exact_errors += 1;
            }
        }
        assert_eq!(
            result.misclassification,
            exact_errors as f64 / labels.len() as f64
        );
        assert!(result.top5_misclassification <= result.misclassification);
        assert_eq!(result.flip_rate, 0.0);
        assert_eq!(result.samples, 20);
    }

    #[test]
    fn multithreaded_matches_single_thread_counts() {
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::None);
        config.device.rtn_state_probability = 0.0;
        config.device.programming_tolerance = 0.0;
        config.device.fault_rate = 0.0;
        config.device.bandwidth = 0.0;
        // Noise-free: results are deterministic, so thread count must not
        // change them.
        let single = evaluate(&qnet, &images, &labels, &config, 3, 1).expect("evaluate");
        for threads in [2, 4, 7] {
            let multi = evaluate(&qnet, &images, &labels, &config, 3, threads).expect("evaluate");
            assert_eq!(single.misclassification, multi.misclassification, "{threads} threads");
            assert_eq!(
                single.top5_misclassification, multi.top5_misclassification,
                "{threads} threads"
            );
            assert_eq!(single.flip_rate, multi.flip_rate, "{threads} threads");
            assert_eq!(single.samples, multi.samples, "{threads} threads");
            // The per-worker decode counters partition the example set,
            // so their noise-free aggregate is partition-independent too.
            assert_eq!(single.stats, multi.stats, "{threads} threads");
        }
    }

    #[test]
    fn double_run_same_seed_is_bit_identical() {
        // The dynamic counterpart of the `nondeterminism` lint (L3):
        // with realistic noise every RNG draw matters, so two runs from
        // the same seed must produce bit-identical results — including
        // the f64 rates — at every thread count. The per-thread-count
        // runs also keep this robust under `--test-threads` variation:
        // shard results depend only on (seed, range, config), never on
        // scheduling. Static16 exercises the full noisy decode draw
        // order without data-aware A-search programming cost.
        let (qnet, images, labels) = tiny_problem();
        let samples = 4;
        let per = images.len() / labels.len();
        let images = Tensor::from_vec(
            vec![samples, 1, 28, 28],
            images.data()[..samples * per].to_vec(),
        );
        let labels = &labels[..samples];
        let config = AccelConfig::new(ProtectionScheme::Static16).with_fault_rate(0.002);
        for threads in [1, 2] {
            let first = evaluate(&qnet, &images, labels, &config, 9, threads).expect("first");
            let second = evaluate(&qnet, &images, labels, &config, 9, threads).expect("second");
            assert_eq!(first, second, "{threads} threads");
        }
    }

    #[test]
    fn top_k_scan_matches_tensor_top_k() {
        // Including ties, which must resolve to ascending index order.
        let cases: Vec<Vec<f32>> = vec![
            vec![0.1, 0.9, 0.5, 0.9, 0.2, 0.9, 0.05],
            vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
            vec![-3.0, -1.0, -2.0],
            vec![0.25],
            (0..12).map(|i| ((i * 7) % 5) as f32).collect(),
        ];
        let mut top = Vec::new();
        for logits in cases {
            for k in 1..=logits.len().min(6) {
                let expected = Tensor::from_vec(vec![logits.len()], logits.clone()).top_k(k);
                top_k_into(&logits, k, &mut top);
                assert_eq!(top, expected, "logits {logits:?} k {k}");
            }
        }
    }

    #[test]
    fn noisy_runs_produce_decode_stats() {
        let (qnet, images, labels) = tiny_problem();
        let config = AccelConfig::new(ProtectionScheme::data_aware(9)).with_fault_rate(0.0);
        // Two examples suffice to exercise the path.
        let images_small = Tensor::from_vec(
            vec![2, 1, 28, 28],
            images.data()[..2 * 784].to_vec(),
        );
        let result = evaluate(&qnet, &images_small, &labels[..2], &config, 7, 1).expect("evaluate");
        assert!(result.stats.total() > 0);
        assert_eq!(result.samples, 2);
    }

    #[test]
    fn degenerate_inputs_yield_typed_errors() {
        let (qnet, images, labels) = tiny_problem();
        let config = AccelConfig::new(ProtectionScheme::None);
        assert_eq!(
            evaluate(&qnet, &images, &[], &config, 1, 1),
            Err(crate::AccelError::EmptyTestSet)
        );
        assert!(matches!(
            evaluate(&qnet, &images, &labels[..labels.len() - 1], &config, 1, 1),
            Err(crate::AccelError::ShapeMismatch { .. })
        ));
        let bad = AccelConfig::new(ProtectionScheme::None).with_fault_rate(2.0);
        assert!(matches!(
            evaluate(&qnet, &images, &labels, &bad, 1, 1),
            Err(crate::AccelError::InvalidConfig(_))
        ));
    }

    #[test]
    fn injected_panic_is_retried_to_identical_results() {
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::data_aware(9)).with_fault_rate(0.002);
        let clean = evaluate(&qnet, &images, &labels, &config, 11, 2).expect("clean run");
        // Shard 1 panics mid-shard on its first attempt; the retry
        // restarts it from its original seed, so the final results must
        // be bit-identical to the panic-free run.
        config.worker_panic_hook = crate::WorkerPanicHook::Once(1);
        let retried = evaluate(&qnet, &images, &labels, &config, 11, 2).expect("retried run");
        assert_eq!(clean, retried);
    }

    #[test]
    fn persistent_panic_surfaces_shard_and_seed() {
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::None).with_fault_rate(0.0);
        config.worker_panic_hook = crate::WorkerPanicHook::Always(1);
        match evaluate(&qnet, &images, &labels, &config, 11, 2) {
            Err(crate::AccelError::WorkerPanic {
                shard,
                seed,
                message,
            }) => {
                assert_eq!(shard, 1);
                assert_eq!(seed, 12); // base seed 11 + shard 1
                assert!(message.contains("injected worker panic"), "{message}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }
}
