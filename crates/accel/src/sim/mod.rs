//! Monte-Carlo accuracy evaluation (§VII of the paper).
//!
//! The paper evaluates each configuration by running inference over test
//! examples on the noisy accelerator and reporting the misclassification
//! rate. This module does the same, fanning the test set out across
//! threads; each thread programs its own accelerator instance (an
//! independently fabricated chip) from a deterministic seed.
//!
//! Internally the module is split along the scheduling seam:
//! [`worker`](self) holds the pure per-shard evaluation function (a
//! shard is a pure function of `(seed, sample range, config)`), while
//! the scheduler owns thread fan-out, retry, and graceful degradation.
//!
//! # Crash safety
//!
//! Workers run under [`std::panic::catch_unwind`]. A failing shard is
//! retried from its original seed — a shard is a pure function of
//! `(seed, sample range, config)`, so a retry reproduces the original
//! draw sequence bit-for-bit and a successful retry yields results
//! identical to a run that never failed. The failure envelope is
//! configurable on [`AccelConfig`]:
//!
//! - `shard_retries` bounds the seed-stable retries per shard (default
//!   1, the classic single retry), with optional exponential backoff
//!   (`retry_backoff_ms`) between attempts;
//! - `watchdog_ns` sets a deadline on each shard's evaluation loop
//!   (armed after crossbar programming, where the cooperative checks
//!   live): a shard that exceeds it aborts at the next sample boundary
//!   and is retried like a panic — a fired watchdog only costs a
//!   retry, never changes results;
//! - `max_lost_shards` opts into graceful degradation: shards that
//!   exhaust their retries are dropped and recorded as [`ShardGap`]s
//!   (rates then cover only the evaluated samples) instead of failing
//!   the run with [`AccelError::WorkerPanic`];
//! - `shard_chaos` injects deterministic panics/stalls mid-shard
//!   ([`chaos::ShardChaos`]) so all of the above is testable.

mod scheduler;
mod worker;

use serde::{Deserialize, Serialize};

use neural::Tensor;

#[allow(unused_imports)] // referenced by the module docs above
use crate::{AccelConfig, AccelError};
use crate::DecodeStats;

pub use scheduler::{evaluate, evaluate_with_model};

/// A shard dropped under graceful degradation: its sample range was
/// never evaluated and is recorded explicitly rather than silently
/// folded into the rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardGap {
    /// Index of the dropped shard (worker thread).
    pub shard: u64,
    /// First sample index of the unevaluated range.
    pub lo: u64,
    /// One past the last sample index of the unevaluated range.
    pub hi: u64,
}

/// The outcome of one accuracy evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Top-1 misclassification rate (over the evaluated samples).
    pub misclassification: f64,
    /// Top-5 misclassification rate (1.0-capped; equals top-1 for tasks
    /// with ≤ 5 classes).
    pub top5_misclassification: f64,
    /// Fraction of predictions that differ from the *exact fixed-point*
    /// result — a low-variance measure of accelerator-induced damage
    /// (zero when the analog path is error-free, regardless of how hard
    /// the task is).
    pub flip_rate: f64,
    /// Number of requested examples (evaluated = `samples -
    /// lost_samples`).
    pub samples: usize,
    /// Samples dropped with lost shards under graceful degradation
    /// (`max_lost_shards`); 0 unless degradation was opted into.
    pub lost_samples: usize,
    /// The dropped shards, as explicit unevaluated sample ranges.
    /// Empty in a fault-free or strict run.
    pub gaps: Vec<ShardGap>,
    /// Aggregate ECU statistics over the run.
    pub stats: DecodeStats,
}

/// Evaluates the float software baseline on the same test set (the
/// "Software" bars of Figures 10–11).
pub fn software_baseline(
    network: &mut neural::Network,
    images: &Tensor,
    labels: &[usize],
) -> f64 {
    1.0 - network.evaluate(images, labels)
}

#[cfg(test)]
mod tests {
    use super::worker::top_k_into;
    use super::*;
    use crate::{AccelConfig, ProtectionScheme};
    use neural::{models, QuantizedNetwork};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A tiny trained network and test set, shared by the tests.
    fn tiny_problem() -> (QuantizedNetwork, Tensor, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut net = models::mlp2(&mut rng);
        let mut train = neural::data::digits(400, 1);
        neural::data::shuffle(&mut train, 2);
        for _ in 0..5 {
            net.train_epoch(&train.images, &train.labels, 32, 0.1);
        }
        let test = neural::data::digits(20, 99);
        let qnet = QuantizedNetwork::from_network(&net);
        (qnet, test.images, test.labels)
    }

    #[test]
    fn noiseless_accelerator_matches_software() {
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::None);
        config.device.rtn_state_probability = 0.0;
        config.device.programming_tolerance = 0.0;
        config.device.fault_rate = 0.0;
        config.device.bandwidth = 0.0;
        let result = evaluate(&qnet, &images, &labels, &config, 3, 2).expect("evaluate");
        // Noise-free fixed point: identical predictions to the exact
        // fixed-point engine.
        let mut exact_engines = qnet.build_engines(&neural::ExactProvider);
        let mut exact_errors = 0;
        let per = images.len() / labels.len();
        for (i, &label) in labels.iter().enumerate() {
            let p = qnet.predict(&images.data()[i * per..(i + 1) * per], &mut exact_engines);
            if p != label {
                exact_errors += 1;
            }
        }
        assert_eq!(
            result.misclassification,
            exact_errors as f64 / labels.len() as f64
        );
        assert!(result.top5_misclassification <= result.misclassification);
        assert_eq!(result.flip_rate, 0.0);
        assert_eq!(result.samples, 20);
    }

    #[test]
    fn multithreaded_matches_single_thread_counts() {
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::None);
        config.device.rtn_state_probability = 0.0;
        config.device.programming_tolerance = 0.0;
        config.device.fault_rate = 0.0;
        config.device.bandwidth = 0.0;
        // Noise-free: results are deterministic, so thread count must not
        // change them.
        let single = evaluate(&qnet, &images, &labels, &config, 3, 1).expect("evaluate");
        for threads in [2, 4, 7] {
            let multi = evaluate(&qnet, &images, &labels, &config, 3, threads).expect("evaluate");
            assert_eq!(single.misclassification, multi.misclassification, "{threads} threads");
            assert_eq!(
                single.top5_misclassification, multi.top5_misclassification,
                "{threads} threads"
            );
            assert_eq!(single.flip_rate, multi.flip_rate, "{threads} threads");
            assert_eq!(single.samples, multi.samples, "{threads} threads");
            // The per-worker decode counters partition the example set,
            // so their noise-free aggregate is partition-independent too.
            assert_eq!(single.stats, multi.stats, "{threads} threads");
        }
    }

    #[test]
    fn double_run_same_seed_is_bit_identical() {
        // The dynamic counterpart of the `nondeterminism` lint (L3):
        // with realistic noise every RNG draw matters, so two runs from
        // the same seed must produce bit-identical results — including
        // the f64 rates — at every thread count. The per-thread-count
        // runs also keep this robust under `--test-threads` variation:
        // shard results depend only on (seed, range, config), never on
        // scheduling. Static16 exercises the full noisy decode draw
        // order without data-aware A-search programming cost.
        let (qnet, images, labels) = tiny_problem();
        let samples = 4;
        let per = images.len() / labels.len();
        let images = Tensor::from_vec(
            vec![samples, 1, 28, 28],
            images.data()[..samples * per].to_vec(),
        );
        let labels = &labels[..samples];
        let config = AccelConfig::new(ProtectionScheme::Static16).with_fault_rate(0.002);
        for threads in [1, 2] {
            let first = evaluate(&qnet, &images, labels, &config, 9, threads).expect("first");
            let second = evaluate(&qnet, &images, labels, &config, 9, threads).expect("second");
            assert_eq!(first, second, "{threads} threads");
        }
    }

    #[test]
    fn batched_evaluate_matches_per_image_when_noiseless() {
        // 20 examples: batch 7 leaves a ragged final window per shard,
        // batch 64 exceeds the whole shard and clamps to it. Noise off,
        // so every batch size must reproduce the per-image results and
        // decode counters exactly.
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::Static16);
        config.device.rtn_state_probability = 0.0;
        config.device.programming_tolerance = 0.0;
        config.device.fault_rate = 0.0;
        config.device.bandwidth = 0.0;
        let per_image = evaluate(&qnet, &images, &labels, &config, 3, 2).expect("batch 1");
        for batch in [2usize, 7, 64] {
            let batched = evaluate(
                &qnet,
                &images,
                &labels,
                &config.clone().with_batch(batch),
                3,
                2,
            )
            .expect("batched");
            assert_eq!(per_image, batched, "batch {batch}");
        }
    }

    #[test]
    fn batched_shard_panic_is_retried_to_identical_results() {
        // The retry contract holds on the windowed loop too: chaos fires
        // at the legacy per-image midpoint's window, the retry restarts
        // the shard from its seed, and results match the fault-free run.
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::data_aware(9))
            .with_fault_rate(0.002)
            .with_batch(4);
        let clean = evaluate(&qnet, &images, &labels, &config, 11, 2).expect("clean run");
        config.shard_chaos = chaos::ShardChaos::PanicOn { shard: 1, attempts: 1 };
        let retried = evaluate(&qnet, &images, &labels, &config, 11, 2).expect("retried run");
        assert_eq!(clean, retried);
    }

    #[test]
    fn top_k_scan_matches_tensor_top_k() {
        // Including ties, which must resolve to ascending index order.
        let cases: Vec<Vec<f32>> = vec![
            vec![0.1, 0.9, 0.5, 0.9, 0.2, 0.9, 0.05],
            vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
            vec![-3.0, -1.0, -2.0],
            vec![0.25],
            (0..12).map(|i| ((i * 7) % 5) as f32).collect(),
        ];
        let mut top = Vec::new();
        for logits in cases {
            for k in 1..=logits.len().min(6) {
                let expected = Tensor::from_vec(vec![logits.len()], logits.clone()).top_k(k);
                top_k_into(&logits, k, &mut top);
                assert_eq!(top, expected, "logits {logits:?} k {k}");
            }
        }
    }

    #[test]
    fn noisy_runs_produce_decode_stats() {
        let (qnet, images, labels) = tiny_problem();
        let config = AccelConfig::new(ProtectionScheme::data_aware(9)).with_fault_rate(0.0);
        // Two examples suffice to exercise the path.
        let images_small = Tensor::from_vec(
            vec![2, 1, 28, 28],
            images.data()[..2 * 784].to_vec(),
        );
        let result = evaluate(&qnet, &images_small, &labels[..2], &config, 7, 1).expect("evaluate");
        assert!(result.stats.total() > 0);
        assert_eq!(result.samples, 2);
    }

    #[test]
    fn degenerate_inputs_yield_typed_errors() {
        let (qnet, images, labels) = tiny_problem();
        let config = AccelConfig::new(ProtectionScheme::None);
        assert_eq!(
            evaluate(&qnet, &images, &[], &config, 1, 1),
            Err(crate::AccelError::EmptyTestSet)
        );
        assert!(matches!(
            evaluate(&qnet, &images, &labels[..labels.len() - 1], &config, 1, 1),
            Err(crate::AccelError::ShapeMismatch { .. })
        ));
        let bad = AccelConfig::new(ProtectionScheme::None).with_fault_rate(2.0);
        assert!(matches!(
            evaluate(&qnet, &images, &labels, &bad, 1, 1),
            Err(crate::AccelError::InvalidConfig(_))
        ));
    }

    #[test]
    fn injected_panic_is_retried_to_identical_results() {
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::data_aware(9)).with_fault_rate(0.002);
        let clean = evaluate(&qnet, &images, &labels, &config, 11, 2).expect("clean run");
        // Shard 1 panics mid-shard on its first attempt; the retry
        // restarts it from its original seed, so the final results must
        // be bit-identical to the panic-free run.
        config.shard_chaos = chaos::ShardChaos::PanicOn { shard: 1, attempts: 1 };
        let retried = evaluate(&qnet, &images, &labels, &config, 11, 2).expect("retried run");
        assert_eq!(clean, retried);
    }

    #[test]
    fn bounded_retries_extend_the_failure_envelope() {
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::None).with_fault_rate(0.0);
        let clean = evaluate(&qnet, &images, &labels, &config, 11, 2).expect("clean run");
        // Three straight panics exceed the default single retry but not
        // a 3-retry budget; the eventual success is bit-identical.
        config.shard_chaos = chaos::ShardChaos::PanicOn { shard: 1, attempts: 3 };
        assert!(matches!(
            evaluate(&qnet, &images, &labels, &config, 11, 2),
            Err(crate::AccelError::WorkerPanic { shard: 1, .. })
        ));
        config.shard_retries = 3;
        let retried = evaluate(&qnet, &images, &labels, &config, 11, 2).expect("3-retry run");
        assert_eq!(clean, retried);
    }

    #[test]
    fn watchdog_timeout_is_retried_to_identical_results() {
        let (qnet, images, labels) = tiny_problem();
        // Small and single-threaded so the un-stalled attempt finishes
        // well inside the deadline even on a loaded debug-build host.
        let samples = 4;
        let per = images.len() / labels.len();
        let images = Tensor::from_vec(
            vec![samples, 1, 28, 28],
            images.data()[..samples * per].to_vec(),
        );
        let labels = &labels[..samples];
        let mut config = AccelConfig::new(ProtectionScheme::None).with_fault_rate(0.0);
        config.device.rtn_state_probability = 0.0;
        config.device.programming_tolerance = 0.0;
        config.device.bandwidth = 0.0;
        let clean = evaluate(&qnet, &images, labels, &config, 11, 1).expect("clean run");
        // Attempt 0 stalls 6 s mid-shard; the 2.5 s watchdog notices at
        // the next sample boundary and aborts into a seed-stable retry,
        // which does not stall and must reproduce the clean results.
        // The deadline is wall-clock, so keep a wide margin over the
        // un-stalled shard's nominal run time (tens of ms) and a retry
        // budget: when the whole test suite loads the host, a clean
        // attempt over the deadline just retries to identical results.
        config.shard_chaos = chaos::ShardChaos::StallOn { shard: 0, ms: 6_000, attempts: 1 };
        config.watchdog_ns = 2_500_000_000;
        config.shard_retries = 3;
        let retried = evaluate(&qnet, &images, labels, &config, 11, 1).expect("watchdog run");
        assert_eq!(clean, retried);
    }

    #[test]
    fn lost_shards_become_explicit_gaps() {
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::None).with_fault_rate(0.0);
        config.device.rtn_state_probability = 0.0;
        config.device.programming_tolerance = 0.0;
        config.device.bandwidth = 0.0;
        config.shard_chaos = chaos::ShardChaos::PanicOn { shard: 1, attempts: u32::MAX };
        config.max_lost_shards = 1;
        let degraded = evaluate(&qnet, &images, &labels, &config, 11, 2).expect("degraded run");
        let n = labels.len();
        let chunk = n.div_ceil(2);
        assert_eq!(
            degraded.gaps,
            vec![ShardGap { shard: 1, lo: chunk as u64, hi: n as u64 }]
        );
        assert_eq!(degraded.lost_samples, n - chunk);
        assert_eq!(degraded.samples, n);
        // Rates cover only the evaluated samples: they must match the
        // surviving shard evaluated on its own.
        let images_kept = Tensor::from_vec(
            vec![chunk, 1, 28, 28],
            images.data()[..chunk * (images.len() / n)].to_vec(),
        );
        let mut solo_config = config.clone();
        solo_config.shard_chaos = chaos::ShardChaos::Off;
        solo_config.max_lost_shards = 0;
        let solo =
            evaluate(&qnet, &images_kept, &labels[..chunk], &solo_config, 11, 1).expect("solo");
        assert_eq!(degraded.misclassification, solo.misclassification);
        assert_eq!(degraded.flip_rate, solo.flip_rate);
        assert_eq!(degraded.stats, solo.stats);
    }

    #[test]
    fn losing_every_shard_is_a_typed_error() {
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::None).with_fault_rate(0.0);
        config.shard_chaos = chaos::ShardChaos::PanicOn { shard: 0, attempts: u32::MAX };
        config.max_lost_shards = 1;
        assert_eq!(
            evaluate(&qnet, &images, &labels, &config, 11, 1),
            Err(crate::AccelError::AllShardsLost { lost: labels.len() })
        );
    }

    #[test]
    fn persistent_panic_surfaces_shard_and_seed() {
        let (qnet, images, labels) = tiny_problem();
        let mut config = AccelConfig::new(ProtectionScheme::None).with_fault_rate(0.0);
        config.shard_chaos = chaos::ShardChaos::PanicOn { shard: 1, attempts: u32::MAX };
        match evaluate(&qnet, &images, &labels, &config, 11, 2) {
            Err(crate::AccelError::WorkerPanic {
                shard,
                seed,
                message,
            }) => {
                assert_eq!(shard, 1);
                assert_eq!(seed, 12); // base seed 11 + shard 1
                assert!(message.contains("injected worker panic"), "{message}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }
}
