//! The pure per-shard evaluation worker.
//!
//! A shard is a pure function of `(seed, sample range, config)` — no
//! shared mutable state, every RNG seeded from the shard seed — which
//! is what makes the scheduler's deterministic retry sound. Everything
//! in this file must stay side-effect-free apart from obs
//! instrumentation (which never feeds seeded computation).

use neural::QuantizedNetwork;

use crate::{AccelConfig, CrossbarProvider, DecodeStats};

/// Per-shard tallies: top-1 errors, top-5 errors, prediction flips, and
/// the shard's decode statistics.
pub(super) type ShardTallies = (usize, usize, usize, DecodeStats);

/// Classes counted for the top-k misclassification rate.
pub(super) const TOP_K: usize = 5;

/// Runs one worker shard: programs a fresh accelerator from
/// `shard_seed` and classifies samples `lo..hi`.
///
/// A shard is a pure function of its arguments — no shared mutable
/// state, every RNG seeded from `shard_seed` — which is what makes the
/// deterministic retry in [`super::evaluate`] sound.
#[allow(clippy::too_many_arguments)] // private helper: the shard closure's captures, made explicit
pub(super) fn run_shard(
    qnet: &QuantizedNetwork,
    images_data: &[f32],
    labels: &[usize],
    per_image: usize,
    config: &AccelConfig,
    shard_seed: u64,
    lo: usize,
    hi: usize,
    shard: usize,
    attempt: u32,
) -> ShardTallies {
    let _span = obs::span!("shard");
    let provider = CrossbarProvider::new(config.clone(), shard_seed);
    let mut engines = qnet.build_engines(&provider);
    let mut exact_engines = qnet.build_engines(&neural::ExactProvider);
    // Watchdog epoch: armed once per attempt, *after* crossbar
    // programming, because elapsed time is only checked cooperatively
    // at the sample boundaries below — a deadline covering the
    // (uncheckable, debug-build-expensive) programming phase could
    // trip spuriously without ever detecting a hang there. The clock
    // is read only when a deadline is armed, and its reading flows
    // only into the abort decision — never into seeded computation —
    // so results are bit-identical whether or not the watchdog trips.
    let watchdog_start_ns = if config.watchdog_ns != 0 {
        chaos::clock::now_ns()
    } else {
        0
    };
    // Per-worker reusable buffers: after the first example
    // grows them to the network's high-water mark, the loop
    // body performs no heap allocation.
    let mut scratch = neural::RunScratch::new();
    let mut exact_scratch = neural::RunScratch::new();
    let mut top = Vec::with_capacity(TOP_K);
    let mut top1_errors = 0usize;
    let mut top5_errors = 0usize;
    let mut flips = 0usize;
    let batch = config.batch.max(1);
    // The cooperative control points — watchdog deadline and chaos
    // injection — fire at submission boundaries: per image when
    // `batch == 1`, per window otherwise. Chaos anchors on the legacy
    // per-image midpoint so the same `ShardChaos` config faults the
    // same logical position at every batch size.
    let chaos_at = lo + (hi - lo) / 2;
    let mut wlo = lo;
    while wlo < hi {
        if config.watchdog_ns != 0
            && chaos::clock::now_ns().saturating_sub(watchdog_start_ns) > config.watchdog_ns
        {
            // The watchdog's abort channel: caught by evaluate's catch_unwind
            // and converted into a seed-stable retry (panic_reachability
            // sees the guard at the call edge).
            panic!(
                "watchdog: shard {shard} exceeded its {} ms deadline (attempt {attempt})",
                config.watchdog_ns / 1_000_000
            );
        }
        let wend = (wlo + batch).min(hi);
        // Chaos injection, mid-shard so a retry must also discard the
        // partial tallies accumulated before the fault.
        if (wlo..wend).contains(&chaos_at) {
            match config.shard_chaos.decide(shard as u64, attempt) {
                Some(chaos::ExecFault::Panic) => {
                    // Deterministic fault injection: caught by evaluate's
                    // catch_unwind, which is the path under test.
                    panic!("chaos: injected worker panic (shard {shard}, attempt {attempt})")
                }
                Some(chaos::ExecFault::Stall { ms }) => {
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
                None => {}
            }
        }
        let window = wend - wlo;
        let logits_all = if window == 1 {
            // Batch-of-1 (including a ragged final window of one) takes
            // the original per-image path, draw-for-draw.
            qnet.run_with(
                &images_data[wlo * per_image..wend * per_image],
                &mut engines,
                &mut scratch,
            )
        } else {
            qnet.run_batch_with(
                &images_data[wlo * per_image..wend * per_image],
                window,
                &mut engines,
                &mut scratch,
            )
        };
        let out_dim = logits_all.len() / window;
        for v in 0..window {
            let i = wlo + v;
            let logits = &logits_all[v * out_dim..(v + 1) * out_dim];
            top_k_into(logits, TOP_K.min(out_dim), &mut top);
            if top[0] != labels[i] {
                top1_errors += 1;
            }
            if !top.contains(&labels[i]) {
                top5_errors += 1;
            }
            let image = &images_data[i * per_image..(i + 1) * per_image];
            if qnet.predict_with(image, &mut exact_engines, &mut exact_scratch) != top[0] {
                flips += 1;
            }
        }
        wlo = wend;
    }
    obs::counter!(prediction_flips).add(flips as u64);
    (top1_errors, top5_errors, flips, provider.stats())
}

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Writes the indices of the `k` largest logits into `top`, in
/// descending order, reusing the buffer.
///
/// Matches `Tensor::top_k` exactly, including tie-breaking: that method
/// stable-sorts descending by value, so equal logits keep ascending
/// index order. Here the ascending scan inserts a tying index after the
/// entries already present (which all have smaller indices), preserving
/// the same order without sorting the full array or allocating.
pub(crate) fn top_k_into(logits: &[f32], k: usize, top: &mut Vec<usize>) {
    top.clear();
    for i in 0..logits.len() {
        let mut pos = top.len();
        while pos > 0 && logits[top[pos - 1]] < logits[i] {
            pos -= 1;
        }
        if pos < k {
            if top.len() == k {
                top.pop();
            }
            top.insert(pos, i);
        }
    }
}

/// Sums two shards' decode statistics field by field.
pub(super) fn merge(mut a: DecodeStats, b: DecodeStats) -> DecodeStats {
    a.clean += b.clean;
    a.corrected += b.corrected;
    a.uncorrectable += b.uncorrectable;
    a.miscorrected += b.miscorrected;
    a.silent_a += b.silent_a;
    a.retries += b.retries;
    a.uncoded += b.uncoded;
    a
}
