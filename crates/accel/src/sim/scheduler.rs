//! The shard scheduler: thread fan-out, seed-stable retry, and
//! graceful degradation around the pure worker function.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use neural::{QuantizedNetwork, Tensor};

use super::worker::{merge, panic_message, run_shard, ShardTallies};
use super::{ShardGap, SimResult};
use crate::analytic::ErrorModel;
use crate::{AccelConfig, AccelError, DecodeStats};

/// Evaluates a quantized network on the noisy accelerator over a test
/// set.
///
/// `images` is the `[n, ...]` test tensor. With the default
/// `config.batch == 1` inference runs one image at a time on the
/// original bit-serial kernel; larger batches submit windows of
/// `config.batch` images per MVM pass (the final window is ragged when
/// the shard size is not a multiple, and a batch larger than the shard
/// simply clamps to it), amortizing the per-pass RTN snapshot and row
/// read-outs. Accuracy tallies stay per-example either way. `threads`
/// bounds the worker count; each worker programs its own engines with a
/// seed derived from `seed`.
///
/// Worker panics (and watchdog timeouts) are caught; the failing shard
/// is re-run from its original seed (bit-identical to a run that never
/// panicked, since a shard is a pure function of seed + range +
/// config) up to `config.shard_retries` times before the error is
/// surfaced — or, with `config.max_lost_shards > 0`, dropped and
/// recorded as a [`ShardGap`].
///
/// # Examples
///
/// ```
/// use accel::{sim::evaluate, AccelConfig, ProtectionScheme};
/// use neural::{Dense, Network, QuantizedNetwork, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let net = Network::new(vec![Box::new(Dense::new(8, 4, &mut rng))]);
/// let qnet = QuantizedNetwork::from_network(&net);
/// let images = Tensor::from_vec(vec![3, 8], vec![0.25; 24]);
/// let labels = vec![0usize, 1, 2];
///
/// let config = AccelConfig::new(ProtectionScheme::data_aware(9));
/// let result = evaluate(&qnet, &images, &labels, &config, 42, 2)?;
/// assert_eq!(result.samples, 3);
/// assert!(result.misclassification <= 1.0);
/// # Ok::<(), accel::AccelError>(())
/// ```
///
/// Batched submission changes throughput, not the estimator — with
/// noise disabled the results are identical at every batch size:
///
/// ```
/// # use accel::{sim::evaluate, AccelConfig, ProtectionScheme};
/// # use neural::{Dense, Network, QuantizedNetwork, Tensor};
/// # use rand::SeedableRng;
/// # let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// # let net = Network::new(vec![Box::new(Dense::new(8, 4, &mut rng))]);
/// # let qnet = QuantizedNetwork::from_network(&net);
/// # let images = Tensor::from_vec(vec![3, 8], vec![0.25; 24]);
/// # let labels = vec![0usize, 1, 2];
/// let mut config = AccelConfig::new(ProtectionScheme::None);
/// config.device.rtn_state_probability = 0.0;
/// config.device.programming_tolerance = 0.0;
/// config.device.fault_rate = 0.0;
/// config.device.bandwidth = 0.0;
/// let one = evaluate(&qnet, &images, &labels, &config, 42, 1)?;
/// let batched = evaluate(&qnet, &images, &labels, &config.with_batch(2), 42, 1)?;
/// assert_eq!(one.misclassification, batched.misclassification);
/// # Ok::<(), accel::AccelError>(())
/// ```
///
/// # Observability
///
/// With the `obs` feature, each worker merges its thread-local metric
/// shard as it finishes (`obs::flush_thread`), so by the time
/// `evaluate` returns the global counter totals equal the returned
/// [`SimResult::stats`] exactly — independent of thread count and join
/// order (DESIGN.md §8):
///
/// ```
/// # use accel::{sim::evaluate, AccelConfig, ProtectionScheme};
/// # use neural::{Dense, Network, QuantizedNetwork, Tensor};
/// # use rand::SeedableRng;
/// # let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// # let net = Network::new(vec![Box::new(Dense::new(8, 4, &mut rng))]);
/// # let qnet = QuantizedNetwork::from_network(&net);
/// # let images = Tensor::from_vec(vec![3, 8], vec![0.25; 24]);
/// # let labels = vec![0usize, 1, 2];
/// obs::reset();
/// let config = AccelConfig::new(ProtectionScheme::None);
/// let result = evaluate(&qnet, &images, &labels, &config, 42, 2)?;
/// if obs::enabled() {
///     assert_eq!(obs::counter_value("ecc_uncoded"), result.stats.uncoded);
/// }
/// # Ok::<(), accel::AccelError>(())
/// ```
///
/// # Errors
///
/// Returns [`AccelError::EmptyTestSet`] for zero labels,
/// [`AccelError::ShapeMismatch`] when `images` does not hold one sample
/// per label, [`AccelError::InvalidConfig`] for an inconsistent
/// `config`, [`AccelError::WorkerPanic`] when a shard fails every
/// allowed retry with no degradation budget left, and
/// [`AccelError::AllShardsLost`] when degradation dropped every shard.
pub fn evaluate(
    qnet: &QuantizedNetwork,
    images: &Tensor,
    labels: &[usize],
    config: &AccelConfig,
    seed: u64,
    threads: usize,
) -> Result<SimResult, AccelError> {
    let n = labels.len();
    if n == 0 {
        return Err(AccelError::EmptyTestSet);
    }
    let samples_in_tensor = images.shape().first().copied().unwrap_or(0);
    if samples_in_tensor != n {
        return Err(AccelError::ShapeMismatch {
            detail: format!("{n} labels but the image tensor holds {samples_in_tensor} samples"),
        });
    }
    config.validate()?;
    let per_image = images.len() / n;
    let threads = threads.clamp(1, n);

    let chunk = n.div_ceil(threads);
    let mut results: Vec<Result<ShardOutcome, AccelError>> = Vec::new();
    // Shared graceful-degradation budget: shards claim a slot with a
    // fetch_add so at most `max_lost_shards` are ever dropped, however
    // the thread interleaving falls out. Which shards are *candidates*
    // for dropping is deterministic (shards are pure functions of their
    // seed), so with a budget at least as large as the failing-shard
    // count the recorded gaps are deterministic too.
    let lost_budget = AtomicUsize::new(0);

    let scope_result = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let images_data = images.data();
            let lost_budget = &lost_budget;
            let handle = scope.spawn(move |_| {
                let shard_seed = seed.wrapping_add(t as u64);
                let max_attempts = config.shard_retries.saturating_add(1);
                let mut attempt = 0u32;
                loop {
                    let start_ns = obs::now_ns();
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        run_shard(
                            qnet,
                            images_data,
                            labels,
                            per_image,
                            config,
                            shard_seed,
                            lo,
                            hi,
                            t,
                            attempt,
                        )
                    }));
                    match outcome {
                        Ok(tallies) => {
                            obs::events::emit(
                                obs::Event::new("shard_done")
                                    .u64("shard", t as u64)
                                    .u64("lo", lo as u64)
                                    .u64("hi", hi as u64)
                                    .u64("duration_ns", obs::now_ns().saturating_sub(start_ns)),
                            );
                            // Join point: merge this worker's metric
                            // shard before the thread ends, so totals
                            // are complete when `evaluate` returns.
                            obs::flush_thread();
                            return Ok(ShardOutcome::Done(tallies));
                        }
                        Err(payload) => {
                            // Discard the partial metric shard first:
                            // counters must match what a successful
                            // attempt actually counted, never a mix of
                            // abandoned attempts.
                            obs::discard_thread();
                            let message = panic_message(payload.as_ref());
                            let reason = if message.starts_with("watchdog:") {
                                "watchdog"
                            } else {
                                "panic"
                            };
                            if attempt + 1 < max_attempts {
                                // Deterministic retry: the shard
                                // restarts from `shard_seed`, so a
                                // success here is bit-identical to a
                                // first-try success. Flush immediately
                                // so the retry bookkeeping survives the
                                // next attempt's discard.
                                obs::counter!(shard_retries).incr();
                                attempt += 1;
                                // The shard seed spans the full u64
                                // range (epoch seeds are wrapping
                                // golden-ratio offsets), wider than
                                // JSON's exact-integer window — emit
                                // it as a decimal string.
                                obs::events::emit(
                                    obs::Event::new("shard_retry")
                                        .u64("shard", t as u64)
                                        .str("seed", &shard_seed.to_string())
                                        .u64("attempt", u64::from(attempt))
                                        .str("reason", reason),
                                );
                                obs::flush_thread();
                                if config.retry_backoff_ms != 0 {
                                    let shift = (attempt - 1).min(6);
                                    std::thread::sleep(std::time::Duration::from_millis(
                                        config.retry_backoff_ms << shift,
                                    ));
                                }
                            } else if lost_budget.fetch_add(1, Ordering::SeqCst)
                                < config.max_lost_shards
                            {
                                // Graceful degradation: drop the shard,
                                // record the gap, keep the run alive.
                                obs::counter!(shards_lost).incr();
                                obs::events::emit(
                                    obs::Event::new("shard_lost")
                                        .u64("shard", t as u64)
                                        .u64("lo", lo as u64)
                                        .u64("hi", hi as u64)
                                        .u64("attempts", u64::from(max_attempts))
                                        .str("reason", reason),
                                );
                                obs::flush_thread();
                                return Ok(ShardOutcome::Lost {
                                    shard: t as u64,
                                    lo: lo as u64,
                                    hi: hi as u64,
                                });
                            } else {
                                return Err(AccelError::WorkerPanic {
                                    shard: t,
                                    seed: shard_seed,
                                    message,
                                });
                            }
                        }
                    }
                }
            });
            handles.push(handle);
        }
        for (t, handle) in handles.into_iter().enumerate() {
            results.push(handle.join().unwrap_or_else(|payload| {
                // Unreachable in practice (the closure catches its own
                // panics), but a join failure must not abort the run.
                Err(AccelError::WorkerPanic {
                    shard: t,
                    seed: seed.wrapping_add(t as u64),
                    message: panic_message(payload.as_ref()),
                })
            }));
        }
    });
    if let Err(payload) = scope_result {
        return Err(AccelError::WorkerPanic {
            shard: threads,
            seed,
            message: format!("thread scope teardown: {}", panic_message(payload.as_ref())),
        });
    }

    let mut stats = DecodeStats::default();
    let mut top1 = 0usize;
    let mut top5 = 0usize;
    let mut flips = 0usize;
    let mut lost = 0usize;
    let mut gaps = Vec::new();
    for shard in results {
        match shard? {
            ShardOutcome::Done((t1, t5, f, s)) => {
                top1 += t1;
                top5 += t5;
                flips += f;
                stats = merge(stats, s);
            }
            ShardOutcome::Lost { shard, lo, hi } => {
                lost += (hi - lo) as usize;
                gaps.push(ShardGap { shard, lo, hi });
            }
        }
    }
    let evaluated = n - lost;
    if evaluated == 0 {
        return Err(AccelError::AllShardsLost { lost });
    }
    Ok(SimResult {
        misclassification: top1 as f64 / evaluated as f64,
        top5_misclassification: top5 as f64 / evaluated as f64,
        flip_rate: flips as f64 / evaluated as f64,
        samples: n,
        lost_samples: lost,
        gaps,
        stats,
    })
}

/// Evaluates with an explicit [`ErrorModel`] choice.
///
/// [`ErrorModel::Mc`] is [`evaluate`] verbatim — same seeds, same
/// shard fan-out, bit-identical results. [`ErrorModel::Analytic`]
/// dispatches to the closed-form fast path
/// ([`crate::analytic::predict`]; `seed` and `threads` are unused — the
/// prediction is deterministic single-pass). [`ErrorModel::Auto`]
/// picks analytic when the configuration is inside the validity
/// envelope ([`crate::analytic::supports`]) and falls back to
/// Monte-Carlo otherwise; the choice is recorded in the
/// `error_model_*` obs counters.
///
/// # Examples
///
/// The auto policy falls back to Monte-Carlo for configurations the
/// analytic derivation does not cover (here: ECU re-read retries), and
/// the fallback is bit-identical to calling [`evaluate`] directly:
///
/// ```
/// use accel::analytic::ErrorModel;
/// use accel::{sim, AccelConfig, ProtectionScheme};
/// use neural::{Dense, Network, QuantizedNetwork, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let net = Network::new(vec![Box::new(Dense::new(8, 4, &mut rng))]);
/// let qnet = QuantizedNetwork::from_network(&net);
/// let images = Tensor::from_vec(vec![3, 8], vec![0.25; 24]);
/// let labels = vec![0usize, 1, 2];
///
/// let mut config = AccelConfig::new(ProtectionScheme::data_aware(9));
/// config.max_retries = 2; // outside the analytic envelope
/// let auto =
///     sim::evaluate_with_model(&qnet, &images, &labels, &config, 42, 2, ErrorModel::Auto)?;
/// let mc = sim::evaluate(&qnet, &images, &labels, &config, 42, 2)?;
/// assert_eq!(auto.misclassification, mc.misclassification);
/// assert_eq!(auto.stats, mc.stats);
/// # Ok::<(), accel::AccelError>(())
/// ```
///
/// # Errors
///
/// As [`evaluate`] for the Monte-Carlo path; additionally
/// [`AccelError::InvalidConfig`] when [`ErrorModel::Analytic`] is
/// forced on a configuration outside the envelope.
pub fn evaluate_with_model(
    qnet: &QuantizedNetwork,
    images: &Tensor,
    labels: &[usize],
    config: &AccelConfig,
    seed: u64,
    threads: usize,
    model: ErrorModel,
) -> Result<SimResult, AccelError> {
    match model {
        ErrorModel::Analytic => {
            obs::counter!(error_model_analytic).incr();
            crate::analytic::predict_threaded(qnet, images, labels, config, threads)
        }
        ErrorModel::Mc => {
            obs::counter!(error_model_mc).incr();
            evaluate(qnet, images, labels, config, seed, threads)
        }
        ErrorModel::Auto => {
            if crate::analytic::supports(config) {
                obs::counter!(error_model_analytic).incr();
                crate::analytic::predict_threaded(qnet, images, labels, config, threads)
            } else {
                obs::counter!(error_model_auto_fallback).incr();
                evaluate(qnet, images, labels, config, seed, threads)
            }
        }
    }
}

/// What one worker shard ultimately produced: its tallies, or — under
/// graceful degradation — an explicit gap.
enum ShardOutcome {
    Done(ShardTallies),
    Lost { shard: u64, lo: u64, hi: u64 },
}
