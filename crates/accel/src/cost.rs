//! Area, power and throughput accounting (§VIII-B, Table IV).
//!
//! The paper synthesizes the error correction unit in Verilog (Synopsys
//! DC + FreePDK45, scaled to 32 nm) and evaluates the correction table
//! with CACTI 6.5, then reports component costs (Table IV) and tile- and
//! chip-level overhead percentages. Neither tool is available here, so
//! this module encodes the paper's published component numbers as the
//! 9-check-bit calibration point and derives the rest analytically:
//!
//! - ECU logic (two divide/residue units, a correction adder) scales
//!   linearly with the datapath width (`128 + check_bits`);
//! - the correction table is a direct-indexed SRAM with at most
//!   `2^check_bits / B` entries, scaling with the entry count;
//! - the extra check bits add `check_bits / 128` of the array, ADC and
//!   DAC area/power (the paper's "9 bits per 128 adds 7 %");
//! - the tile- and chip-level fractions are back-derived from the
//!   paper's own percentages so that the 9-bit configuration reproduces
//!   them exactly.

/// Cost of one component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentCost {
    /// Area in mm² at 32 nm.
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

/// The full overhead breakdown for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadReport {
    /// ECU logic (divide/residue units + correction adder).
    pub ecu: ComponentCost,
    /// Correction table SRAM.
    pub table: ComponentCost,
    /// ECU (logic + table) area as a fraction of one tile.
    pub ecu_tile_area_fraction: f64,
    /// ECU power as a fraction of one tile.
    pub ecu_tile_power_fraction: f64,
    /// Check-bit storage/converter overhead on the array subsystem.
    pub array_overhead_fraction: f64,
    /// Total per-tile area overhead.
    pub tile_area_fraction: f64,
    /// Total chip-level area overhead.
    pub chip_area_fraction: f64,
    /// Total chip-level power overhead.
    pub chip_power_fraction: f64,
}

/// Calibration constants: the paper's Table IV at 9 check bits, plus
/// the tile/chip fractions back-derived from §VIII-B.
mod calib {
    /// ECU logic area at 9 check bits (Table IV).
    pub const ECU_AREA_9: f64 = 0.0031;
    /// ECU logic power at 9 check bits (Table IV).
    pub const ECU_POWER_9: f64 = 1.42;
    /// Correction-table area at 9 check bits (Table IV).
    pub const TABLE_AREA_9: f64 = 0.0012;
    /// Correction-table power at 9 check bits (Table IV).
    pub const TABLE_POWER_9: f64 = 0.51;
    /// Tile area implied by "the ECU alone requires a 3.4 % overhead on
    /// top of an ISAAC tile": (0.0031 + 0.0012) / 0.034.
    pub const TILE_AREA: f64 = (ECU_AREA_9 + TABLE_AREA_9) / 0.034;
    /// Tile power implied by "the ECU requires a 2.1 % power overhead".
    pub const TILE_POWER: f64 = (ECU_POWER_9 + TABLE_POWER_9) / 0.021;
    /// Fraction of tile area in arrays + ADCs + DACs, implied by
    /// "9 bits per 128 adds an additional 7 % … taken together 6.3 %":
    /// 0.034 + (9/128)·f = 0.063.
    pub const ARRAY_AREA_FRACTION: f64 = (0.063 - 0.034) / (9.0 / 128.0);
    /// Fraction of tile power in arrays + converters, implied by
    /// 0.021 + (9/128)·f = 0.058.
    pub const ARRAY_POWER_FRACTION: f64 = (0.058 - 0.021) / (9.0 / 128.0);
    /// Tile fraction of total chip area, implied by the tile overhead of
    /// 6.3 % becoming 5.3 % chip-wide.
    pub const TILE_CHIP_AREA_FRACTION: f64 = 0.053 / 0.063;
    /// Reference check-bit count of the calibration point.
    pub const REF_CHECK_BITS: f64 = 9.0;
    /// Reference datapath width.
    pub const REF_WIDTH: f64 = 128.0 + REF_CHECK_BITS;
    /// Reference table entries: 2^9 / 3.
    pub const REF_TABLE_ENTRIES: f64 = 512.0 / 3.0;
}

/// ECU logic cost for a datapath of `128 + check_bits` bits.
pub fn ecu_cost(check_bits: u32) -> ComponentCost {
    let scale = (128.0 + check_bits as f64) / calib::REF_WIDTH;
    ComponentCost {
        area_mm2: calib::ECU_AREA_9 * scale,
        power_mw: calib::ECU_POWER_9 * scale,
    }
}

/// Correction-table cost for a `check_bits` budget (up to
/// `2^check_bits / 3` entries).
pub fn table_cost(check_bits: u32) -> ComponentCost {
    let entries = (1u64 << check_bits) as f64 / 3.0;
    let scale = entries / calib::REF_TABLE_ENTRIES;
    ComponentCost {
        area_mm2: calib::TABLE_AREA_9 * scale,
        power_mw: calib::TABLE_POWER_9 * scale,
    }
}

/// Full overhead report for a check-bit budget over 128-bit groups.
pub fn overheads(check_bits: u32) -> OverheadReport {
    let ecu = ecu_cost(check_bits);
    let table = table_cost(check_bits);
    let ecu_tile_area_fraction = (ecu.area_mm2 + table.area_mm2) / calib::TILE_AREA;
    let ecu_tile_power_fraction = (ecu.power_mw + table.power_mw) / calib::TILE_POWER;
    let array_overhead_fraction = check_bits as f64 / 128.0;
    let tile_area_fraction =
        ecu_tile_area_fraction + array_overhead_fraction * calib::ARRAY_AREA_FRACTION;
    let chip_area_fraction = tile_area_fraction * calib::TILE_CHIP_AREA_FRACTION;
    let chip_power_fraction =
        ecu_tile_power_fraction + array_overhead_fraction * calib::ARRAY_POWER_FRACTION;
    OverheadReport {
        ecu,
        table,
        ecu_tile_area_fraction,
        ecu_tile_power_fraction,
        array_overhead_fraction,
        tile_area_fraction,
        chip_area_fraction,
        chip_power_fraction,
    }
}

/// Throughput model: the ECU is fully pipelined, so the only loss comes
/// from retries, each stalling one array read. Returns relative
/// throughput in `(0, 1]` given the fraction of group-cycles retried.
pub fn relative_throughput(retry_rate: f64, retries_per_event: f64) -> f64 {
    assert!((0.0..=1.0).contains(&retry_rate), "rate in [0, 1]");
    1.0 / (1.0 + retry_rate * retries_per_event.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_reproduced_at_9_bits() {
        let ecu = ecu_cost(9);
        let table = table_cost(9);
        assert!((ecu.area_mm2 - 0.0031).abs() < 1e-9);
        assert!((ecu.power_mw - 1.42).abs() < 1e-9);
        assert!((table.area_mm2 - 0.0012).abs() < 1e-9);
        assert!((table.power_mw - 0.51).abs() < 1e-9);
    }

    #[test]
    fn section_viii_b_percentages_reproduced() {
        let r = overheads(9);
        assert!((r.ecu_tile_area_fraction - 0.034).abs() < 1e-6);
        assert!((r.tile_area_fraction - 0.063).abs() < 1e-6);
        assert!((r.chip_area_fraction - 0.053).abs() < 1e-6);
        assert!((r.ecu_tile_power_fraction - 0.021).abs() < 1e-6);
        assert!((r.chip_power_fraction - 0.058).abs() < 1e-6);
    }

    #[test]
    fn paper_headline_bounds_hold() {
        // "less than 4.5 % area and less than 4.7 % energy overheads"
        // refers to the ABN-7/8 configurations at chip level.
        let r = overheads(7);
        assert!(r.chip_area_fraction < 0.045, "{}", r.chip_area_fraction);
        assert!(r.chip_power_fraction < 0.047, "{}", r.chip_power_fraction);
    }

    #[test]
    fn overheads_monotonic_in_check_bits() {
        let mut prev = 0.0;
        for bits in 7..=10 {
            let r = overheads(bits);
            assert!(r.tile_area_fraction > prev);
            prev = r.tile_area_fraction;
        }
    }

    #[test]
    fn table_grows_exponentially() {
        assert!(table_cost(10).area_mm2 > 1.9 * table_cost(9).area_mm2);
    }

    #[test]
    fn throughput_model() {
        assert_eq!(relative_throughput(0.0, 1.0), 1.0);
        assert!(relative_throughput(0.1, 1.0) < 1.0);
        assert!(relative_throughput(0.1, 1.0) > relative_throughput(0.5, 1.0));
    }
}
