//! Structured errors for the accelerator evaluation stack.
//!
//! The simulation entry points ([`sim::evaluate`](crate::sim::evaluate),
//! [`campaign`](crate::campaign)) run for hours at realistic sample
//! counts, so recoverable failures — a bad config, a panicking worker, a
//! corrupt checkpoint — must surface as values the caller can report and
//! act on, not process aborts. This hand-rolled `thiserror`-style enum
//! (crates.io is unavailable in this environment) is that surface.

use ancode::CodeError;

/// An error produced by the accelerator simulation stack.
///
/// # Examples
///
/// ```
/// use accel::AccelError;
///
/// // Errors render as actionable messages and match structurally.
/// let err = AccelError::WorkerPanic {
///     shard: 3,
///     seed: 99,
///     message: "boom".into(),
/// };
/// assert_eq!(err.to_string(), "worker shard 3 (seed 99) panicked twice: boom");
/// assert!(matches!(err, AccelError::WorkerPanic { shard: 3, .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AccelError {
    /// The evaluation request carried no test samples.
    EmptyTestSet,
    /// The image tensor and label slice disagree on the sample count,
    /// or the image tensor is not `[n, features]`.
    ShapeMismatch {
        /// What the caller supplied, e.g. `"images tensor is rank 1"`.
        detail: String,
    },
    /// The accelerator configuration is internally inconsistent.
    InvalidConfig(String),
    /// Code construction / A-search failed while mapping a matrix.
    Code(CodeError),
    /// A Monte-Carlo worker shard failed every allowed seed-stable
    /// retry (panic or watchdog timeout) and no graceful-degradation
    /// budget remained, so the run cannot complete.
    WorkerPanic {
        /// Index of the failed shard (worker thread).
        shard: usize,
        /// RNG seed the shard ran with.
        seed: u64,
        /// Panic payload, when it was a string.
        message: String,
    },
    /// Graceful degradation (`max_lost_shards`) dropped *every* shard,
    /// leaving no evaluated samples to compute rates over.
    AllShardsLost {
        /// Samples dropped with the lost shards.
        lost: usize,
    },
    /// Reading or writing a campaign checkpoint failed.
    Checkpoint {
        /// Path of the checkpoint involved.
        path: String,
        /// Underlying I/O or parse failure.
        message: String,
    },
    /// `--resume` pointed at a checkpoint recorded under different
    /// campaign parameters than the ones requested.
    ResumeMismatch(String),
    /// `--resume` was combined with a forced `--error-model analytic`:
    /// recorded epochs cannot be proven to share the estimator, so the
    /// combination is refused outright rather than risking a mixed
    /// lifetime curve.
    AnalyticResume {
        /// Path of the checkpoint that was offered for resumption.
        path: String,
    },
    /// The grid driver failed at a coordination step (spec parsing,
    /// manifest validation, lease claim, worker spawn, merge).
    Grid {
        /// What the driver was doing (e.g. `"spec"`, `"lease"`,
        /// `"spawn"`, `"merge"`).
        stage: String,
        /// Underlying failure.
        message: String,
    },
    /// The inference service failed to start or tear down cleanly.
    Service {
        /// What the service was doing (e.g. `"bind"`, `"join"`).
        stage: String,
        /// Underlying failure.
        message: String,
    },
}

impl std::fmt::Display for AccelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccelError::EmptyTestSet => {
                write!(f, "evaluation requested over an empty test set")
            }
            AccelError::ShapeMismatch { detail } => {
                write!(f, "test-set shape mismatch: {detail}")
            }
            AccelError::InvalidConfig(detail) => {
                write!(f, "invalid accelerator configuration: {detail}")
            }
            AccelError::Code(e) => write!(f, "code construction failed: {e}"),
            AccelError::WorkerPanic {
                shard,
                seed,
                message,
            } => write!(
                f,
                "worker shard {shard} (seed {seed}) panicked twice: {message}"
            ),
            AccelError::AllShardsLost { lost } => write!(
                f,
                "graceful degradation dropped every shard ({lost} samples); no results to report"
            ),
            AccelError::Checkpoint { path, message } => {
                write!(f, "checkpoint {path}: {message}")
            }
            AccelError::ResumeMismatch(detail) => {
                write!(f, "checkpoint does not match requested campaign: {detail}")
            }
            AccelError::AnalyticResume { path } => write!(
                f,
                "--resume {path} cannot be combined with --error-model analytic: \
                 recorded epochs cannot be proven to share the analytic estimator. \
                 Re-run from scratch, or resume with --error-model mc (or auto, \
                 which keeps the recorded model)"
            ),
            AccelError::Grid { stage, message } => {
                write!(f, "grid {stage}: {message}")
            }
            AccelError::Service { stage, message } => {
                write!(f, "inference service {stage}: {message}")
            }
        }
    }
}

impl std::error::Error for AccelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AccelError::Code(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodeError> for AccelError {
    fn from(e: CodeError) -> Self {
        AccelError::Code(e)
    }
}
