//! Crash-safe sharded campaign grid runner.
//!
//! Expands a JSON grid spec — (models × schemes × cell-bits ×
//! fault-rates × seeds) — into cells, fans the cells across worker
//! processes (or in-process worker threads), and coordinates entirely
//! through crash-safe substrates: each cell is an ordinary
//! [`crate::campaign`] with CRC'd A/B checkpoint slots, and the
//! driver's only state is a directory of atomically-written
//! [`lease`] files plus a derivable manifest. There is nothing to
//! lose: SIGKILL any worker, or the driver itself, at any moment, and
//! re-running the driver resumes to a merged `grid_summary.json` that
//! is byte-identical to the fault-free run (`tests/grid_soak.rs`
//! proves exactly that under seeded chaos injection).
//!
//! The division of trust, bottom to top:
//!
//! - **cell artifacts** (final JSON + checkpoint slots) are the truth;
//!   a worker re-claiming a cell resumes them via
//!   [`Campaign::new_or_resume`](crate::campaign::Campaign::new_or_resume);
//! - **leases** ([`lease`]) are coordination acceleration: they let a
//!   restarted driver skip verified-done cells and record lost cells,
//!   but every lease operation may fail without endangering results;
//! - **the manifest** pins the spec digest so two different sweeps
//!   cannot interleave in one directory; it is derivable and is
//!   rewritten if corrupt;
//! - **the merge** ([`merge`]) is a pure function of spec + artifacts,
//!   written atomically with read-back — killing it mid-write and
//!   re-running lands the identical bytes.
//!
//! Chaos seams [`Seam::ProcessSpawn`], [`Seam::LeaseWrite`] and
//! [`Seam::LeaseRead`] put every driver-side I/O decision under the
//! same deterministic injection the campaign substrate already
//! absorbs. DESIGN.md "Failure model & recovery" carries the recovery
//! matrix.

pub mod lease;
pub mod merge;
pub mod worker;

use std::collections::VecDeque;
use std::path::PathBuf;

use chaos::{ChaosSchedule, IoFault, Seam};
use serde::{Deserialize, Serialize};

use crate::analytic::ErrorModel;
use crate::campaign::CampaignConfig;
use crate::{AccelConfig, AccelError, ProtectionScheme};

pub use lease::{ClaimOutcome, LeaseState, LeaseView};
pub use merge::{CellStatus, GridSummary};
pub use worker::Launcher;

/// Grid spec format version.
pub const GRID_SPEC_VERSION: u64 = 1;

/// Manifest format version.
pub const GRID_MANIFEST_VERSION: u64 = 1;

/// Rolls chaos faults for the grid's three driver-side seams, owning
/// the per-seam operation counters (the same replayable-counter scheme
/// as `Campaign::io_fault`). Injected faults are announced as
/// `chaos_fault` obs events.
#[derive(Debug)]
pub struct ChaosDice {
    chaos: Option<ChaosSchedule>,
    // One counter per grid seam: ProcessSpawn, LeaseWrite, LeaseRead.
    counters: [u64; 3],
    #[cfg(test)]
    script: Option<IoFault>,
}

impl ChaosDice {
    /// Dice drawing from `chaos` (or never faulting when `None`).
    pub fn new(chaos: Option<ChaosSchedule>) -> ChaosDice {
        ChaosDice {
            chaos,
            counters: [0; 3],
            #[cfg(test)]
            script: None,
        }
    }

    /// Test-only dice that inject `fault` on the first lease write and
    /// roll clean afterwards — a deterministic one-shot for protocol
    /// tests.
    #[cfg(test)]
    pub(crate) fn scripted(fault: Option<IoFault>) -> ChaosDice {
        ChaosDice {
            chaos: None,
            counters: [0; 3],
            script: fault,
        }
    }

    /// The fault (if any) for the next operation at a grid seam.
    pub fn fault(&mut self, seam: Seam) -> Option<IoFault> {
        #[cfg(test)]
        if seam == Seam::LeaseWrite {
            if let Some(f) = self.script.take() {
                return Some(f);
            }
        }
        let schedule = self.chaos?;
        let slot = match seam {
            Seam::ProcessSpawn => 0,
            Seam::LeaseWrite => 1,
            Seam::LeaseRead => 2,
            _ => return None,
        };
        let index = self.counters[slot];
        self.counters[slot] += 1;
        let fault = schedule.io_fault(seam, index);
        if let Some(f) = &fault {
            obs::events::emit(
                obs::Event::new("chaos_fault")
                    .str("seam", seam.label())
                    .u64("index", index)
                    .str("fault", f.label()),
            );
        }
        fault
    }
}

/// A grid sweep specification, parsed from JSON on disk.
///
/// Every axis is explicit and every field is required — a spec that
/// omits an axis is rejected at parse time rather than silently
/// defaulted, because the spec digest pins the sweep's identity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Spec format version ([`GRID_SPEC_VERSION`]).
    pub version: u64,
    /// Workload models (`mlp1`, `mlp2`); one axis of the sweep.
    pub models: Vec<String>,
    /// Protection scheme labels (`NoECC`, `Static16`, `ABN-9`, …).
    pub schemes: Vec<String>,
    /// Bits per memristor cell.
    pub cell_bits: Vec<u64>,
    /// Full-array rewrites per epoch — the wear schedule that sweeps
    /// the fault-rate axis (via the endurance model).
    pub writes_per_epoch: Vec<f64>,
    /// Base RNG seeds (each below 2^53, the JSON-exact window).
    pub seeds: Vec<u64>,
    /// Lifetime epochs per cell.
    pub epochs: u64,
    /// Test samples per evaluation.
    pub samples: u64,
    /// Training examples for the workload recipe.
    pub train: u64,
    /// Worker threads per cell evaluation.
    pub threads: u64,
    /// Checkpoint cadence within each cell (0 = final only).
    pub checkpoint_every: u64,
    /// Writes absorbed before epoch 0.
    pub initial_writes: f64,
    /// Error model for every cell: `analytic`, `mc`, or `auto` (the
    /// PR 9 envelope; `auto` resolves to Monte-Carlo inside campaigns).
    pub error_model: String,
}

impl GridSpec {
    /// Parses and validates a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Grid`] (stage `spec`) on malformed JSON
    /// or any validation failure.
    pub fn from_json(text: &str) -> Result<GridSpec, AccelError> {
        let spec: GridSpec = serde_json::from_str(text).map_err(|e| AccelError::Grid {
            stage: "spec".into(),
            message: format!("parse: {e:?}"),
        })?;
        spec.validate()?;
        Ok(spec)
    }

    /// Serializes the spec canonically (compact JSON, struct field
    /// order) — the form the digest is computed over.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Grid`] if serialization fails.
    pub fn to_json(&self) -> Result<String, AccelError> {
        serde_json::to_string(self).map_err(|e| AccelError::Grid {
            stage: "spec".into(),
            message: format!("serialize: {e:?}"),
        })
    }

    /// Validates every axis and scalar field.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Grid`] (stage `spec`) naming the first
    /// offending field.
    pub fn validate(&self) -> Result<(), AccelError> {
        let fail = |message: String| {
            Err(AccelError::Grid {
                stage: "spec".into(),
                message,
            })
        };
        if self.version != GRID_SPEC_VERSION {
            return fail(format!(
                "spec version {} but this binary reads {GRID_SPEC_VERSION}",
                self.version
            ));
        }
        if self.models.is_empty()
            || self.schemes.is_empty()
            || self.cell_bits.is_empty()
            || self.writes_per_epoch.is_empty()
            || self.seeds.is_empty()
        {
            return fail("every axis (models, schemes, cell_bits, writes_per_epoch, seeds) must be non-empty".into());
        }
        for model in &self.models {
            if !matches!(model.as_str(), "mlp1" | "mlp2") {
                return fail(format!("unknown model {model} (try mlp1, mlp2)"));
            }
        }
        for label in &self.schemes {
            if ProtectionScheme::from_label(label).is_none() {
                return fail(format!(
                    "unknown scheme {label} (try NoECC, Static16, Static128, ABN-7..ABN-10)"
                ));
            }
        }
        for &bits in &self.cell_bits {
            if !(1..=8).contains(&bits) {
                return fail(format!("cell_bits {bits} outside 1..=8"));
            }
        }
        for &w in &self.writes_per_epoch {
            if !w.is_finite() || w <= 0.0 {
                return fail(format!("writes_per_epoch {w} must be finite and positive"));
            }
        }
        for &seed in &self.seeds {
            if seed >= (1u64 << 53) {
                return fail(format!(
                    "seed {seed} exceeds 2^53 and cannot round-trip through JSON"
                ));
            }
        }
        if self.epochs == 0 {
            return fail("epochs must be positive".into());
        }
        if self.samples == 0 || self.train == 0 {
            return fail("samples and train must be positive".into());
        }
        if self.threads == 0 {
            return fail("threads must be positive".into());
        }
        if ErrorModel::from_label(&self.error_model).is_none() {
            return fail(format!(
                "unknown error_model {} (try analytic, mc, auto)",
                self.error_model
            ));
        }
        Ok(())
    }

    /// CRC-32 digest of the canonical serialization — the sweep's
    /// identity, pinned in the manifest and the merged summary.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Grid`] if canonical serialization fails.
    pub fn digest(&self) -> Result<u64, AccelError> {
        Ok(u64::from(chaos::crc::crc32(self.to_json()?.as_bytes())))
    }

    /// Expands the spec into its cells, in the canonical order
    /// (models → schemes → cell_bits → writes_per_epoch → seeds).
    pub fn cells(&self) -> Vec<GridCell> {
        let mut out = Vec::new();
        for model in &self.models {
            for scheme in &self.schemes {
                for &bits in &self.cell_bits {
                    for &wpe in &self.writes_per_epoch {
                        for &seed in &self.seeds {
                            let index = out.len() as u64;
                            out.push(GridCell {
                                index,
                                id: format!(
                                    "{index:03}_{model}_{scheme}_{bits}b_w{wpe}_s{seed}"
                                ),
                                model: model.clone(),
                                scheme: scheme.clone(),
                                cell_bits: bits,
                                writes_per_epoch: wpe,
                                seed,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Builds the campaign configuration for one cell.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Grid`] when the cell's labels fail to
    /// parse (impossible for cells produced by [`GridSpec::cells`] on
    /// a validated spec).
    pub fn cell_config(&self, cell: &GridCell) -> Result<CampaignConfig, AccelError> {
        let scheme = ProtectionScheme::from_label(&cell.scheme).ok_or_else(|| {
            AccelError::Grid {
                stage: "spec".into(),
                message: format!("unknown scheme {}", cell.scheme),
            }
        })?;
        let error_model =
            ErrorModel::from_label(&self.error_model).ok_or_else(|| AccelError::Grid {
                stage: "spec".into(),
                message: format!("unknown error_model {}", self.error_model),
            })?;
        let base = AccelConfig::new(scheme).with_cell_bits(cell.cell_bits as u32);
        let mut config = CampaignConfig::new(base, self.epochs, cell.seed);
        config.threads = self.threads as usize;
        config.writes_per_epoch = cell.writes_per_epoch;
        config.initial_writes = self.initial_writes;
        config.checkpoint_every = self.checkpoint_every;
        config.error_model = error_model;
        Ok(config)
    }
}

/// One expanded grid cell: a point on every axis plus its stable id.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCell {
    /// Position in spec-expansion order (stable for a given spec).
    pub index: u64,
    /// Stable id: index + every axis value, used in artifact names.
    pub id: String,
    /// Workload model label.
    pub model: String,
    /// Protection scheme label.
    pub scheme: String,
    /// Bits per memristor cell.
    pub cell_bits: u64,
    /// Full-array rewrites per epoch.
    pub writes_per_epoch: f64,
    /// Base RNG seed.
    pub seed: u64,
}

/// The derivable manifest pinning a grid directory to one spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Manifest {
    /// Manifest format version ([`GRID_MANIFEST_VERSION`]).
    version: u64,
    /// [`GridSpec::digest`] of the owning spec.
    spec_digest: u64,
    /// Cell count (redundant with the digest; a human-readable check).
    cells: u64,
}

/// Driver knobs for one grid run.
#[derive(Debug, Clone)]
pub struct GridOptions {
    /// Concurrent worker slots.
    pub workers: usize,
    /// Extra attempts per cell beyond the first (seed-stable: attempt
    /// `k` of a cell derives the same worker chaos stream every run).
    pub cell_retries: u32,
    /// Cells that may be dropped with explicit gaps before the grid
    /// fails outright (graceful degradation, like `max_lost_shards`
    /// one level down).
    pub max_lost_cells: usize,
    /// Per-worker watchdog in milliseconds (0 = off). Process
    /// launchers kill and retry a worker past its deadline; in-process
    /// launchers cannot kill a thread and ignore it.
    pub watchdog_ms: u64,
    /// Extra retries for each lease/manifest read or write.
    pub lease_retries: u32,
    /// Driver-side chaos schedule; also seeds each worker's derived
    /// chaos stream.
    pub chaos: Option<ChaosSchedule>,
    /// Owner token recorded in leases (e.g. `driver-<pid>`). Never
    /// enters byte-compared artifacts.
    pub owner: String,
}

impl Default for GridOptions {
    fn default() -> GridOptions {
        GridOptions {
            workers: 2,
            cell_retries: 2,
            max_lost_cells: 0,
            watchdog_ms: 0,
            lease_retries: 3,
            chaos: None,
            owner: "driver".into(),
        }
    }
}

/// What one grid run did.
#[derive(Debug, Clone, PartialEq)]
pub struct GridReport {
    /// Cells verified complete (including ones done before this run).
    pub done: usize,
    /// Cells dropped under the `max_lost_cells` budget, by id.
    pub lost: Vec<String>,
    /// Cells whose artifacts were already complete when this run
    /// started (a resume skipping work).
    pub skipped: usize,
    /// Path of the merged columnar summary.
    pub summary_path: PathBuf,
}

/// Per-cell driver bookkeeping.
#[derive(Debug, Clone, PartialEq)]
enum CellProgress {
    Pending,
    Running,
    Done,
    Lost,
}

/// One occupied worker slot.
struct RunningCell {
    idx: usize,
    attempt: u32,
    generation: u64,
    started_ns: u64,
    deadline: Option<std::time::Instant>,
    handle: worker::Handle,
}

/// The grid driver: spec + directory + launcher + options.
pub struct Grid {
    spec: GridSpec,
    dir: PathBuf,
    launcher: Launcher,
    options: GridOptions,
}

/// Derives the chaos seed a worker runs under: a splitmix-style hash
/// of (grid seed, cell index, attempt), so retries of a cell draw a
/// fresh fault stream (a fixed stream could fail deterministically
/// forever) while staying fully replayable.
fn worker_chaos_seed(grid_seed: u64, cell_index: u64, attempt: u32) -> u64 {
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    mix(mix(grid_seed ^ cell_index.wrapping_mul(0x632B_E59B_D9B4_E019)) ^ (u64::from(attempt) + 1))
}

impl Grid {
    /// Builds a driver over `spec`, coordinating in `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Grid`] when the spec fails validation.
    pub fn new(
        spec: GridSpec,
        dir: PathBuf,
        launcher: Launcher,
        options: GridOptions,
    ) -> Result<Grid, AccelError> {
        spec.validate()?;
        Ok(Grid {
            spec,
            dir,
            launcher,
            options,
        })
    }

    /// The directory layout, relative to the grid dir.
    fn cells_dir(&self) -> PathBuf {
        self.dir.join("cells")
    }
    fn leases_dir(&self) -> PathBuf {
        self.dir.join("leases")
    }
    fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }
    fn artifact_path(&self, cell: &GridCell) -> PathBuf {
        self.cells_dir().join(format!("{}.json", cell.id))
    }
    fn events_path(&self, cell: &GridCell) -> PathBuf {
        self.cells_dir().join(format!("{}.events.jsonl", cell.id))
    }
    fn lease_path(&self, cell: &GridCell) -> PathBuf {
        self.leases_dir().join(format!("{}.lease", cell.id))
    }

    /// Validates (or writes) the manifest: a digest mismatch means the
    /// directory belongs to a different sweep and the run is refused;
    /// a corrupt or missing manifest is rewritten, because it is
    /// derivable from the spec.
    fn ensure_manifest(&self, dice: &mut ChaosDice) -> Result<(), AccelError> {
        let path = self.manifest_path();
        let digest = self.spec.digest()?;
        let manifest = Manifest {
            version: GRID_MANIFEST_VERSION,
            spec_digest: digest,
            cells: self.spec.cells().len() as u64,
        };
        if path.exists() {
            let mut parsed: Option<Manifest> = None;
            for _ in 0..=self.options.lease_retries {
                let fault = dice.fault(Seam::LeaseRead);
                if let Ok(bytes) = chaos::fs::read(&path, fault) {
                    if let Ok(text) = std::str::from_utf8(&bytes) {
                        if let Ok(m) = serde_json::from_str::<Manifest>(text) {
                            parsed = Some(m);
                            break;
                        }
                    }
                }
            }
            if let Some(existing) = parsed {
                if existing.spec_digest != digest {
                    return Err(AccelError::Grid {
                        stage: "manifest".into(),
                        message: format!(
                            "{} pins spec digest {:#010x}, but this spec digests to \
                             {:#010x}: refusing to mix two sweeps in one directory",
                            path.display(),
                            existing.spec_digest,
                            digest
                        ),
                    });
                }
                return Ok(());
            }
            // Present but unreadable/corrupt: derivable, so rewrite.
        }
        let json = serde_json::to_string_pretty(&manifest).map_err(|e| AccelError::Grid {
            stage: "manifest".into(),
            message: format!("serialize: {e:?}"),
        })?;
        let mut last = String::new();
        for _ in 0..=self.options.lease_retries {
            let fault = dice.fault(Seam::LeaseWrite);
            match chaos::fs::write_atomic(&path, json.as_bytes(), fault) {
                Ok(()) => return Ok(()),
                Err(e) => last = e.to_string(),
            }
        }
        Err(AccelError::Grid {
            stage: "manifest".into(),
            message: format!("manifest write failed every attempt: {last}"),
        })
    }

    /// Whether a cell's final artifact exists, parses, matches the
    /// cell, and covers every epoch. Reads roll the [`Seam::LeaseRead`]
    /// seam (the driver's verification-read seam) with retries.
    fn artifact_complete(&self, cell: &GridCell, dice: &mut ChaosDice) -> bool {
        let path = self.artifact_path(cell);
        if !path.exists() {
            return false;
        }
        for _ in 0..=self.options.lease_retries {
            let fault = dice.fault(Seam::LeaseRead);
            let Ok(bytes) = chaos::fs::read(&path, fault) else {
                continue;
            };
            let Ok(text) = std::str::from_utf8(&bytes) else {
                continue;
            };
            let Ok(state) = crate::campaign::CampaignState::from_json(text) else {
                // Parse failures are not transient; a corrupt final
                // artifact means the cell must re-run.
                return false;
            };
            return state.scheme == cell.scheme
                && state.seed == cell.seed
                && state.epochs == self.spec.epochs
                && state.completed.len() as u64 == self.spec.epochs;
        }
        false
    }

    /// Removes a cell's stale checkpoint slots. Analytic cells cannot
    /// resume (the estimator cannot be proven shared — see
    /// [`AccelError::AnalyticResume`]), so each attempt must start
    /// from a clean slate; analytic epochs are cheap enough that the
    /// recomputation is the safe trade.
    fn clear_cell_slots(&self, cell: &GridCell) {
        let artifact = self.artifact_path(cell);
        let name = artifact
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        for suffix in ["a", "b"] {
            let slot = artifact.with_file_name(format!("{name}.{suffix}"));
            if slot.exists() {
                // lint: allow(chaos_seam_coverage, idempotent removal of a stale slot; a failed removal only costs the next attempt an AnalyticResume refusal, which retries)
                let _ = std::fs::remove_file(&slot);
            }
        }
    }

    /// Runs the whole grid: claim, dispatch, retry, degrade, merge.
    /// Safe to re-run at any time; completed cells are skipped after
    /// artifact verification.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Grid`] when a cell exhausts its retries
    /// past the `max_lost_cells` budget, the directory belongs to a
    /// different spec, or the merge cannot complete.
    pub fn run(&mut self) -> Result<GridReport, AccelError> {
        let cells = self.spec.cells();
        self.ensure_dirs()?;
        let mut dice = ChaosDice::new(self.options.chaos);
        self.ensure_manifest(&mut dice)?;

        let analytic = self.spec.error_model == "analytic";
        let n = cells.len();
        let mut progress = vec![CellProgress::Pending; n];
        let mut attempts = vec![0u64; n];
        let mut floors = vec![0u64; n];
        let mut queue: VecDeque<(usize, u32)> = (0..n).map(|i| (i, 0)).collect();
        let mut running: Vec<RunningCell> = Vec::new();
        let mut lost: Vec<String> = Vec::new();
        let mut skipped = 0usize;

        let outcome = self.drive(
            &cells,
            &mut dice,
            analytic,
            &mut progress,
            &mut attempts,
            &mut floors,
            &mut queue,
            &mut running,
            &mut lost,
            &mut skipped,
        );
        // Whatever happened, never leak live workers past the driver.
        for slot in &mut running {
            slot.handle.kill();
        }
        outcome?;

        let statuses: Vec<CellStatus> = progress
            .iter()
            .map(|p| match p {
                CellProgress::Done => CellStatus::Done,
                _ => CellStatus::Lost,
            })
            .collect();
        let summary_path = merge::merge(
            &self.dir,
            &self.spec,
            &cells,
            &statuses,
            &attempts,
            &mut dice,
            self.options.lease_retries,
        )?;
        Ok(GridReport {
            done: progress.iter().filter(|p| **p == CellProgress::Done).count(),
            lost,
            skipped,
            summary_path,
        })
    }

    /// Merges without running any cells: every cell must already be
    /// complete (valid artifact) or recorded lost in its lease.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Grid`] (stage `merge`) naming the first
    /// incomplete cell.
    pub fn merge_only(&mut self) -> Result<GridReport, AccelError> {
        let cells = self.spec.cells();
        self.ensure_dirs()?;
        let mut dice = ChaosDice::new(self.options.chaos);
        self.ensure_manifest(&mut dice)?;
        let mut statuses = Vec::with_capacity(cells.len());
        let mut lost = Vec::new();
        for cell in &cells {
            if self.artifact_complete(cell, &mut dice) {
                statuses.push(CellStatus::Done);
                continue;
            }
            match lease::read(&self.lease_path(cell), &mut dice, self.options.lease_retries) {
                LeaseView::Valid(state) if state.status == "lost" => {
                    lost.push(cell.id.clone());
                    statuses.push(CellStatus::Lost);
                }
                _ => {
                    return Err(AccelError::Grid {
                        stage: "merge".into(),
                        message: format!(
                            "cell {} is neither complete nor recorded lost; run the \
                             grid (not --merge-only) to finish it",
                            cell.id
                        ),
                    });
                }
            }
        }
        let attempts = vec![0u64; cells.len()];
        let summary_path = merge::merge(
            &self.dir,
            &self.spec,
            &cells,
            &statuses,
            &attempts,
            &mut dice,
            self.options.lease_retries,
        )?;
        Ok(GridReport {
            done: statuses.iter().filter(|s| **s == CellStatus::Done).count(),
            lost,
            skipped: 0,
            summary_path,
        })
    }

    /// The dispatch loop, extracted so [`Grid::run`] can kill leftover
    /// workers on any error path.
    #[allow(clippy::too_many_arguments)]
    fn drive(
        &mut self,
        cells: &[GridCell],
        dice: &mut ChaosDice,
        analytic: bool,
        progress: &mut [CellProgress],
        attempts: &mut [u64],
        floors: &mut [u64],
        queue: &mut VecDeque<(usize, u32)>,
        running: &mut Vec<RunningCell>,
        lost: &mut Vec<String>,
        skipped: &mut usize,
    ) -> Result<(), AccelError> {
        let retries = self.options.lease_retries;
        while !queue.is_empty() || !running.is_empty() {
            // Fill free slots from the queue.
            while running.len() < self.options.workers.max(1) {
                let Some((idx, attempt)) = queue.pop_front() else {
                    break;
                };
                let cell = &cells[idx];
                let started_ns = obs::now_ns();

                // Fast path: the artifact is already complete (this
                // run finished it, or a previous driver died between
                // the final write and the lease seal).
                if self.artifact_complete(cell, dice) {
                    let generation = self.seal_done(cell, floors[idx].max(1), dice);
                    if attempt == 0 {
                        *skipped += 1;
                    }
                    progress[idx] = CellProgress::Done;
                    obs::events::emit(
                        obs::Event::new("grid_cell_done")
                            .str("cell", &cell.id)
                            .u64("index", cell.index)
                            .u64("generation", generation)
                            .u64("attempts", attempts[idx])
                            .u64("epochs", self.spec.epochs)
                            .u64("duration_ns", obs::now_ns().saturating_sub(started_ns)),
                    );
                    continue;
                }

                // Claim the lease. `force = true` past a `done` lease
                // whose artifact failed verification above — the lease
                // lied (or the artifact rotted) and the work must
                // re-run. Claim failure never blocks the cell: work is
                // idempotent and artifacts are the truth.
                let generation = match lease::claim(
                    &self.lease_path(cell),
                    &cell.id,
                    &self.options.owner,
                    floors[idx],
                    true,
                    dice,
                    retries,
                ) {
                    ClaimOutcome::Won {
                        generation,
                        takeover_from,
                    } => {
                        if let Some(prev) = takeover_from {
                            obs::events::emit(
                                obs::Event::new("lease_takeover")
                                    .str("cell", &cell.id)
                                    .u64("from_generation", prev.generation)
                                    .u64("to_generation", generation)
                                    .str("owner", &self.options.owner),
                            );
                        }
                        floors[idx] = generation;
                        generation
                    }
                    ClaimOutcome::AlreadyDone { generation } => generation,
                    ClaimOutcome::Lost { observed } => {
                        // Another live claimant — outside the one-
                        // driver contract. Back off and retry rather
                        // than fight.
                        floors[idx] = floors[idx].max(observed.generation);
                        queue.push_back((idx, attempt));
                        continue;
                    }
                    ClaimOutcome::Unrecorded { .. } => floors[idx].max(1),
                };

                if analytic {
                    self.clear_cell_slots(cell);
                }

                // Worker spawn, under the ProcessSpawn seam: a fault
                // here is a failed attempt that never launched.
                attempts[idx] += 1;
                if dice.fault(Seam::ProcessSpawn).is_some() {
                    self.attempt_failed(
                        cells, idx, attempt, "spawn", progress, queue, lost, dice,
                    )?;
                    continue;
                }
                let chaos_seed = self
                    .options
                    .chaos
                    .map(|s| worker_chaos_seed(s.seed(), cell.index, attempt));
                match self.launcher.launch(
                    &self.spec,
                    cell,
                    &self.artifact_path(cell),
                    &self.events_path(cell),
                    chaos_seed,
                ) {
                    Ok(handle) => {
                        progress[idx] = CellProgress::Running;
                        let deadline = (self.options.watchdog_ms > 0
                            && matches!(self.launcher, Launcher::Process { .. }))
                        .then(|| {
                            std::time::Instant::now()
                                + std::time::Duration::from_millis(self.options.watchdog_ms)
                        });
                        running.push(RunningCell {
                            idx,
                            attempt,
                            generation,
                            started_ns,
                            deadline,
                            handle,
                        });
                    }
                    Err(e) => {
                        self.attempt_failed(
                            cells,
                            idx,
                            attempt,
                            &format!("spawn: {e}"),
                            progress,
                            queue,
                            lost,
                            dice,
                        )?;
                    }
                }
            }

            // Poll the running slots.
            let mut finished: Vec<usize> = Vec::new();
            for (slot_i, slot) in running.iter_mut().enumerate() {
                match slot.handle.poll() {
                    worker::Poll::Running => {
                        if let Some(deadline) = slot.deadline {
                            if std::time::Instant::now() >= deadline {
                                slot.handle.kill();
                                finished.push(slot_i);
                            }
                        }
                    }
                    worker::Poll::Exited { .. } => finished.push(slot_i),
                }
            }
            // Resolve finished slots, highest index first so removal
            // does not shift the rest.
            finished.sort_unstable_by(|a, b| b.cmp(a));
            for slot_i in finished {
                let mut slot = running.remove(slot_i);
                let cell = &cells[slot.idx];
                let timed_out = slot
                    .deadline
                    .map(|d| std::time::Instant::now() >= d)
                    .unwrap_or(false);
                let (ok, detail) = match slot.handle.poll() {
                    worker::Poll::Exited { ok, detail } => (ok, detail),
                    worker::Poll::Running => (false, "killed by watchdog".into()),
                };
                if ok && self.artifact_complete(cell, dice) {
                    let generation = self.seal_done(cell, slot.generation, dice);
                    progress[slot.idx] = CellProgress::Done;
                    obs::events::emit(
                        obs::Event::new("grid_cell_done")
                            .str("cell", &cell.id)
                            .u64("index", cell.index)
                            .u64("generation", generation)
                            .u64("attempts", attempts[slot.idx])
                            .u64("epochs", self.spec.epochs)
                            .u64("duration_ns", obs::now_ns().saturating_sub(slot.started_ns)),
                    );
                } else {
                    let reason = if timed_out {
                        "watchdog".to_string()
                    } else if ok {
                        "verify".to_string()
                    } else {
                        format!("exit: {detail}")
                    };
                    self.attempt_failed(
                        cells,
                        slot.idx,
                        slot.attempt,
                        &reason,
                        progress,
                        queue,
                        lost,
                        dice,
                    )?;
                }
            }
            if !running.is_empty() {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        Ok(())
    }

    /// Seals a cell's lease `done` (best effort) and returns the
    /// sealed generation.
    fn seal_done(&self, cell: &GridCell, generation: u64, dice: &mut ChaosDice) -> u64 {
        let _ = lease::mark(
            &self.lease_path(cell),
            &cell.id,
            &self.options.owner,
            generation,
            "done",
            dice,
            self.options.lease_retries,
        );
        generation
    }

    /// Books one failed attempt: requeue while retries remain, then
    /// spend the `max_lost_cells` budget, then fail the grid.
    #[allow(clippy::too_many_arguments)]
    fn attempt_failed(
        &self,
        cells: &[GridCell],
        idx: usize,
        attempt: u32,
        reason: &str,
        progress: &mut [CellProgress],
        queue: &mut VecDeque<(usize, u32)>,
        lost: &mut Vec<String>,
        dice: &mut ChaosDice,
    ) -> Result<(), AccelError> {
        let cell = &cells[idx];
        if attempt < self.options.cell_retries {
            progress[idx] = CellProgress::Pending;
            queue.push_back((idx, attempt + 1));
            return Ok(());
        }
        let attempts = u64::from(attempt) + 1;
        if lost.len() < self.options.max_lost_cells {
            progress[idx] = CellProgress::Lost;
            lost.push(cell.id.clone());
            let _ = lease::mark(
                &self.lease_path(cell),
                &cell.id,
                &self.options.owner,
                attempts,
                "lost",
                dice,
                self.options.lease_retries,
            );
            obs::events::emit(
                obs::Event::new("grid_cell_lost")
                    .str("cell", &cell.id)
                    .u64("index", cell.index)
                    .u64("attempts", attempts)
                    .str("reason", reason),
            );
            return Ok(());
        }
        Err(AccelError::Grid {
            stage: "cells".into(),
            message: format!(
                "cell {} failed after {attempts} attempt(s) ({reason}) and the \
                 --max-lost-cells budget is exhausted",
                cell.id
            ),
        })
    }

    /// Creates the cells/ and leases/ directories.
    fn ensure_dirs(&self) -> Result<(), AccelError> {
        for dir in [self.cells_dir(), self.leases_dir()] {
            // lint: allow(chaos_seam_coverage, idempotent mkdir -p of the grid layout; it leaves no partial artifact to tear and its failures surface as typed Grid errors)
            std::fs::create_dir_all(&dir).map_err(|e| AccelError::Grid {
                stage: "layout".into(),
                message: format!("create {}: {e}", dir.display()),
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashMap;
    use std::sync::Arc;

    fn spec_2x1() -> GridSpec {
        GridSpec {
            version: GRID_SPEC_VERSION,
            models: vec!["mlp2".into()],
            schemes: vec!["NoECC".into(), "ABN-9".into()],
            cell_bits: vec![2],
            writes_per_epoch: vec![2e5],
            seeds: vec![41],
            epochs: 2,
            samples: 8,
            train: 400,
            threads: 2,
            checkpoint_every: 0,
            initial_writes: 0.0,
            // Analytic: fast enough for unit tests, and exercises the
            // clear-stale-slots path (analytic cells cannot resume).
            error_model: "analytic".into(),
        }
    }

    fn tiny_problems() -> HashMap<String, Arc<worker::Problem>> {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut net = neural::models::mlp2(&mut rng);
        let mut train = neural::data::digits(400, 1);
        neural::data::shuffle(&mut train, 2);
        for _ in 0..3 {
            net.train_epoch(&train.images, &train.labels, 32, 0.1);
        }
        let test = neural::data::digits(8, 99);
        let qnet = neural::QuantizedNetwork::from_network(&net);
        let mut problems = HashMap::new();
        problems.insert(
            "mlp2".to_string(),
            Arc::new((qnet, test.images, test.labels)),
        );
        problems
    }

    fn temp_grid_dir(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("grid-{}-{name}", std::process::id()))
    }

    #[test]
    fn spec_validation_names_the_offending_field() {
        let good = spec_2x1();
        assert!(good.validate().is_ok());

        let cases: Vec<(Box<dyn Fn(&mut GridSpec)>, &str)> = vec![
            (Box::new(|s| s.version = 99), "version"),
            (Box::new(|s| s.models.clear()), "non-empty"),
            (Box::new(|s| s.models = vec!["resnet".into()]), "unknown model"),
            (Box::new(|s| s.schemes = vec!["bogus".into()]), "unknown scheme"),
            (Box::new(|s| s.cell_bits = vec![9]), "cell_bits"),
            (Box::new(|s| s.writes_per_epoch = vec![-1.0]), "writes_per_epoch"),
            (Box::new(|s| s.seeds = vec![1u64 << 53]), "2^53"),
            (Box::new(|s| s.epochs = 0), "epochs"),
            (Box::new(|s| s.error_model = "psychic".into()), "error_model"),
        ];
        for (mutate, needle) in cases {
            let mut bad = good.clone();
            mutate(&mut bad);
            match bad.validate() {
                Err(AccelError::Grid { stage, message }) => {
                    assert_eq!(stage, "spec");
                    assert!(message.contains(needle), "{message:?} missing {needle:?}");
                }
                other => panic!("expected Grid error for {needle}, got {other:?}"),
            }
        }
    }

    #[test]
    fn expansion_order_ids_and_digest_are_stable() {
        let mut spec = spec_2x1();
        spec.seeds = vec![41, 42];
        let cells = spec.cells();
        // models × schemes × bits × wpe × seeds, seeds innermost.
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].id, "000_mlp2_NoECC_2b_w200000_s41");
        assert_eq!(cells[1].id, "001_mlp2_NoECC_2b_w200000_s42");
        assert_eq!(cells[2].scheme, "ABN-9");
        assert_eq!(cells[3].seed, 42);
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i as u64);
        }
        // The digest survives a JSON round-trip and notices any change.
        let digest = spec.digest().expect("digest");
        let reparsed = GridSpec::from_json(&spec.to_json().expect("json")).expect("reparse");
        assert_eq!(reparsed.digest().expect("digest"), digest);
        let mut other = spec.clone();
        other.epochs += 1;
        assert_ne!(other.digest().expect("digest"), digest);
    }

    #[test]
    fn cell_config_reflects_every_axis() {
        let spec = spec_2x1();
        let cells = spec.cells();
        let config = spec.cell_config(&cells[1]).expect("config");
        assert_eq!(config.base.scheme.label(), "ABN-9");
        assert_eq!(config.base.device.bits_per_cell, 2);
        assert_eq!(config.epochs, 2);
        assert_eq!(config.seed, 41);
        assert_eq!(config.writes_per_epoch, 2e5);
        assert_eq!(config.error_model, ErrorModel::Analytic);
    }

    #[test]
    fn grid_runs_resumes_and_merges_byte_identical_under_chaos() {
        let problems = tiny_problems();
        let spec = spec_2x1();

        // Fault-free reference run.
        let dir_a = temp_grid_dir("ref");
        let _ = std::fs::remove_dir_all(&dir_a);
        let mut grid = Grid::new(
            spec.clone(),
            dir_a.clone(),
            Launcher::InProcess {
                problems: problems.clone(),
            },
            GridOptions::default(),
        )
        .expect("grid");
        let report = grid.run().expect("run");
        assert_eq!(report.done, 2);
        assert!(report.lost.is_empty());
        let reference = std::fs::read(&report.summary_path).expect("summary");

        // Re-running the same directory is a pure resume: every cell
        // skips, and the summary bytes do not move.
        let report2 = grid.run().expect("rerun");
        assert_eq!(report2.skipped, 2);
        assert_eq!(std::fs::read(&report2.summary_path).expect("summary"), reference);

        // Merge-only over the finished directory reproduces the bytes.
        let report3 = grid.merge_only().expect("merge only");
        assert_eq!(report3.done, 2);
        assert_eq!(std::fs::read(&report3.summary_path).expect("summary"), reference);

        // A different spec is refused for the same directory.
        let mut other = spec.clone();
        other.epochs = 3;
        let mut wrong = Grid::new(
            other,
            dir_a.clone(),
            Launcher::InProcess {
                problems: problems.clone(),
            },
            GridOptions::default(),
        )
        .expect("grid");
        match wrong.run() {
            Err(AccelError::Grid { stage, .. }) => assert_eq!(stage, "manifest"),
            other => panic!("expected manifest refusal, got {other:?}"),
        }

        // The same grid under seeded chaos injection — lease faults,
        // spawn faults, worker-side write faults, retries — must land
        // byte-identical results.
        let dir_b = temp_grid_dir("chaos");
        let _ = std::fs::remove_dir_all(&dir_b);
        let mut chaotic = Grid::new(
            spec.clone(),
            dir_b.clone(),
            Launcher::InProcess { problems },
            GridOptions {
                chaos: Some(ChaosSchedule::standard(7)),
                cell_retries: 6,
                ..GridOptions::default()
            },
        )
        .expect("grid");
        let chaos_report = chaotic.run().expect("chaos run");
        assert_eq!(chaos_report.done, 2);
        assert_eq!(
            std::fs::read(&chaos_report.summary_path).expect("summary"),
            reference,
            "chaos-injected grid diverged from the fault-free bytes"
        );

        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn merge_only_refuses_incomplete_cells() {
        let dir = temp_grid_dir("incomplete");
        let _ = std::fs::remove_dir_all(&dir);
        let mut grid = Grid::new(
            spec_2x1(),
            dir.clone(),
            Launcher::InProcess {
                problems: HashMap::new(),
            },
            GridOptions::default(),
        )
        .expect("grid");
        match grid.merge_only() {
            Err(AccelError::Grid { stage, message }) => {
                assert_eq!(stage, "merge");
                assert!(message.contains("neither complete nor recorded lost"));
            }
            other => panic!("expected merge refusal, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lost_cells_degrade_gracefully_within_budget() {
        // No problem registered for the model: every launch fails, so
        // every cell exhausts its retries. With a budget covering all
        // cells the grid degrades; without one it errors.
        let spec = spec_2x1();
        let dir = temp_grid_dir("lost");
        let _ = std::fs::remove_dir_all(&dir);
        let mut grid = Grid::new(
            spec.clone(),
            dir.clone(),
            Launcher::InProcess {
                problems: HashMap::new(),
            },
            GridOptions {
                cell_retries: 1,
                max_lost_cells: 2,
                ..GridOptions::default()
            },
        )
        .expect("grid");
        let report = grid.run().expect("degraded run");
        assert_eq!(report.done, 0);
        assert_eq!(report.lost.len(), 2);
        let summary = std::fs::read_to_string(&report.summary_path).expect("summary");
        let parsed: merge::GridSummary = serde_json::from_str(&summary).expect("parse");
        assert_eq!(parsed.lost_cells.len(), 2);
        assert!(parsed.rows.cell_index.is_empty());
        assert_eq!(parsed.cells.status, vec!["lost", "lost"]);
        let _ = std::fs::remove_dir_all(&dir);

        let dir2 = temp_grid_dir("lost-over");
        let _ = std::fs::remove_dir_all(&dir2);
        let mut strict = Grid::new(
            spec,
            dir2.clone(),
            Launcher::InProcess {
                problems: HashMap::new(),
            },
            GridOptions {
                cell_retries: 1,
                max_lost_cells: 1,
                ..GridOptions::default()
            },
        )
        .expect("grid");
        match strict.run() {
            Err(AccelError::Grid { stage, message }) => {
                assert_eq!(stage, "cells");
                assert!(message.contains("--max-lost-cells"));
            }
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn worker_chaos_seed_varies_by_cell_and_attempt() {
        let base = worker_chaos_seed(7, 0, 0);
        assert_ne!(base, worker_chaos_seed(7, 1, 0));
        assert_ne!(base, worker_chaos_seed(7, 0, 1));
        assert_ne!(base, worker_chaos_seed(8, 0, 0));
        // Replayable: the same coordinates always derive the same seed.
        assert_eq!(base, worker_chaos_seed(7, 0, 0));
    }
}
