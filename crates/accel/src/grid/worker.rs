//! Grid worker launchers: one cell, one campaign, one worker.
//!
//! A worker owns exactly one cell attempt. In **process** mode the
//! driver spawns a fresh `campaign` CLI invocation per attempt —
//! crash isolation for free (SIGKILL the worker; its cell resumes from
//! its own checkpoint slots) and the mode the grid soak kills things
//! in. In **in-process** mode the worker is a thread running
//! [`Campaign`] directly against
//! pre-trained problems the caller supplies — no subprocess overhead,
//! used by unit tests and callers embedding the grid in a larger
//! program.
//!
//! Both modes write the exact same artifacts through the exact same
//! campaign substrate, so the driver cannot tell them apart by their
//! results — only by what it can kill.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use chaos::ChaosSchedule;
use neural::{QuantizedNetwork, Tensor};

use super::{GridCell, GridSpec};
use crate::campaign::Campaign;
use crate::AccelError;

/// A pre-trained workload an in-process worker evaluates: quantized
/// network, test images, test labels.
pub type Problem = (QuantizedNetwork, Tensor, Vec<usize>);

/// How the driver turns a claimed cell into running work.
pub enum Launcher {
    /// Spawn `<program> campaign …` per attempt (the production mode;
    /// killable, crash-isolated).
    Process {
        /// Path of the CLI binary to spawn.
        program: PathBuf,
    },
    /// Run the campaign on a thread against caller-supplied problems,
    /// keyed by model label (`mlp1` / `mlp2`).
    InProcess {
        /// Pre-trained problems shared across worker threads.
        problems: HashMap<String, Arc<Problem>>,
    },
}

/// A live worker the driver polls.
pub enum Handle {
    /// A spawned CLI subprocess.
    Process(Child),
    /// A worker thread, plus the cached outcome once joined (so
    /// repeated polls keep reporting the real result instead of
    /// consuming it on the first join).
    Thread {
        /// The join handle; `None` once joined.
        handle: Option<std::thread::JoinHandle<Result<(), AccelError>>>,
        /// Outcome cached at join time.
        outcome: Option<Poll>,
    },
}

/// One poll of a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum Poll {
    /// Still working.
    Running,
    /// Finished. `ok` is process exit-success / thread `Ok`; `detail`
    /// carries the exit status or error text for retry diagnostics.
    Exited {
        /// Whether the worker reported success.
        ok: bool,
        /// Exit status or error description.
        detail: String,
    },
}

impl Handle {
    /// Non-blocking status check. Polling an exited worker again
    /// re-reports the cached outcome.
    pub fn poll(&mut self) -> Poll {
        match self {
            Handle::Process(child) => match child.try_wait() {
                Ok(Some(status)) => Poll::Exited {
                    ok: status.success(),
                    detail: status.to_string(),
                },
                Ok(None) => Poll::Running,
                Err(e) => Poll::Exited {
                    ok: false,
                    detail: format!("wait failed: {e}"),
                },
            },
            Handle::Thread { handle, outcome } => {
                if let Some(cached) = outcome.as_ref() {
                    return cached.clone();
                }
                let finished = handle.as_ref().map(|h| h.is_finished()).unwrap_or(true);
                if !finished {
                    return Poll::Running;
                }
                let polled = match handle.take() {
                    Some(h) => match h.join() {
                        Ok(Ok(())) => Poll::Exited {
                            ok: true,
                            detail: "ok".into(),
                        },
                        Ok(Err(e)) => Poll::Exited {
                            ok: false,
                            detail: e.to_string(),
                        },
                        Err(_) => Poll::Exited {
                            ok: false,
                            detail: "worker thread panicked".into(),
                        },
                    },
                    None => Poll::Exited {
                        ok: false,
                        detail: "no thread handle".into(),
                    },
                };
                *outcome = Some(polled.clone());
                polled
            }
        }
    }

    /// Kills the worker if it can be killed. Subprocesses get SIGKILL
    /// (their cells resume from checkpoint slots — that is the whole
    /// design); threads cannot be killed and are left to finish, which
    /// is why watchdogs only apply to process launchers.
    pub fn kill(&mut self) {
        if let Handle::Process(child) = self {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl Launcher {
    /// Starts one attempt of `cell`, writing its final artifact to
    /// `artifact` and its event log to `events`. `chaos_seed` seeds
    /// the worker's own fault injection (derived per attempt by the
    /// driver; `None` in production).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Grid`] (stage `spawn`) when the process
    /// cannot be spawned or the in-process launcher has no problem for
    /// the cell's model.
    pub fn launch(
        &self,
        spec: &GridSpec,
        cell: &GridCell,
        artifact: &Path,
        events: &Path,
        chaos_seed: Option<u64>,
    ) -> Result<Handle, AccelError> {
        match self {
            Launcher::Process { program } => {
                let mut cmd = Command::new(program);
                cmd.arg("campaign")
                    .arg(&cell.scheme)
                    .arg(spec.epochs.to_string())
                    .arg("--model")
                    .arg(&cell.model)
                    .arg("--samples")
                    .arg(spec.samples.to_string())
                    .arg("--train")
                    .arg(spec.train.to_string())
                    .arg("--seed")
                    .arg(cell.seed.to_string())
                    .arg("--threads")
                    .arg(spec.threads.to_string())
                    .arg("--cell-bits")
                    .arg(cell.cell_bits.to_string())
                    // f64 Display is shortest-roundtrip, so the worker
                    // parses back the exact spec value.
                    .arg("--writes-per-epoch")
                    .arg(format!("{}", cell.writes_per_epoch))
                    .arg("--initial-writes")
                    .arg(format!("{}", spec.initial_writes))
                    .arg("--checkpoint-every")
                    .arg(spec.checkpoint_every.to_string())
                    .arg("--error-model")
                    .arg(&spec.error_model)
                    .arg("--out")
                    .arg(artifact)
                    .arg("--events")
                    .arg(events)
                    .arg("--resume-or-new")
                    .stdin(Stdio::null())
                    .stdout(Stdio::null())
                    .stderr(Stdio::null());
                if let Some(seed) = chaos_seed {
                    cmd.arg("--chaos-seed").arg(seed.to_string());
                    // Under injected faults a worker needs headroom to
                    // absorb them; seed-stable retries keep results
                    // byte-identical regardless.
                    cmd.arg("--shard-retries").arg("4");
                }
                let child = cmd.spawn().map_err(|e| AccelError::Grid {
                    stage: "spawn".into(),
                    message: format!("spawn {} for {}: {e}", program.display(), cell.id),
                })?;
                Ok(Handle::Process(child))
            }
            Launcher::InProcess { problems } => {
                let problem =
                    problems
                        .get(&cell.model)
                        .cloned()
                        .ok_or_else(|| AccelError::Grid {
                            stage: "spawn".into(),
                            message: format!(
                                "no in-process problem registered for model {}",
                                cell.model
                            ),
                        })?;
                let mut config = spec.cell_config(cell)?;
                if chaos_seed.is_some() {
                    config.base.shard_retries = config.base.shard_retries.max(4);
                }
                let artifact = artifact.to_path_buf();
                let chaos = chaos_seed.map(ChaosSchedule::standard);
                let handle = std::thread::spawn(move || -> Result<(), AccelError> {
                    let (qnet, images, labels) = &*problem;
                    let mut campaign =
                        Campaign::new_or_resume_with_chaos(config, &artifact, chaos)?;
                    campaign.run(qnet, images, labels)?;
                    // A resume that found every epoch already in the
                    // slots has nothing to run; make sure the final
                    // artifact still lands.
                    campaign.finalize()
                });
                Ok(Handle::Thread {
                    handle: Some(handle),
                    outcome: None,
                })
            }
        }
    }
}
