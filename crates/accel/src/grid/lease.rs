//! The grid's atomically-claimed, generation-numbered lease files.
//!
//! One lease file per grid cell records who is (or was) responsible
//! for it. Leases are an *acceleration*, never the truth: the cell's
//! checkpoint slots and final artifact are what recovery actually
//! trusts, so every lease operation is allowed to fail without
//! endangering results — a driver that cannot record a claim simply
//! proceeds and re-verifies artifacts where a lease would have let it
//! skip.
//!
//! # Protocol
//!
//! A lease is a CRC'd envelope (same shape as the campaign checkpoint
//! slots) over a tiny JSON state: cell id, owner token, generation,
//! status (`claimed` / `done` / `lost`). Claiming is
//! read → write(+1) → read-back:
//!
//! 1. read the current lease ([`Seam::LeaseRead`] under chaos). A
//!    missing or unreadable lease observes generation 0; `done` is
//!    terminal and wins immediately.
//! 2. write the whole file atomically ([`chaos::fs::write_atomic`],
//!    [`Seam::LeaseWrite`]) with `generation = max(observed, floor)+1`
//!    and status `claimed`. The `floor` is the highest generation this
//!    claimant has ever seen for the cell, so a torn lease cannot roll
//!    its own clock backwards.
//! 3. read the file back and compare owner + generation: seeing its
//!    own write means the claim is **verified won**; seeing another
//!    owner means a concurrent claimant raced past (the caller backs
//!    off); an unreadable read-back after retries degrades to
//!    [`ClaimOutcome::Unrecorded`] — the caller may still run the cell
//!    because cell work is idempotent.
//!
//! Taking over a lease whose recorded owner differs is legal by
//! construction — the operator contract is one live driver per grid
//! directory, so a foreign `claimed` lease can only have been left by
//! a killed driver. The takeover is surfaced as a `lease_takeover`
//! event, so a v4 event log proves whether recovery ever happened.
//!
//! Generation numbers are monotone per lease lifetime: every verified
//! transition writes strictly more than it observed, and the floor
//! keeps one claimant from regressing its own clock. A lease destroyed
//! beyond parsing (torn + bit-flipped past the CRC) starts a new
//! lifetime at generation `floor + 1`; the recovery matrix in
//! DESIGN.md spells out why that is safe (artifacts, not leases, carry
//! results).

use std::path::Path;

use chaos::Seam;
use serde::{Deserialize, Serialize};

use super::ChaosDice;

/// Lease envelope format version.
pub const LEASE_VERSION: u64 = 1;

/// Envelope header line preceding the lease state JSON.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct LeaseHeader {
    /// Envelope format version (equals [`LEASE_VERSION`]).
    lease: u64,
    /// Byte length of the state payload after the header line.
    len: u64,
    /// CRC-32 (IEEE) of the state payload bytes.
    crc32: u64,
}

/// The recorded coordination state of one grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeaseState {
    /// Cell id the lease belongs to (defense against misplaced files).
    pub cell: String,
    /// Claimant token (e.g. `driver-<pid>`); compared on read-back.
    pub owner: String,
    /// Claim generation, strictly increasing per lease lifetime.
    pub generation: u64,
    /// `claimed`, `done`, or `lost`. Only `done` is terminal.
    pub status: String,
}

/// What a lease read observed.
#[derive(Debug, Clone, PartialEq)]
pub enum LeaseView {
    /// No lease file exists (cell never claimed).
    Missing,
    /// The lease parsed and its CRC verified.
    Valid(LeaseState),
    /// The file exists but cannot be trusted (torn, corrupt, or the
    /// read itself failed every retry).
    Corrupt(String),
}

/// The result of a claim attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum ClaimOutcome {
    /// The read-back saw our own write: the claim is verified.
    Won {
        /// Generation the claim was sealed at.
        generation: u64,
        /// The previous owner, when this claim displaced a foreign
        /// lease (the caller emits `lease_takeover`).
        takeover_from: Option<LeaseState>,
    },
    /// The lease is `done`: the cell's work is complete and terminal.
    AlreadyDone {
        /// Generation the cell was sealed at.
        generation: u64,
    },
    /// The read-back saw a different owner: a concurrent claimant won.
    Lost {
        /// The state the read-back observed.
        observed: LeaseState,
    },
    /// The claim could not be durably recorded (every write or
    /// read-back attempt failed). The caller may still run the cell —
    /// work is idempotent — but gets no skip/coordination benefit.
    Unrecorded {
        /// Why the last attempt failed.
        reason: String,
    },
}

/// Renders a lease file: header line, newline, state JSON.
fn render(state: &LeaseState) -> Result<Vec<u8>, String> {
    let body = serde_json::to_string(state).map_err(|e| format!("serialize lease: {e:?}"))?;
    let body = body.as_bytes();
    let mut out = format!(
        "{{\"lease\":{LEASE_VERSION},\"len\":{},\"crc32\":{}}}\n",
        body.len(),
        chaos::crc::crc32(body)
    )
    .into_bytes();
    out.extend_from_slice(body);
    Ok(out)
}

/// Parses and verifies lease bytes: header shape, payload length,
/// CRC-32, then the state JSON.
fn parse(bytes: &[u8]) -> Result<LeaseState, String> {
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or("no envelope header line")?;
    let header_text =
        std::str::from_utf8(&bytes[..nl]).map_err(|_| "envelope header is not UTF-8")?;
    let header: LeaseHeader =
        serde_json::from_str(header_text).map_err(|e| format!("bad envelope header: {e:?}"))?;
    if header.lease != LEASE_VERSION {
        return Err(format!(
            "lease version {} but this binary writes {LEASE_VERSION}",
            header.lease
        ));
    }
    let body = &bytes[nl + 1..];
    if body.len() as u64 != header.len {
        return Err(format!(
            "payload is {} bytes but the header promises {} (torn write)",
            body.len(),
            header.len
        ));
    }
    let crc = u64::from(chaos::crc::crc32(body));
    if crc != header.crc32 {
        return Err(format!(
            "payload CRC-32 {crc:#010x} does not match header {:#010x} (corruption)",
            header.crc32
        ));
    }
    let text = std::str::from_utf8(body).map_err(|_| "payload is not UTF-8")?;
    serde_json::from_str(text).map_err(|e| format!("bad lease state: {e:?}"))
}

/// Reads a lease once (one chaos roll on [`Seam::LeaseRead`]).
fn read_once(path: &Path, dice: &mut ChaosDice) -> LeaseView {
    if !path.exists() {
        return LeaseView::Missing;
    }
    let fault = dice.fault(Seam::LeaseRead);
    match chaos::fs::read(path, fault) {
        Ok(bytes) => match parse(&bytes) {
            Ok(state) => LeaseView::Valid(state),
            Err(reason) => LeaseView::Corrupt(reason),
        },
        Err(e) => LeaseView::Corrupt(format!("read failed: {e}")),
    }
}

/// Reads a lease, retrying corrupt/failed reads up to `retries` extra
/// times (each with a fresh chaos roll, so an injected read fault does
/// not repeat deterministically).
pub fn read(path: &Path, dice: &mut ChaosDice, retries: u32) -> LeaseView {
    let mut view = read_once(path, dice);
    for _ in 0..retries {
        match view {
            LeaseView::Corrupt(_) => view = read_once(path, dice),
            _ => break,
        }
    }
    view
}

/// Writes a lease atomically, retrying failed writes up to `retries`
/// extra times. Does not read back; [`claim`] and [`mark`] do.
pub fn write(
    path: &Path,
    state: &LeaseState,
    dice: &mut ChaosDice,
    retries: u32,
) -> Result<(), String> {
    let payload = render(state)?;
    let mut last = String::new();
    for _ in 0..=retries {
        let fault = dice.fault(Seam::LeaseWrite);
        match chaos::fs::write_atomic(path, &payload, fault) {
            Ok(()) => return Ok(()),
            Err(e) => last = e.to_string(),
        }
    }
    Err(format!("lease write failed every attempt: {last}"))
}

/// Claims `cell` for `owner`: read, write `max(observed, floor) + 1`,
/// read back and verify. See the module docs for the full protocol.
///
/// `force` re-claims even a `done` lease — the driver passes it after
/// the cell's artifact failed verification, when the lease's word must
/// yield to the (missing) truth. Without `force`, `done` is terminal.
pub fn claim(
    path: &Path,
    cell: &str,
    owner: &str,
    floor: u64,
    force: bool,
    dice: &mut ChaosDice,
    retries: u32,
) -> ClaimOutcome {
    let (observed, takeover_from) = match read(path, dice, retries) {
        LeaseView::Valid(state) => {
            if state.status == "done" && !force {
                return ClaimOutcome::AlreadyDone {
                    generation: state.generation,
                };
            }
            let takeover = (state.owner != owner).then(|| state.clone());
            (state.generation, takeover)
        }
        LeaseView::Missing => (0, None),
        // An unreadable lease observes generation 0; the floor keeps
        // our own clock from regressing, and a foreign lease lifetime
        // legitimately restarts (the artifacts carry the real state).
        LeaseView::Corrupt(_) => (0, None),
    };
    let generation = observed.max(floor) + 1;
    let state = LeaseState {
        cell: cell.to_string(),
        owner: owner.to_string(),
        generation,
        status: "claimed".to_string(),
    };
    if let Err(reason) = write(path, &state, dice, retries) {
        return ClaimOutcome::Unrecorded { reason };
    }
    match read(path, dice, retries) {
        LeaseView::Valid(seen) if seen.owner == state.owner && seen.generation == generation => {
            ClaimOutcome::Won {
                generation,
                takeover_from,
            }
        }
        LeaseView::Valid(observed) => ClaimOutcome::Lost { observed },
        LeaseView::Missing => ClaimOutcome::Unrecorded {
            reason: "lease vanished between write and read-back".into(),
        },
        LeaseView::Corrupt(reason) => ClaimOutcome::Unrecorded {
            reason: format!("read-back unverifiable: {reason}"),
        },
    }
}

/// Seals a cell's lease at `status` (`done` / `lost`), read-back
/// verified. Failure is reported but non-fatal to the grid: the merge
/// step trusts artifacts, not leases.
pub fn mark(
    path: &Path,
    cell: &str,
    owner: &str,
    generation: u64,
    status: &str,
    dice: &mut ChaosDice,
    retries: u32,
) -> Result<(), String> {
    let state = LeaseState {
        cell: cell.to_string(),
        owner: owner.to_string(),
        generation,
        status: status.to_string(),
    };
    write(path, &state, dice, retries)?;
    match read(path, dice, retries) {
        LeaseView::Valid(seen) if seen == state => Ok(()),
        LeaseView::Valid(seen) => Err(format!(
            "read-back saw {}:{} ({}) instead of our seal",
            seen.owner, seen.generation, seen.status
        )),
        LeaseView::Missing => Err("lease vanished between write and read-back".into()),
        LeaseView::Corrupt(reason) => Err(format!("read-back unverifiable: {reason}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::path::PathBuf;

    fn quiet_dice() -> ChaosDice {
        ChaosDice::new(None)
    }

    fn temp_lease(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("lease-{}-{name}.lease", std::process::id()))
    }

    #[test]
    fn claim_then_done_is_terminal() {
        let path = temp_lease("terminal");
        let _ = std::fs::remove_file(&path);
        let mut dice = quiet_dice();
        let won = claim(&path, "c0", "driver-1", 0, false, &mut dice, 2);
        let ClaimOutcome::Won { generation, takeover_from } = won else {
            panic!("expected Won, got {won:?}");
        };
        assert_eq!(generation, 1);
        assert!(takeover_from.is_none());
        mark(&path, "c0", "driver-1", generation, "done", &mut dice, 2).expect("seal done");
        // Every later claim — same or different owner — sees terminal.
        for owner in ["driver-1", "driver-2"] {
            assert_eq!(
                claim(&path, "c0", owner, 0, false, &mut dice, 2),
                ClaimOutcome::AlreadyDone { generation: 1 }
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn takeover_reports_previous_owner_and_bumps_generation() {
        let path = temp_lease("takeover");
        let _ = std::fs::remove_file(&path);
        let mut dice = quiet_dice();
        let ClaimOutcome::Won { generation: g1, .. } =
            claim(&path, "c1", "driver-old", 0, false, &mut dice, 2)
        else {
            panic!("first claim failed");
        };
        // A new driver (the old one is dead — the operator contract)
        // takes the cell over; the displaced lease is reported.
        match claim(&path, "c1", "driver-new", 0, false, &mut dice, 2) {
            ClaimOutcome::Won {
                generation,
                takeover_from: Some(prev),
            } => {
                assert_eq!(generation, g1 + 1);
                assert_eq!(prev.owner, "driver-old");
                assert_eq!(prev.generation, g1);
            }
            other => panic!("expected takeover Won, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn floor_prevents_own_clock_regression_after_corruption() {
        let path = temp_lease("floor");
        let _ = std::fs::remove_file(&path);
        let mut dice = quiet_dice();
        let ClaimOutcome::Won { generation, .. } =
            claim(&path, "c2", "driver-1", 0, false, &mut dice, 2)
        else {
            panic!("claim failed");
        };
        let ClaimOutcome::Won { generation: g2, .. } =
            claim(&path, "c2", "driver-1", generation, false, &mut dice, 2)
        else {
            panic!("re-claim failed");
        };
        assert!(g2 > generation);
        // Destroy the lease beyond parsing; the floor still advances
        // the claimant's own clock.
        std::fs::write(&path, b"garbage").expect("corrupt");
        match claim(&path, "c2", "driver-1", g2, false, &mut dice, 2) {
            ClaimOutcome::Won { generation: g3, .. } => assert!(g3 > g2, "{g3} <= {g2}"),
            other => panic!("expected Won, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    // The interleaving model: each op is one full claim or seal by one
    // of two claimants, with an optional injected write fault for its
    // lease write. Ops apply sequentially in an arbitrary order —
    // the histories a single-file rename protocol can linearize — and
    // the properties the grid relies on must hold for every history:
    //
    // 1. generation-monotone: within one lease lifetime (between
    //    destructions), valid on-disk generations never decrease, and
    //    each claimant's verified wins strictly exceed its floor;
    // 2. done is terminal: after any verified `done` seal, every later
    //    claim returns AlreadyDone;
    // 3. idempotent replay: the same history replayed from scratch
    //    lands the same final lease bytes.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn claims_are_generation_monotone_and_idempotent(
            ops in proptest::collection::vec((0u8..2, 0u8..4), 1..24),
            // 24 encodes "never seal"; the vendored proptest has no
            // Option strategy.
            seal_at_raw in 0usize..25,
        ) {
            let seal_at = (seal_at_raw < 24).then_some(seal_at_raw);
            // The vendored proptest's prop_assert* are plain asserts,
            // so the runner can be a panicking helper function.
            fn run(
                tag: &str,
                ops: &[(u8, u8)],
                seal_at: Option<usize>,
            ) -> (Vec<u8>, bool) {
                let path = std::env::temp_dir().join(format!(
                    "lease-prop-{}-{tag}.lease",
                    std::process::id()
                ));
                let _ = std::fs::remove_file(&path);
                // Per-claimant floors, as the driver keeps them.
                let mut floors = [0u64; 2];
                let mut done_sealed = false;
                // Generation of the last valid probe, `None` across a
                // lifetime boundary (missing or destroyed lease).
                let mut prev_valid: Option<u64> = None;
                for (step, &(who, fault_kind)) in ops.iter().enumerate() {
                    let who = who as usize;
                    let owner = ["driver-a", "driver-b"][who];
                    // Inject the chosen fault into this op's first
                    // lease write; retries then roll clean, which is
                    // what the schedule's independent rolls give in
                    // practice.
                    let mut dice = ChaosDice::scripted(match fault_kind {
                        1 => Some(chaos::IoFault::Error(chaos::IoErrorKind::Eio)),
                        2 => Some(chaos::IoFault::Torn { roll: step as u64 }),
                        3 => Some(chaos::IoFault::BitFlip { roll: step as u64 }),
                        _ => None,
                    });
                    if seal_at == Some(step) && !done_sealed {
                        let gen = floors[who].max(prev_valid.unwrap_or(0)) + 1;
                        if mark(&path, "cell", owner, gen, "done", &mut dice, 3).is_ok() {
                            done_sealed = true;
                            floors[who] = gen;
                        }
                    } else {
                        match claim(&path, "cell", owner, floors[who], false, &mut dice, 3) {
                            ClaimOutcome::Won { generation, .. } => {
                                prop_assert!(
                                    generation > floors[who],
                                    "claimant {owner} regressed its own clock"
                                );
                                prop_assert!(!done_sealed, "claim won after terminal done");
                                floors[who] = generation;
                            }
                            ClaimOutcome::AlreadyDone { .. } => {
                                prop_assert!(done_sealed, "AlreadyDone before any done seal");
                            }
                            ClaimOutcome::Lost { .. } => {
                                // Sequential full claims cannot lose
                                // their own read-back.
                                prop_assert!(
                                    false,
                                    "sequential claim lost its own read-back"
                                );
                            }
                            ClaimOutcome::Unrecorded { .. } => {
                                // Injected fault survived retries; the
                                // caller proceeds without coordination.
                            }
                        }
                    }
                    // Generation-monotone within a lease lifetime:
                    // consecutive valid probes never regress. A
                    // destroyed lease (corrupt probe) starts a new
                    // lifetime and resets the clock — the documented
                    // recovery semantics.
                    let mut probe = ChaosDice::new(None);
                    match read(&path, &mut probe, 0) {
                        LeaseView::Valid(state) => {
                            if let Some(prev) = prev_valid {
                                prop_assert!(
                                    state.generation >= prev,
                                    "on-disk generation regressed {prev} -> {} \
                                     within one lease lifetime",
                                    state.generation
                                );
                            }
                            prev_valid = Some(state.generation);
                        }
                        LeaseView::Missing | LeaseView::Corrupt(_) => prev_valid = None,
                    }
                }
                let bytes = std::fs::read(&path).unwrap_or_default();
                let _ = std::fs::remove_file(&path);
                (bytes, done_sealed)
            }
            let (first, first_done) = run("x", &ops, seal_at);
            let (second, second_done) = run("y", &ops, seal_at);
            // Replaying the identical history is byte-identical: the
            // protocol holds no hidden nondeterminism.
            prop_assert_eq!(first, second);
            prop_assert_eq!(first_done, second_done);
        }
    }
}
