//! Columnar aggregation of a finished grid into `grid_summary.json`.
//!
//! The merge is deliberately a **pure function** of (spec, cell
//! artifacts, statuses): it holds no state of its own, reads only
//! CRC-verifiable inputs, and writes its one output atomically with
//! read-back. That purity is what makes it resumable by construction —
//! kill the merging driver at any instant and re-running produces the
//! identical bytes, because there is no partial progress to corrupt
//! and no wall-clock or randomness in the output. Everything
//! non-deterministic (attempt counts, event-log line counts) goes to a
//! best-effort `grid_telemetry.json` sidecar that is explicitly
//! excluded from byte comparison.

use std::path::{Path, PathBuf};

use chaos::Seam;
use serde::{Deserialize, Serialize};

use super::{ChaosDice, GridCell, GridSpec};
use crate::campaign::CampaignState;
use crate::AccelError;

/// Summary format version.
pub const GRID_SUMMARY_VERSION: u64 = 1;

/// A cell's terminal disposition, as the driver resolved it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellStatus {
    /// Final artifact verified complete.
    Done,
    /// Dropped under the `max_lost_cells` budget; its rows are absent
    /// and its id is listed in [`GridSummary::lost_cells`].
    Lost,
}

/// Per-cell metadata, struct-of-arrays: element `i` of every column
/// describes cell `i` in spec-expansion order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellColumns {
    /// Cell index (equals position; kept explicit for self-description).
    pub index: Vec<u64>,
    /// Stable cell ids.
    pub id: Vec<String>,
    /// Workload model labels.
    pub model: Vec<String>,
    /// Protection scheme labels.
    pub scheme: Vec<String>,
    /// Bits per memristor cell.
    pub cell_bits: Vec<u64>,
    /// Full-array rewrites per epoch.
    pub writes_per_epoch: Vec<f64>,
    /// Base RNG seeds.
    pub seed: Vec<u64>,
    /// `done` or `lost`.
    pub status: Vec<String>,
}

/// Per-epoch results, struct-of-arrays: element `j` of every column is
/// one (cell, epoch) row, ordered by cell index then epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochColumns {
    /// Owning cell's index.
    pub cell_index: Vec<u64>,
    /// Epoch index within the cell.
    pub epoch: Vec<u64>,
    /// Full-array writes absorbed before the epoch.
    pub writes: Vec<f64>,
    /// Stuck-cell fraction at those writes.
    pub fault_rate: Vec<f64>,
    /// Top-1 misclassification rate.
    pub misclassification: Vec<f64>,
    /// Top-5 misclassification rate.
    pub top5_misclassification: Vec<f64>,
    /// Fraction of predictions flipped vs the exact result.
    pub flip_rate: Vec<f64>,
    /// Evaluated examples.
    pub samples: Vec<u64>,
    /// ECU group-cycles decoded clean.
    pub clean: Vec<u64>,
    /// ECU group-cycles corrected by a table hit.
    pub corrected: Vec<u64>,
    /// ECU group-cycles with no table entry.
    pub uncorrectable: Vec<u64>,
    /// ECU group-cycles flagged by the `B` check.
    pub miscorrected: Vec<u64>,
    /// ECU group-cycles whose error was a multiple of `A`.
    pub silent_a: Vec<u64>,
    /// ECU read retries.
    pub retries: Vec<u64>,
    /// Group-cycles evaluated without any code.
    pub uncoded: Vec<u64>,
    /// Samples dropped by shard-level graceful degradation.
    pub lost_samples: Vec<u64>,
}

/// The merged, byte-stable grid summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSummary {
    /// Summary format version ([`GRID_SUMMARY_VERSION`]).
    pub version: u64,
    /// [`GridSpec::digest`] of the producing spec.
    pub spec_digest: u64,
    /// Per-cell metadata columns.
    pub cells: CellColumns,
    /// Per-epoch result columns.
    pub rows: EpochColumns,
    /// Ids of cells dropped under the loss budget — the explicit
    /// record of what this summary does *not* cover.
    pub lost_cells: Vec<String>,
}

/// Per-cell operational numbers (non-deterministic; sidecar only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellTelemetry {
    /// Cell id.
    pub id: String,
    /// Worker attempts this driver run spent on the cell.
    pub attempts: u64,
    /// Lines in the cell's event log (all runs to date).
    pub event_lines: u64,
}

/// The `grid_telemetry.json` sidecar: everything a human wants and a
/// byte-comparison must not see.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridTelemetry {
    /// Per-cell operational numbers.
    pub cells: Vec<CellTelemetry>,
}

/// Merges a finished grid into `<dir>/grid_summary.json` (returned
/// path), plus the telemetry sidecar.
///
/// Artifact reads roll [`Seam::LeaseRead`] with `retries` extra
/// attempts each; the summary write is atomic with read-back, so a
/// concurrent kill leaves either the previous summary or none, never a
/// torn one.
///
/// # Errors
///
/// Returns [`AccelError::Grid`] (stage `merge`) when a done cell's
/// artifact cannot be read or does not match its cell, or when the
/// summary cannot be durably written.
pub fn merge(
    dir: &Path,
    spec: &GridSpec,
    cells: &[GridCell],
    statuses: &[CellStatus],
    attempts: &[u64],
    dice: &mut ChaosDice,
    retries: u32,
) -> Result<PathBuf, AccelError> {
    let mut summary = GridSummary {
        version: GRID_SUMMARY_VERSION,
        spec_digest: spec.digest()?,
        cells: CellColumns {
            index: Vec::new(),
            id: Vec::new(),
            model: Vec::new(),
            scheme: Vec::new(),
            cell_bits: Vec::new(),
            writes_per_epoch: Vec::new(),
            seed: Vec::new(),
            status: Vec::new(),
        },
        rows: EpochColumns {
            cell_index: Vec::new(),
            epoch: Vec::new(),
            writes: Vec::new(),
            fault_rate: Vec::new(),
            misclassification: Vec::new(),
            top5_misclassification: Vec::new(),
            flip_rate: Vec::new(),
            samples: Vec::new(),
            clean: Vec::new(),
            corrected: Vec::new(),
            uncorrectable: Vec::new(),
            miscorrected: Vec::new(),
            silent_a: Vec::new(),
            retries: Vec::new(),
            uncoded: Vec::new(),
            lost_samples: Vec::new(),
        },
        lost_cells: Vec::new(),
    };
    let mut telemetry = GridTelemetry { cells: Vec::new() };

    for (i, cell) in cells.iter().enumerate() {
        let status = statuses[i];
        summary.cells.index.push(cell.index);
        summary.cells.id.push(cell.id.clone());
        summary.cells.model.push(cell.model.clone());
        summary.cells.scheme.push(cell.scheme.clone());
        summary.cells.cell_bits.push(cell.cell_bits);
        summary.cells.writes_per_epoch.push(cell.writes_per_epoch);
        summary.cells.seed.push(cell.seed);
        summary.cells.status.push(
            match status {
                CellStatus::Done => "done",
                CellStatus::Lost => "lost",
            }
            .to_string(),
        );
        let events_path = dir.join("cells").join(format!("{}.events.jsonl", cell.id));
        let event_lines = chaos::fs::read(&events_path, None)
            .map(|bytes| bytes.iter().filter(|&&b| b == b'\n').count() as u64)
            .unwrap_or(0);
        telemetry.cells.push(CellTelemetry {
            id: cell.id.clone(),
            attempts: attempts.get(i).copied().unwrap_or(0),
            event_lines,
        });
        match status {
            CellStatus::Lost => summary.lost_cells.push(cell.id.clone()),
            CellStatus::Done => {
                let state = read_artifact(dir, cell, dice, retries)?;
                for record in &state.completed {
                    summary.rows.cell_index.push(cell.index);
                    summary.rows.epoch.push(record.epoch);
                    summary.rows.writes.push(record.writes);
                    summary.rows.fault_rate.push(record.fault_rate);
                    summary
                        .rows
                        .misclassification
                        .push(record.misclassification);
                    summary
                        .rows
                        .top5_misclassification
                        .push(record.top5_misclassification);
                    summary.rows.flip_rate.push(record.flip_rate);
                    summary.rows.samples.push(record.samples);
                    summary.rows.clean.push(record.clean);
                    summary.rows.corrected.push(record.corrected);
                    summary.rows.uncorrectable.push(record.uncorrectable);
                    summary.rows.miscorrected.push(record.miscorrected);
                    summary.rows.silent_a.push(record.silent_a);
                    summary.rows.retries.push(record.retries);
                    summary.rows.uncoded.push(record.uncoded);
                    summary.rows.lost_samples.push(record.lost_samples);
                }
            }
        }
    }

    let summary_path = dir.join("grid_summary.json");
    let json = serde_json::to_string_pretty(&summary).map_err(|e| AccelError::Grid {
        stage: "merge".into(),
        message: format!("serialize summary: {e:?}"),
    })?;
    write_verified(&summary_path, json.as_bytes(), retries)?;

    // Telemetry is best-effort: losing it loses nothing reproducible.
    if let Ok(json) = serde_json::to_string_pretty(&telemetry) {
        let _ = chaos::fs::write_atomic(&dir.join("grid_telemetry.json"), json.as_bytes(), None);
    }
    Ok(summary_path)
}

/// Reads and validates one done cell's final artifact.
fn read_artifact(
    dir: &Path,
    cell: &GridCell,
    dice: &mut ChaosDice,
    retries: u32,
) -> Result<CampaignState, AccelError> {
    let path = dir.join("cells").join(format!("{}.json", cell.id));
    let mut last = String::new();
    for _ in 0..=retries {
        let fault = dice.fault(Seam::LeaseRead);
        let bytes = match chaos::fs::read(&path, fault) {
            Ok(bytes) => bytes,
            Err(e) => {
                last = format!("read failed: {e}");
                continue;
            }
        };
        let Ok(text) = std::str::from_utf8(&bytes) else {
            last = "artifact is not UTF-8".into();
            continue;
        };
        let state = match CampaignState::from_json(text) {
            Ok(state) => state,
            Err(e) => {
                last = e.to_string();
                continue;
            }
        };
        if state.scheme != cell.scheme || state.seed != cell.seed {
            return Err(AccelError::Grid {
                stage: "merge".into(),
                message: format!(
                    "artifact {} records scheme {} seed {}, cell expects {} / {}",
                    path.display(),
                    state.scheme,
                    state.seed,
                    cell.scheme,
                    cell.seed
                ),
            });
        }
        return Ok(state);
    }
    Err(AccelError::Grid {
        stage: "merge".into(),
        message: format!("artifact {} unreadable every attempt: {last}", path.display()),
    })
}

/// Writes `payload` atomically with read-back verification, retrying.
fn write_verified(path: &Path, payload: &[u8], retries: u32) -> Result<(), AccelError> {
    let mut last = String::new();
    for _ in 0..=retries {
        match chaos::fs::write_atomic(path, payload, None) {
            Ok(()) => match chaos::fs::read(path, None) {
                Ok(bytes) if bytes == payload => return Ok(()),
                Ok(_) => last = "read-back found corrupted bytes".into(),
                Err(e) => last = format!("read-back failed: {e}"),
            },
            Err(e) => last = e.to_string(),
        }
    }
    Err(AccelError::Grid {
        stage: "merge".into(),
        message: format!("summary write failed every attempt: {last}"),
    })
}
