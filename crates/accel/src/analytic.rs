//! Analytic error-rate fast path: closed-form moment propagation
//! through the full bit-slice → ADC → column-reduce → ECU pipeline.
//!
//! The Monte-Carlo harness ([`sim::evaluate`](crate::sim::evaluate))
//! estimates misclassification by sampling every noise source of every
//! cell read. This module predicts the same quantities **without
//! sampling**, in the style of MemSE: every stochastic stage of the
//! pipeline is replaced by its effect on the first two moments of the
//! error, and the decode stage by the deterministic transition function
//! of [`ancode::transition`]. One deterministic pass per test sample
//! replaces thousands of noisy inferences, which is what makes
//! whole-design-space sweeps interactive.
//!
//! # The model, stage by stage
//!
//! 1. **Representative fabrication instance** — the mapping (chunking,
//!    code selection, bit-slicing, stuck-cell draw) is built once, from
//!    a fixed seed, exactly as one Monte-Carlo shard would program it.
//!    This matters for the data-aware codes: their `A`-search sees the
//!    *actual* stuck cells and allocates correction-table entries
//!    around them, so fault behaviour can only be predicted against the
//!    same matched code-plus-array pair.
//! 2. **Stuck-at faults are deterministic** — a cell stuck at level
//!    `l′` instead of `l` shifts its row's ADC output by exactly
//!    `l′ − l` counts on the cycles its column is driven, with no
//!    randomness at all. Per stack and cycle the model folds the driven
//!    stuck columns into one composite syndrome and classifies it
//!    *exactly* through [`ancode::transition::classify`]: corrected
//!    syndromes vanish, everything else leaves the ECU's best-effort
//!    residual as a deterministic mean shift with zero variance.
//! 3. **Row mis-quantization (RTN + thermal)** — [`xbar::rowerr`]
//!    predicts, per physical row and per input-bit density, the
//!    probability that the ADC output lands one LSB high or low. The
//!    model tabulates these at a fixed density grid per row and
//!    interpolates at the exact per-cycle bit density of each sample.
//! 4. **ECU decode of row events** — each row error `±2^k` is
//!    classified exactly when it fires alone in a cycle; when several
//!    rows err together (tracked via the no-error product across the
//!    stack's families) the `Revert` policy returns
//!    `round(observed / A·B)`, so each erring row contributes its own
//!    `round(e / A·B)` share of the residual.
//! 5. **Accumulate and split** — residuals are weighted by `2^t` per
//!    input cycle and attributed to output lanes with the same balanced
//!    base-`2^16` digit split the engine applies. RTN trap dwell times
//!    dwarf an inference, so a row's error indicator is modeled as
//!    *comonotone* across the 16 bit-serial cycles (`min(p_t, p_s)`
//!    coupling) rather than independent.
//! 6. **Network propagation** — per-sample error moments ride alongside
//!    the exact fixed-point forward pass: dequantization scales them,
//!    ReLU gates them on the sign of the exact pre-activation, max-pool
//!    forwards the argmax element, and dense/conv layers mix variances
//!    through squared dequantized weights (first order).
//! 7. **Classification** — each final logit is treated as Gaussian
//!    around its exact-plus-shift value; misclassification, top-5, and
//!    flip probabilities come from a Poisson-binomial count of
//!    competitors beating the reference logit.
//!
//! The approximations (one representative fabrication instance instead
//! of the ensemble, per-row residual shares under crowding,
//! independence across rows and logits, first-order activation gating)
//! define a *validity envelope* — see [`supports`] and DESIGN.md §11.
//! Outside it, or for final numbers, use the Monte-Carlo path;
//! [`ErrorModel::Auto`] makes that choice per configuration.
//!
//! # Examples
//!
//! ```
//! use accel::{analytic, AccelConfig, ProtectionScheme};
//! use neural::{Dense, Network, QuantizedNetwork, Tensor};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let net = Network::new(vec![Box::new(Dense::new(8, 4, &mut rng))]);
//! let qnet = QuantizedNetwork::from_network(&net);
//! let images = Tensor::from_vec(vec![3, 8], vec![0.25; 24]);
//! let labels = vec![0usize, 1, 2];
//!
//! let config = AccelConfig::new(ProtectionScheme::data_aware(9));
//! assert!(analytic::supports(&config));
//! let result = analytic::predict(&qnet, &images, &labels, &config)?;
//! assert_eq!(result.samples, 3);
//! assert!(result.misclassification <= 1.0);
//! # Ok::<(), accel::AccelError>(())
//! ```

use std::collections::HashMap;

use ancode::transition::classify;
use ancode::{AbnCode, CorrectionPolicy, DecodeKind, OperandGroup};
use neural::{
    im2col_patch_into, quantize_activations_into, Activation, MvmGeometry, QuantOp,
    QuantizedMatrix, QuantizedNetwork, Tensor, WEIGHT_BIAS,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wideint::I256;
use xbar::rowerr::{predict_composition, RowErrorRate};
use xbar::InputMask;

use crate::mapping::map_matrix;
use crate::sim::SimResult;
use crate::{AccelConfig, AccelError, DecodeStats};

/// Which error model an evaluation should use.
///
/// The string labels (`analytic`, `mc`, `auto`) are what the CLI's
/// `--error-model` flag accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorModel {
    /// Closed-form moment propagation ([`predict`]); milliseconds per
    /// configuration, valid only inside the [`supports`] envelope.
    Analytic,
    /// The Monte-Carlo harness ([`crate::sim::evaluate`]); the ground
    /// truth for final numbers. The default.
    #[default]
    Mc,
    /// Analytic when [`supports`] accepts the configuration, Monte-Carlo
    /// otherwise.
    Auto,
}

impl ErrorModel {
    /// The CLI label of this model.
    pub fn label(&self) -> &'static str {
        match self {
            ErrorModel::Analytic => "analytic",
            ErrorModel::Mc => "mc",
            ErrorModel::Auto => "auto",
        }
    }

    /// Parses a CLI label (`analytic`, `mc`, `auto`).
    pub fn from_label(label: &str) -> Option<ErrorModel> {
        match label {
            "analytic" => Some(ErrorModel::Analytic),
            "mc" => Some(ErrorModel::Mc),
            "auto" => Some(ErrorModel::Auto),
            _ => None,
        }
    }
}

/// Whether `config` is inside the analytic model's validity envelope.
///
/// The analytic derivation assumes: the `Revert` correction policy (the
/// crowded-cycle residual `round(e/A·B)` is exact only for reverts), no
/// ECU re-read retries (retries resample thermal noise, which the model
/// folds into the row tables), no fault-aware remapping (remap reorders
/// lanes per programmed instance), full 16-bit input streaming, and no
/// injected worker chaos (chaos exercises the scheduler, which the
/// analytic path does not have). Everything else — scheme, cell bits,
/// fault rate, RTN parameters, batching — is covered.
pub fn supports(config: &AccelConfig) -> bool {
    config.policy == CorrectionPolicy::Revert
        && config.max_retries == 0
        && !config.remap
        && config.input_bits == 16
        && config.shard_chaos == chaos::ShardChaos::Off
}

/// Densities at which each row's error table is evaluated (`k/8`);
/// per-cycle probabilities are linearly interpolated between them.
const GRID: usize = 9;

/// Event families with total probability below this are dropped from
/// the moment accumulation (they still influence nothing observable at
/// f64 precision).
const PROB_FLOOR: f64 = 1e-14;

/// Seed of the representative fabrication instance the model is built
/// from (stuck-cell draw + data-aware `A`-search), mirroring what one
/// Monte-Carlo shard would program.
const INSTANCE_SEED: u64 = 0;

/// Largest per-stack stuck-column count for which every driven-subset
/// composite syndrome is pre-classified into a lookup table; stacks
/// with more stuck columns classify per cycle instead (rare — it takes
/// `fault_rate` well past the paper's grid to exceed this).
const MAX_STUCK_TABLE: usize = 10;

/// Per-cycle lane digits of one event's alone/crowd deltas,
/// precomputed at model-build time: the digits depend only on the
/// (fixed) delta, the cycle and the stack geometry — never on the
/// sample — and the balanced-split chains were the hottest per-sample
/// loop before they were hoisted here. `f32` is plenty: non-top digits
/// are ≤ `2^15` (exact), and the top-lane residue only feeds moments.
struct DigitTable {
    da: [[f32; 8]; 16],
    dc: [[f32; 8]; 16],
}

/// Decode outcome of one enumerated ±1-LSB row event.
struct EventDeltas {
    /// Decode outcome when the event fires alone in its cycle.
    kind: Option<DecodeKind>,
    /// Decoded-value delta when alone.
    alone: f64,
    /// This row's share of the best-effort residual when other rows err
    /// in the same cycle (`round(e / A·B)`; `e` itself when uncoded).
    crowd: f64,
    /// Precomputed lane digits; `None` for single-operand stacks
    /// (where the digit is just `delta · 2^t`) and zero-delta events.
    digits: Option<Box<DigitTable>>,
}

/// Analytic model of one physical row: density-tabulated RTN
/// mis-quantization rates plus the two ±1-LSB event classifications.
struct RowModel {
    p_high: [f64; GRID],
    p_low: [f64; GRID],
    high: EventDeltas,
    low: EventDeltas,
}

/// Pre-classified composite syndrome of one driven stuck-column subset.
struct StuckOutcome {
    /// `None` for uncoded stacks (no decode to classify).
    kind: Option<DecodeKind>,
    /// Exact wide decoded-value delta: the deterministic baseline sums
    /// these over cycles and splits the total like the engine does.
    delta: I256,
}

/// Analytic model of one crossbar stack.
struct StackModel {
    row_offset: usize,
    lanes: usize,
    /// The stack's operand group — always the scheme's full layout even
    /// for a partial tail stack (`lanes <` layout operands), exactly as
    /// the engine maps it. The deterministic baseline reuses its
    /// `split_signed_into` so phantom-lane residue is dropped the same
    /// way the engine drops it.
    group: OperandGroup,
    coded: bool,
    rows: Vec<RowModel>,
    /// Chunk-local column indices carrying a nonzero stuck deviation,
    /// aggregated over the stack's physical rows at each row's
    /// significance (`Σ_rows (actual − target) · 2^lsb`).
    stuck_cols: Vec<u32>,
    stuck_devs: Vec<I256>,
    /// Driven-subset bitmask → classified composite syndrome; empty
    /// when the subset count exceeds [`MAX_STUCK_TABLE`].
    stuck_table: Vec<StuckOutcome>,
    /// The stack's code, for the slow-path classify.
    code: Option<AbnCode>,
}

/// Analytic model of one mapped weight matrix.
struct LayerModel {
    chunks: Vec<std::ops::Range<usize>>,
    stacks: Vec<Vec<StackModel>>,
    out_dim: usize,
}

/// Expected decode-statistics accumulator (f64 so fractional
/// expectations add exactly; rounded once at the end).
#[derive(Default, Clone, Copy)]
struct StatsAcc {
    clean: f64,
    corrected: f64,
    uncorrectable: f64,
    miscorrected: f64,
    silent_a: f64,
    uncoded: f64,
}

impl StatsAcc {
    fn tally(&mut self, kind: DecodeKind, weight: f64) {
        match kind {
            DecodeKind::Clean => self.clean += weight,
            DecodeKind::Corrected => self.corrected += weight,
            DecodeKind::Uncorrectable => self.uncorrectable += weight,
            DecodeKind::Miscorrected => self.miscorrected += weight,
            DecodeKind::SilentA => self.silent_a += weight,
            // `DecodeKind` is non-exhaustive; future kinds would need a
            // dedicated counter before the model could book them.
            _ => self.uncorrectable += weight,
        }
    }

    fn merge(&mut self, o: StatsAcc) {
        self.clean += o.clean;
        self.corrected += o.corrected;
        self.uncorrectable += o.uncorrectable;
        self.miscorrected += o.miscorrected;
        self.silent_a += o.silent_a;
        self.uncoded += o.uncoded;
    }

    fn into_stats(self) -> DecodeStats {
        DecodeStats {
            clean: self.clean.round() as u64,
            corrected: self.corrected.round() as u64,
            uncorrectable: self.uncorrectable.round() as u64,
            miscorrected: self.miscorrected.round() as u64,
            silent_a: self.silent_a.round() as u64,
            retries: 0,
            uncoded: self.uncoded.round() as u64,
        }
    }
}

/// Converts a (possibly > 128-bit) signed wide integer to `f64`.
fn i256_to_f64(v: I256) -> f64 {
    let mag = v.magnitude();
    let bits = mag.bits();
    let m = if bits <= 64 {
        mag.to_u64().expect("fits by bit count") as f64
    } else {
        let shift = bits - 53;
        mag.extract_bits(shift, 53) as f64 * (shift as f64).exp2()
    };
    if v.is_negative() {
        -m
    } else {
        m
    }
}

/// Writes the balanced base-`2^operand_bits` lane digits of `v · 2^t`
/// into `out[..lanes]` — the float analogue of
/// [`ancode::OperandGroup::split_signed`] over the layout's full `ops`
/// operand slots. Only the first `lanes` digits are kept: for a partial
/// tail stack (`lanes < ops`) the high digits and the top-slot residue
/// land in phantom zero-padded lanes, which the engine never applies to
/// an output — so the model drops them the same way.
fn lane_digits(v: f64, t: u32, operand_bits: u32, ops: usize, lanes: usize, out: &mut [f64; 8]) {
    let base = (1u64 << operand_bits) as f64;
    let mut w = v * (1u64 << t) as f64;
    for i in 0..lanes.min(ops) {
        out[i] = if i + 1 < ops {
            let carry = (w / base).round();
            let d = w - base * carry;
            w = carry;
            d
        } else {
            // Top layout slot: absorbs the residue, like the engine's
            // saturating fold (reachable only when `lanes == ops`).
            w
        };
    }
    for slot in out.iter_mut().take(8).skip(lanes) {
        *slot = 0.0;
    }
}

/// Precomputes an event's per-cycle lane digits (see [`DigitTable`]).
fn digit_table(
    alone: f64,
    crowd: f64,
    operand_bits: u32,
    ops: usize,
    lanes: usize,
) -> Option<Box<DigitTable>> {
    // lint: allow(float_eq, exact zero sentinel: deltas are assigned literally from decode tables, never computed approximately)
    if ops == 1 || (alone == 0.0 && crowd == 0.0) {
        return None;
    }
    let mut tbl = Box::new(DigitTable {
        da: [[0.0; 8]; 16],
        dc: [[0.0; 8]; 16],
    });
    let mut buf = [0.0f64; 8];
    for t in 0..16u32 {
        lane_digits(alone, t, operand_bits, ops, lanes, &mut buf);
        for l in 0..8 {
            tbl.da[t as usize][l] = buf[l] as f32;
        }
        lane_digits(crowd, t, operand_bits, ops, lanes, &mut buf);
        for l in 0..8 {
            tbl.dc[t as usize][l] = buf[l] as f32;
        }
    }
    Some(tbl)
}

/// Classifies one additive error, keeping the decoded-value delta as a
/// wide integer: the deterministic stuck baseline needs it exact so the
/// summed-then-split total reproduces the engine's lane attribution.
fn classify_wide(
    code: &Option<AbnCode>,
    policy: CorrectionPolicy,
    e: I256,
) -> (Option<DecodeKind>, I256) {
    match code {
        Some(code) => {
            let t = classify(code, policy, e);
            (Some(t.kind), t.delta)
        }
        None => (None, e),
    }
}

/// Classifies one additive error against an optional code: `(kind,
/// alone delta, crowded best-effort share)`. `None` kind ⇔ uncoded.
fn classify_event(
    code: &Option<AbnCode>,
    policy: CorrectionPolicy,
    e: I256,
) -> (Option<DecodeKind>, f64, f64) {
    match code {
        Some(code) => {
            let t = classify(code, policy, e);
            let crowd = e
                .div_round_u64(code.multiplier())
                .expect("multiplier is nonzero");
            (Some(t.kind), i256_to_f64(t.delta), i256_to_f64(crowd))
        }
        None => (None, i256_to_f64(e), i256_to_f64(e)),
    }
}

/// Builds the analytic model of one quantized matrix under `config`.
///
/// The mapping is the representative fabrication instance: a
/// fixed-seed programming pass with the *real* fault rate, so the
/// data-aware `A`-search allocates its correction table against the
/// same stuck cells the model then predicts — exactly what every
/// Monte-Carlo shard does for its own seed.
fn build_layer_model(
    matrix: &QuantizedMatrix,
    config: &AccelConfig,
    rate_memo: &mut HashMap<Vec<u32>, RowErrorRate>,
) -> Result<LayerModel, AccelError> {
    let mut rng = ChaCha8Rng::seed_from_u64(INSTANCE_SEED);
    let mapped = map_matrix(matrix.rows(), config, &mut rng).map_err(AccelError::Code)?;

    // Density-scaled row-error rates, memoized on the *scaled*
    // composition: rows repeat compositions heavily and low densities
    // collapse them further, so most grid points are cache hits and
    // the expensive binomial tails run once per distinct vector.
    let mut rate_at = |comp: &[u32], g: usize| -> RowErrorRate {
        let density = g as f64 / (GRID - 1) as f64;
        let scaled: Vec<u32> = comp
            .iter()
            .map(|&c| (c as f64 * density).round() as u32)
            .collect();
        *rate_memo
            .entry(scaled)
            .or_insert_with_key(|k| predict_composition(k, &config.device))
    };

    let mut stacks = Vec::with_capacity(mapped.stacks.len());
    for chunk_stacks in &mapped.stacks {
        let mut out = Vec::with_capacity(chunk_stacks.len());
        for stack in chunk_stacks {
            let mut rows = Vec::with_capacity(stack.array.row_count());
            let mut dev_by_col: HashMap<u32, I256> = HashMap::new();
            for (r, row) in stack.array.rows().iter().enumerate() {
                let lsb = stack.slicer.row_lsb(r as u32);
                let comp = row.active_composition(&InputMask::all_ones(row.width()));
                let mut p_high = [0.0; GRID];
                let mut p_low = [0.0; GRID];
                for g in 1..GRID {
                    let rate = rate_at(&comp, g);
                    p_high[g] = rate.p_high;
                    p_low[g] = rate.p_low;
                }
                let up = I256::from_i128(1).shifted_left(lsb);
                let down = I256::from_i128(-1).shifted_left(lsb);
                let (hk, ha, hc) = classify_event(&stack.code, config.policy, up);
                let (lk, la, lc) = classify_event(&stack.code, config.policy, down);
                let obits = stack.group.layout().operand_bits();
                let ops = stack.group.layout().operands();
                rows.push(RowModel {
                    p_high,
                    p_low,
                    high: EventDeltas {
                        kind: hk,
                        alone: ha,
                        crowd: hc,
                        digits: digit_table(ha, hc, obits, ops, stack.lanes),
                    },
                    low: EventDeltas {
                        kind: lk,
                        alone: la,
                        crowd: lc,
                        digits: digit_table(la, lc, obits, ops, stack.lanes),
                    },
                });
                for &j in row.stuck_columns() {
                    let d = row.actual_level(j) as i128 - row.target_level(j) as i128;
                    if d != 0 {
                        let dev = I256::from_i128(d).shifted_left(lsb);
                        let entry = dev_by_col.entry(j).or_insert_with(|| I256::from_i128(0));
                        *entry = *entry + dev;
                    }
                }
            }
            // One-operand stacks: events whose residuals sit ≥ 2^26
            // below the stack's dominant event cannot move the f64
            // moment sums (the lone lane digit is `delta·2^t`, so the
            // squared contribution is below one ulp of the dominant
            // variance term) — drop their deltas from the moment path.
            // Their decode *kinds* keep tallying. Grouped stacks are
            // exempt: a balanced split smears any delta into ±2^15
            // digits on every lane, so small events still matter.
            if stack.group.layout().operands() == 1 {
                let stack_max = rows
                    .iter()
                    .flat_map(|r| [&r.high, &r.low])
                    .map(|ev| ev.alone.abs().max(ev.crowd.abs()))
                    .fold(0.0f64, f64::max);
                let floor = stack_max * (-26.0f64).exp2();
                for row in &mut rows {
                    for ev in [&mut row.high, &mut row.low] {
                        if ev.alone.abs().max(ev.crowd.abs()) < floor {
                            ev.alone = 0.0;
                            ev.crowd = 0.0;
                            ev.digits = None;
                        }
                    }
                }
            }
            let mut stuck: Vec<(u32, I256)> = dev_by_col
                .into_iter()
                .filter(|&(_, d)| !d.is_zero())
                .collect();
            stuck.sort_by_key(|&(j, _)| j);
            let stuck_cols: Vec<u32> = stuck.iter().map(|&(j, _)| j).collect();
            let stuck_devs: Vec<I256> = stuck.iter().map(|&(_, d)| d).collect();
            let stuck_table = if stuck_cols.len() <= MAX_STUCK_TABLE {
                (0..1usize << stuck_cols.len())
                    .map(|mask| {
                        let mut e = I256::from_i128(0);
                        for (i, &d) in stuck_devs.iter().enumerate() {
                            if mask & (1 << i) != 0 {
                                e = e + d;
                            }
                        }
                        let (kind, delta) = classify_wide(&stack.code, config.policy, e);
                        StuckOutcome { kind, delta }
                    })
                    .collect()
            } else {
                Vec::new()
            };
            out.push(StackModel {
                row_offset: stack.row_offset,
                lanes: stack.lanes,
                group: stack.group,
                coded: stack.code.is_some(),
                rows,
                stuck_cols,
                stuck_devs,
                stuck_table,
                code: stack.code.clone(),
            });
        }
        stacks.push(out);
    }
    Ok(LayerModel {
        chunks: mapped.chunks,
        stacks,
        out_dim: mapped.out_dim,
    })
}

/// Linear interpolation into a density-grid table.
fn interp(table: &[f64; GRID], rho: f64) -> f64 {
    let x = rho.clamp(0.0, 1.0) * (GRID - 1) as f64;
    let i = (x as usize).min(GRID - 2);
    let frac = x - i as f64;
    table[i] * (1.0 - frac) + table[i + 1] * frac
}

/// Scratch for one stack's family probabilities (reused across stacks).
struct FamilyScratch {
    /// Per-cycle firing probability.
    p: [f64; 16],
    alone_delta: f64,
    crowd_delta: f64,
    alone_kind: Option<DecodeKind>,
    /// Source row index within the stack (for the digit-table lookup).
    row: u32,
    /// 0 = high event, 1 = low event.
    dir: u8,
}

/// Accumulates one stack's per-cycle error moments into the raw output
/// moments (`raw_mean`/`raw_var`, indexed by logical output element) and
/// the expected decode statistics.
///
/// `q_chunk` holds the chunk's quantized inputs — bit `t` of
/// `q_chunk[j]` says whether column `j` is driven in cycle `t`, which
/// selects the stuck-column subset for the deterministic baseline.
#[allow(clippy::too_many_arguments)] // private kernel: explicit split borrows of the forward scratch
fn accumulate_stack(
    stack: &StackModel,
    q_chunk: &[u16],
    rho: &[f64],
    cycles: usize,
    raw_mean: &mut [f64],
    raw_var: &mut [f64],
    stats: &mut StatsAcc,
    families: &mut Vec<FamilyScratch>,
) {
    let lanes = stack.lanes;
    let ops = stack.group.layout().operands();
    let mut executed = [false; 16];
    let mut executed_count = 0.0f64;
    for t in 0..cycles {
        executed[t] = rho[t] > 0.0;
        executed_count += executed[t] as u64 as f64;
    }
    // lint: allow(float_eq, exact zero test: executed_count is a sum of 0/1 indicator casts)
    if executed_count == 0.0 {
        return;
    }
    if !stack.coded {
        stats.uncoded += executed_count;
    }

    // Deterministic stuck-fault baseline: per executed cycle, the
    // composite syndrome of the driven stuck columns, classified
    // through the stack's own code. A pure mean shift — zero variance.
    // The per-cycle deltas are summed into one wide total and split
    // through the stack's own `OperandGroup`, exactly mirroring the
    // engine's decode-then-split-the-total order: splitting each cycle
    // separately would mis-attribute balanced-split carries between
    // adjacent lanes and keep phantom-lane residue a partial tail stack
    // must drop.
    let mut baseline_kind = [DecodeKind::Clean; 16];
    let mut base_err = I256::from_i128(0);
    let mut have_base = false;
    for t in 0..cycles {
        if !executed[t] || stack.stuck_cols.is_empty() {
            continue;
        }
        let mut mask = 0usize;
        for (i, &j) in stack.stuck_cols.iter().enumerate() {
            mask |= (((q_chunk[j as usize] >> t) & 1) as usize) << i;
        }
        let (kind, delta) = match stack.stuck_table.get(mask) {
            Some(outcome) => (outcome.kind, outcome.delta),
            None => {
                // Slow path: more stuck columns than the table covers.
                let mut e = I256::from_i128(0);
                for (i, &d) in stack.stuck_devs.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        e = e + d;
                    }
                }
                classify_wide(&stack.code, CorrectionPolicy::Revert, e)
            }
        };
        baseline_kind[t] = kind.unwrap_or(DecodeKind::Clean);
        if !delta.is_zero() {
            base_err = base_err + delta.shifted_left(t as u32);
            have_base = true;
        }
    }
    if have_base {
        let mut lane_err = Vec::with_capacity(ops);
        stack.group.split_signed_into(base_err, &mut lane_err);
        for l in 0..lanes {
            raw_mean[stack.row_offset + l] += lane_err[l] as f64;
        }
    }


    // RTN event families: one per row and direction, probabilities
    // interpolated at each cycle's drive density.
    families.clear();
    for (ri, row) in stack.rows.iter().enumerate() {
        for (dir, (table, ev)) in [(&row.p_high, &row.high), (&row.p_low, &row.low)]
            .into_iter()
            .enumerate()
        {
            let mut p = [0.0f64; 16];
            let mut total = 0.0;
            for t in 0..cycles {
                if executed[t] {
                    p[t] = interp(table, rho[t]);
                    total += p[t];
                }
            }
            if total < PROB_FLOOR {
                continue;
            }
            families.push(FamilyScratch {
                p,
                alone_delta: ev.alone,
                crowd_delta: ev.crowd,
                alone_kind: ev.kind,
                row: ri as u32,
                dir: dir as u8,
            });
        }
    }


    // No-error product per cycle, across every family of the stack.
    let mut noerr = [1.0f64; 16];
    for fam in families.iter() {
        for t in 0..cycles {
            if executed[t] {
                noerr[t] *= 1.0 - fam.p[t];
            }
        }
    }

    // Decode tallies and error moments in one family-outer pass: the
    // alone/crowded split probabilities `pa`/`pc` are shared by both,
    // so they are computed once per (family, cycle) with the division
    // hoisted out of the lane loop. Moments use the comonotone
    // coupling across cycles (min(p_t, p_s) — the frozen-RTN regime),
    // with lane digits from the build-time [`DigitTable`] (or a single
    // multiply for one-operand stacks).
    let mut alone_total = [0.0f64; 16];
    let mut cond_mean = [[0.0f64; 8]; 16];
    let mut p_act = [0.0f64; 16];
    let mut order = [0usize; 16];
    for fam in families.iter() {
        let rowm = &stack.rows[fam.row as usize];
        let ev = if fam.dir == 0 { &rowm.high } else { &rowm.low };
        // lint: allow(float_eq, exact zero sentinel: deltas come straight from the decode table, never from arithmetic)
        let moments = fam.alone_delta != 0.0 || fam.crowd_delta != 0.0;
        let mut k = 0usize;
        let mut mean_l = [0.0f64; 8];
        let mut ex2_l = [0.0f64; 8];
        for t in 0..cycles {
            if fam.p[t] <= 0.0 {
                continue;
            }
            let s = if fam.p[t] < 1.0 {
                (noerr[t] / (1.0 - fam.p[t])).min(1.0)
            } else {
                0.0
            };
            let pa = fam.p[t] * s;
            if stack.coded {
                alone_total[t] += pa;
                if let Some(kind) = fam.alone_kind {
                    stats.tally(kind, pa);
                }
            }
            if !moments {
                continue;
            }
            let pc = fam.p[t] - pa;
            let inv_p = 1.0 / fam.p[t];
            match ev.digits.as_deref() {
                Some(tbl) => {
                    let da = &tbl.da[t];
                    let dc = &tbl.dc[t];
                    // lint: allow(float_eq, exact zero sentinel: alone_delta is a table value, 0.0 means corrected-when-alone)
                    if fam.alone_delta == 0.0 {
                        // Corrected-when-alone events (the common case
                        // for the coded schemes): only the crowded
                        // residual contributes.
                        for l in 0..lanes {
                            let c = dc[l] as f64;
                            let m = pc * c;
                            mean_l[l] += m;
                            ex2_l[l] += pc * c * c;
                            cond_mean[k][l] = m * inv_p;
                        }
                    } else {
                        for l in 0..lanes {
                            let a = da[l] as f64;
                            let c = dc[l] as f64;
                            let m = pa * a + pc * c;
                            mean_l[l] += m;
                            ex2_l[l] += pa * a * a + pc * c * c;
                            cond_mean[k][l] = m * inv_p;
                        }
                    }
                }
                None => {
                    // One-operand stack: the lone digit is `delta·2^t`.
                    let pow = (1u64 << t) as f64;
                    let a = fam.alone_delta * pow;
                    let c = fam.crowd_delta * pow;
                    let m = pa * a + pc * c;
                    mean_l[0] += m;
                    ex2_l[0] += pa * a * a + pc * c * c;
                    cond_mean[k][0] = m * inv_p;
                }
            }
            p_act[k] = fam.p[t];
            order[k] = k;
            k += 1;
        }
        if !moments {
            continue;
        }
        // Off-diagonal comonotone terms: P(err at both t and s) =
        // min(p_t, p_s) for one persistent latent cause. Sorting by p
        // turns the O(k²) pair sum into suffix sums:
        // Σ_{t≠s} min·m_t·m_s = 2·Σ_i p_(i)·m_(i)·(Σ_{j>i} m_(j))
        // over ascending p.
        if k > 1 {
            order[..k].sort_by(|&a, &b| p_act[a].total_cmp(&p_act[b]));
            let mut suffix = [0.0f64; 8];
            for i in (0..k).rev() {
                let s = order[i];
                for l in 0..lanes {
                    ex2_l[l] += 2.0 * p_act[s] * cond_mean[s][l] * suffix[l];
                    suffix[l] += cond_mean[s][l];
                }
            }
        }
        for l in 0..lanes {
            let o = stack.row_offset + l;
            raw_mean[o] += mean_l[l];
            raw_var[o] += (ex2_l[l] - mean_l[l] * mean_l[l]).max(0.0);
        }
    }
    // Baseline outcome when no RTN event fires, and the crowded
    // remainder (≥ 2 events in one cycle), booked as uncorrectable —
    // the dominant true outcome under Revert.
    if stack.coded {
        for t in 0..cycles {
            if executed[t] {
                stats.tally(baseline_kind[t], noerr[t]);
                stats.uncorrectable += (1.0 - noerr[t] - alone_total[t]).max(0.0);
            }
        }
    }
}

/// Standard normal CDF (Zelen–Severo 26.2.17; |ε| < 7.5e-8).
fn phi(x: f64) -> f64 {
    if x < -8.0 {
        return 0.0;
    }
    if x > 8.0 {
        return 1.0;
    }
    let t = 1.0 / (1.0 + 0.231_641_9 * x.abs());
    let poly = t
        * (0.319_381_530
            + t * (-0.356_563_782
                + t * (1.781_477_937 + t * (-1.821_255_978 + t * 1.330_274_429))));
    let tail = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt() * poly;
    if x >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Probability that logit `j` beats the reference logit, given exact
/// values, mean shifts, and variances. Ties at zero variance resolve the
/// way the engine's argmax does (later index wins).
fn beat_probability(
    z_j: f64,
    m_j: f64,
    v_j: f64,
    z_r: f64,
    m_r: f64,
    v_r: f64,
    j_after_ref: bool,
) -> f64 {
    let diff = (z_j + m_j) - (z_r + m_r);
    let var = v_j + v_r;
    if var <= 0.0 {
        // lint: allow(float_eq, exact tie-break in the zero-variance degenerate branch; argmax semantics need the equality case)
        if diff > 0.0 || (diff == 0.0 && j_after_ref) {
            1.0
        } else {
            0.0
        }
    } else {
        phi(diff / var.sqrt())
    }
}

/// `P(X ≥ k)` for a Poisson-binomial count with success probabilities
/// `probs`, by dynamic programming over `min(k, …)` partial counts.
fn poisson_binomial_at_least(probs: &[f64], k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    // dp[c] = P(exactly c successes so far), capped at k (absorbing).
    let mut dp = vec![0.0f64; k + 1];
    dp[0] = 1.0;
    for &p in probs {
        for c in (0..k).rev() {
            let move_up = dp[c] * p;
            dp[c + 1] += move_up;
            dp[c] -= move_up;
        }
    }
    dp[k].clamp(0.0, 1.0)
}

/// Per-sample forward scratch (exact activations + moment side-channel).
#[derive(Default)]
struct Forward {
    x: Vec<f32>,
    mean: Vec<f32>,
    var: Vec<f32>,
    nx: Vec<f32>,
    nmean: Vec<f32>,
    nvar: Vec<f32>,
    q: Vec<u16>,
    patch: Vec<f32>,
    mpatch: Vec<f32>,
    vpatch: Vec<f32>,
    raw_mean: Vec<f64>,
    raw_var: Vec<f64>,
    rho: Vec<f64>,
    families: Vec<FamilyScratch>,
}

/// Runs one MVM's analytic stage: densities per chunk, stack moments,
/// then the exact integer output and float-unit moments for each output
/// element. Returns `(a_scale, sum_q)` for the caller's de-bias.
#[allow(clippy::too_many_arguments)] // private kernel: explicit split borrows of the forward scratch
fn mvm_moments(
    model: &LayerModel,
    matrix: &QuantizedMatrix,
    input: &[f32],
    cycles: usize,
    fwd_q: &mut Vec<u16>,
    rho: &mut Vec<f64>,
    families: &mut Vec<FamilyScratch>,
    raw_mean: &mut Vec<f64>,
    raw_var: &mut Vec<f64>,
    stats: &mut StatsAcc,
) -> f32 {
    let a_scale = quantize_activations_into(input, fwd_q);
    raw_mean.clear();
    raw_mean.resize(model.out_dim, 0.0);
    raw_var.clear();
    raw_var.resize(model.out_dim, 0.0);
    rho.clear();
    rho.resize(cycles, 0.0);
    for (chunk_idx, cols) in model.chunks.iter().enumerate() {
        let q_chunk = &fwd_q[cols.clone()];
        let width = q_chunk.len() as f64;
        for t in 0..cycles {
            let ones = q_chunk.iter().filter(|&&v| (v >> t) & 1 == 1).count();
            rho[t] = ones as f64 / width;
        }
        for stack in &model.stacks[chunk_idx] {
            accumulate_stack(
                stack, q_chunk, rho, cycles, raw_mean, raw_var, stats, families,
            );
        }
    }
    let _ = matrix;
    a_scale
}

/// Predicts the Monte-Carlo harness's [`SimResult`] analytically.
///
/// One deterministic pass per test sample: the exact fixed-point
/// forward computation plus first/second error moments per activation,
/// closed under every stage of the accelerator pipeline. The returned
/// rates are expectations over the noise processes (RTN, thermal) for
/// one representative fabrication instance — the quantities
/// `sim::evaluate` estimates by sampling; `stats` holds the *expected*
/// decode tallies, rounded.
///
/// # Errors
///
/// [`AccelError::InvalidConfig`] when the configuration is outside the
/// [`supports`] envelope (or fails [`AccelConfig::validate`]);
/// [`AccelError::EmptyTestSet`] / [`AccelError::ShapeMismatch`] exactly
/// as the Monte-Carlo path reports them.
pub fn predict(
    qnet: &QuantizedNetwork,
    images: &Tensor,
    labels: &[usize],
    config: &AccelConfig,
) -> Result<SimResult, AccelError> {
    predict_threaded(qnet, images, labels, config, 1)
}

/// [`predict`] with the per-sample passes fanned out over `threads`
/// workers (contiguous sample ranges, merged in range order — the
/// result is bit-identical for every thread count).
pub fn predict_threaded(
    qnet: &QuantizedNetwork,
    images: &Tensor,
    labels: &[usize],
    config: &AccelConfig,
    threads: usize,
) -> Result<SimResult, AccelError> {
    let n = labels.len();
    if n == 0 {
        return Err(AccelError::EmptyTestSet);
    }
    let samples_in_tensor = images.shape().first().copied().unwrap_or(0);
    if samples_in_tensor != n {
        return Err(AccelError::ShapeMismatch {
            detail: format!("{n} labels but the image tensor holds {samples_in_tensor} samples"),
        });
    }
    config.validate()?;
    if !supports(config) {
        return Err(AccelError::InvalidConfig(
            "configuration outside the analytic validity envelope \
             (requires Revert policy, no retries, no remap, 16 input bits, no chaos); \
             use the Monte-Carlo model"
                .to_string(),
        ));
    }

    // One analytic model per MVM op; the row-rate memo is shared
    // across layers (compositions repeat network-wide).
    let mut models = Vec::new();
    let mut rate_memo: HashMap<Vec<u32>, RowErrorRate> = HashMap::new();
    for op in qnet.ops() {
        if let QuantOp::Mvm { matrix, .. } = op {
            models.push(build_layer_model(matrix, config, &mut rate_memo)?);
        }
    }

    let cycles = config.input_bits as usize;
    let per_image = images.len() / n;
    let data = images.data();

    // Per-sample results land in a slot vector and are reduced in
    // sample order afterwards, so the totals are bit-identical for
    // every thread count.
    let mut slots: Vec<(f64, f64, f64, StatsAcc)> = vec![(0.0, 0.0, 0.0, StatsAcc::default()); n];
    let threads = threads.clamp(1, n);
    let chunk = n.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (w, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
            let models = &models;
            scope.spawn(move |_| {
                let mut fwd = Forward::default();
                for (k, slot) in slot_chunk.iter_mut().enumerate() {
                    let i = w * chunk + k;
                    let image = &data[i * per_image..(i + 1) * per_image];
                    let mut stats = StatsAcc::default();
                    let (mis, top5, flip) =
                        predict_sample(qnet, models, image, labels[i], cycles, &mut fwd, &mut stats);
                    *slot = (mis, top5, flip, stats);
                }
            });
        }
    })
    .expect("analytic worker panicked");

    let mut stats = StatsAcc::default();
    let mut mis_sum = 0.0f64;
    let mut top5_sum = 0.0f64;
    let mut flip_sum = 0.0f64;
    for &(mis, top5, flip, s) in &slots {
        mis_sum += mis;
        top5_sum += top5;
        flip_sum += flip;
        stats.merge(s);
    }

    Ok(SimResult {
        misclassification: mis_sum / n as f64,
        top5_misclassification: top5_sum / n as f64,
        flip_rate: flip_sum / n as f64,
        samples: n,
        lost_samples: 0,
        gaps: Vec::new(),
        stats: stats.into_stats(),
    })
}

/// One sample's forward pass and classification probabilities:
/// `(misclassification, top-5 misclassification, flip probability)`.
fn predict_sample(
    qnet: &QuantizedNetwork,
    models: &[LayerModel],
    image: &[f32],
    label: usize,
    cycles: usize,
    fwd: &mut Forward,
    stats: &mut StatsAcc,
) -> (f64, f64, f64) {
    {
        forward_sample(qnet, models, image, cycles, fwd, stats);
        let logits = &fwd.x;
        let means = &fwd.mean;
        let vars = &fwd.var;
        let classes = logits.len();

        // Exact fixed-point prediction (the flip-rate reference):
        // argmax keeping the last maximal index, like the engine.
        let mut exact_best = 0usize;
        for (c, &v) in logits.iter().enumerate() {
            if v >= logits[exact_best] {
                exact_best = c;
            }
        }

        let label = label.min(classes.saturating_sub(1));
        let beats_label: Vec<f64> = (0..classes)
            .filter(|&j| j != label)
            .map(|j| {
                beat_probability(
                    logits[j] as f64,
                    means[j] as f64,
                    vars[j] as f64,
                    logits[label] as f64,
                    means[label] as f64,
                    vars[label] as f64,
                    j > label,
                )
            })
            .collect();
        let mis = poisson_binomial_at_least(&beats_label, 1);
        let top5 = poisson_binomial_at_least(&beats_label, 5.min(classes));

        let beats_exact: Vec<f64> = (0..classes)
            .filter(|&j| j != exact_best)
            .map(|j| {
                beat_probability(
                    logits[j] as f64,
                    means[j] as f64,
                    vars[j] as f64,
                    logits[exact_best] as f64,
                    means[exact_best] as f64,
                    vars[exact_best] as f64,
                    j > exact_best,
                )
            })
            .collect();
        let flip = poisson_binomial_at_least(&beats_exact, 1);
        (mis, top5, flip)
    }
}

/// One sample's exact forward pass with the moment side-channel. On
/// return, `fwd.x` holds the exact logits and `fwd.mean`/`fwd.var` the
/// per-logit error moments in logit units.
fn forward_sample(
    qnet: &QuantizedNetwork,
    models: &[LayerModel],
    image: &[f32],
    cycles: usize,
    fwd: &mut Forward,
    stats: &mut StatsAcc,
) {
    fwd.x.clear();
    fwd.x.extend_from_slice(image);
    fwd.mean.clear();
    fwd.mean.resize(image.len(), 0.0);
    fwd.var.clear();
    fwd.var.resize(image.len(), 0.0);

    let mut model_idx = 0;
    for op in qnet.ops() {
        match op {
            QuantOp::Mvm {
                matrix,
                bias,
                activation,
                geometry,
            } => {
                let model = &models[model_idx];
                model_idx += 1;
                match geometry {
                    MvmGeometry::Dense => {
                        dense_step(model, matrix, bias, *activation, cycles, fwd, stats)
                    }
                    MvmGeometry::Conv(geo) => {
                        conv_step(model, matrix, bias, *activation, geo, cycles, fwd, stats)
                    }
                }
            }
            QuantOp::MaxPool { channels, h, w } => pool_step(*channels, *h, *w, fwd),
        }
        std::mem::swap(&mut fwd.x, &mut fwd.nx);
        std::mem::swap(&mut fwd.mean, &mut fwd.nmean);
        std::mem::swap(&mut fwd.var, &mut fwd.nvar);
    }
}

/// Applies the activation to the exact value and gates the moments
/// (first order): ReLU drops them when the exact pre-activation is
/// negative; sigmoid scales by its derivative at the exact value.
fn activate(activation: Activation, z: f32, mean: f64, var: f64) -> (f32, f64, f64) {
    match activation {
        Activation::None => (z, mean, var),
        Activation::Relu => {
            if z > 0.0 {
                (z, mean, var)
            } else {
                (0.0, 0.0, 0.0)
            }
        }
        Activation::Sigmoid => {
            let s = 1.0 / (1.0 + (-z).exp());
            let d = (s * (1.0 - s)) as f64;
            (s, mean * d, var * d * d)
        }
    }
}

#[allow(clippy::too_many_arguments)] // private helper: explicit stages of one dense op
fn dense_step(
    model: &LayerModel,
    matrix: &QuantizedMatrix,
    bias: &[f32],
    activation: Activation,
    cycles: usize,
    fwd: &mut Forward,
    stats: &mut StatsAcc,
) {
    let Forward {
        x,
        mean,
        var,
        nx,
        nmean,
        nvar,
        q,
        raw_mean,
        raw_var,
        rho,
        families,
        ..
    } = fwd;
    let a_scale = mvm_moments(
        model, matrix, x, cycles, q, rho, families, raw_mean, raw_var, stats,
    );
    let sum_q: i64 = q.iter().map(|&v| v as i64).sum();
    let factor = (matrix.scale() * a_scale) as f64;
    let scale = matrix.scale();
    nx.clear();
    nmean.clear();
    nvar.clear();
    for (o, row) in matrix.rows().iter().enumerate() {
        let raw: i64 = row
            .iter()
            .zip(q.iter())
            .map(|(&w, &v)| w as i64 * v as i64)
            .sum();
        let signed = raw - WEIGHT_BIAS * sum_q;
        let z = signed as f32 * matrix.scale() * a_scale + bias[o];
        // First-order propagation of the *input's* error moments
        // through the dequantized weights, plus this layer's own
        // analog-error moments.
        let mut m_in = 0.0f64;
        let mut v_in = 0.0f64;
        for (j, &w) in row.iter().enumerate() {
            let wd = ((w as i64 - WEIGHT_BIAS) as f32 * scale) as f64;
            m_in += wd * mean[j] as f64;
            v_in += wd * wd * var[j] as f64;
        }
        let m = raw_mean[o] * factor + m_in;
        let v = raw_var[o] * factor * factor + v_in;
        let (out, m, v) = activate(activation, z, m, v);
        nx.push(out);
        nmean.push(m as f32);
        nvar.push(v as f32);
    }
}

#[allow(clippy::too_many_arguments)] // private helper: explicit stages of one conv op
fn conv_step(
    model: &LayerModel,
    matrix: &QuantizedMatrix,
    bias: &[f32],
    activation: Activation,
    geo: &neural::ConvGeometry,
    cycles: usize,
    fwd: &mut Forward,
    stats: &mut StatsAcc,
) {
    let Forward {
        x,
        mean,
        var,
        nx,
        nmean,
        nvar,
        q,
        patch,
        mpatch,
        vpatch,
        raw_mean,
        raw_var,
        rho,
        families,
    } = fwd;
    let (oh, ow) = geo.out_hw();
    let out_c = geo.out_channels;
    nx.clear();
    nx.resize(out_c * oh * ow, 0.0);
    nmean.clear();
    nmean.resize(out_c * oh * ow, 0.0);
    nvar.clear();
    nvar.resize(out_c * oh * ow, 0.0);
    let scale = matrix.scale();
    for p in 0..oh * ow {
        im2col_patch_into(x, geo, p, patch);
        im2col_patch_into(mean, geo, p, mpatch);
        im2col_patch_into(var, geo, p, vpatch);
        let a_scale = mvm_moments(
            model, matrix, patch, cycles, q, rho, families, raw_mean, raw_var, stats,
        );
        let sum_q: i64 = q.iter().map(|&v| v as i64).sum();
        let factor = (scale * a_scale) as f64;
        for (c, row) in matrix.rows().iter().enumerate() {
            let raw: i64 = row
                .iter()
                .zip(q.iter())
                .map(|(&w, &v)| w as i64 * v as i64)
                .sum();
            let signed = raw - WEIGHT_BIAS * sum_q;
            let z = signed as f32 * scale * a_scale + bias[c];
            let mut m_in = 0.0f64;
            let mut v_in = 0.0f64;
            for (j, &w) in row.iter().enumerate() {
                let wd = ((w as i64 - WEIGHT_BIAS) as f32 * scale) as f64;
                m_in += wd * mpatch[j] as f64;
                v_in += wd * wd * vpatch[j] as f64;
            }
            let m = raw_mean[c] * factor + m_in;
            let v = raw_var[c] * factor * factor + v_in;
            let (out, m, v) = activate(activation, z, m, v);
            nx[c * oh * ow + p] = out;
            nmean[c * oh * ow + p] = m as f32;
            nvar[c * oh * ow + p] = v as f32;
        }
    }
}

/// 2×2 max pooling on the exact values, forwarding the moments of the
/// element the exact pool selects.
fn pool_step(c: usize, h: usize, w: usize, fwd: &mut Forward) {
    let Forward {
        x,
        mean,
        var,
        nx,
        nmean,
        nvar,
        ..
    } = fwd;
    let (oh, ow) = (h / 2, w / 2);
    nx.clear();
    nx.resize(c * oh * ow, 0.0);
    nmean.clear();
    nmean.resize(c * oh * ow, 0.0);
    nvar.clear();
    nvar.resize(c * oh * ow, 0.0);
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best_idx = 0usize;
                let mut best = f32::NEG_INFINITY;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let idx = ch * h * w + (oy * 2 + dy) * w + (ox * 2 + dx);
                        if x[idx] > best {
                            best = x[idx];
                            best_idx = idx;
                        }
                    }
                }
                let out = ch * oh * ow + oy * ow + ox;
                nx[out] = best;
                nmean[out] = mean[best_idx];
                nvar[out] = var[best_idx];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtectionScheme;
    use neural::{Dense, Network};

    fn tiny() -> (QuantizedNetwork, Tensor, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let net = Network::new(vec![Box::new(Dense::new(12, 6, &mut rng))]);
        let qnet = QuantizedNetwork::from_network(&net);
        let images = Tensor::from_vec(vec![4, 12], (0..48).map(|i| (i % 7) as f32 / 7.0).collect());
        (qnet, images, vec![0, 1, 2, 3])
    }

    #[test]
    fn noiseless_prediction_matches_exact_inference() {
        let (qnet, images, labels) = tiny();
        let mut config = AccelConfig::new(ProtectionScheme::None);
        config.device.rtn_state_probability = 0.0;
        config.device.programming_tolerance = 0.0;
        config.device.fault_rate = 0.0;
        config.device.bandwidth = 0.0;
        let result = predict(&qnet, &images, &labels, &config).expect("predict");
        // Zero noise: the analytic variance is zero and predictions
        // collapse to the exact fixed-point classifier.
        assert_eq!(result.flip_rate, 0.0);
        let mc = crate::sim::evaluate(&qnet, &images, &labels, &config, 3, 1).expect("mc");
        assert_eq!(result.misclassification, mc.misclassification);
        assert_eq!(result.top5_misclassification, mc.top5_misclassification);
    }

    #[test]
    fn envelope_is_enforced() {
        let (qnet, images, labels) = tiny();
        let mut config = AccelConfig::new(ProtectionScheme::None);
        config.max_retries = 2;
        assert!(!supports(&config));
        assert!(matches!(
            predict(&qnet, &images, &labels, &config),
            Err(AccelError::InvalidConfig(_))
        ));
        let mut config = AccelConfig::new(ProtectionScheme::None);
        config.policy = CorrectionPolicy::KeepCorrected;
        assert!(!supports(&config));
        let mut config = AccelConfig::new(ProtectionScheme::None);
        config.remap = true;
        assert!(!supports(&config));
        assert!(supports(&AccelConfig::new(ProtectionScheme::data_aware(9))));
    }

    #[test]
    fn degenerate_inputs_yield_typed_errors() {
        let (qnet, images, _) = tiny();
        let config = AccelConfig::new(ProtectionScheme::None);
        assert_eq!(
            predict(&qnet, &images, &[], &config),
            Err(AccelError::EmptyTestSet)
        );
        assert!(matches!(
            predict(&qnet, &images, &[0, 1], &config),
            Err(AccelError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn lane_digits_match_operand_group_split() {
        use ancode::GroupLayout;
        let group = OperandGroup::new(GroupLayout::new(16, 4).unwrap());
        let mut buf = [0.0f64; 8];
        for v in [1i128, -1, 3 << 14, -(3 << 14), 5 << 30, 1 << 47] {
            for t in [0u32, 3, 9] {
                let exact = group.split_signed(I256::from_i128(v).shifted_left(t));
                lane_digits(v as f64, t, 16, 4, 4, &mut buf);
                for l in 0..4 {
                    assert!(
                        (buf[l] - exact[l] as f64).abs() < 1e-6,
                        "v={v} t={t} lane {l}: {} vs {}",
                        buf[l],
                        exact[l]
                    );
                }
            }
        }
    }

    #[test]
    fn lane_digits_partial_stack_drops_phantom_residue() {
        use ancode::GroupLayout;
        // A 4-lane tail stack inside an 8-operand layout: the engine
        // splits over all 8 slots and only applies the first 4 digits,
        // so digits beyond lane 3 — including the top-slot residue —
        // must not leak into a real output.
        let group = OperandGroup::new(GroupLayout::new(16, 8).unwrap());
        let mut buf = [0.0f64; 8];
        for v in [1i128, -(3 << 14), 5 << 30, 1 << 47, -(1 << 60)] {
            for t in [0u32, 7, 15] {
                let exact = group.split_signed(I256::from_i128(v).shifted_left(t));
                lane_digits(v as f64, t, 16, 8, 4, &mut buf);
                for l in 0..4 {
                    assert!(
                        (buf[l] - exact[l] as f64).abs() < 1e-6,
                        "v={v} t={t} lane {l}: {} vs {}",
                        buf[l],
                        exact[l]
                    );
                }
                for l in 4..8 {
                    assert_eq!(buf[l], 0.0, "phantom lane {l} leaked");
                }
            }
        }
    }

    #[test]
    fn phi_brackets_known_values() {
        assert!((phi(0.0) - 0.5).abs() < 1e-7);
        assert!((phi(1.0) - 0.841_344_7).abs() < 1e-6);
        assert!((phi(-1.0) - 0.158_655_3).abs() < 1e-6);
        assert!(phi(9.0) == 1.0 && phi(-9.0) == 0.0);
    }

    #[test]
    fn poisson_binomial_matches_binomial() {
        // Equal probabilities reduce to the binomial tail.
        let probs = [0.3f64; 6];
        let expect: f64 = (2..=6)
            .map(|k| {
                let choose = [1.0, 6.0, 15.0, 20.0, 15.0, 6.0, 1.0][k];
                choose * 0.3f64.powi(k as i32) * 0.7f64.powi((6 - k) as i32)
            })
            .sum();
        assert!((poisson_binomial_at_least(&probs, 2) - expect).abs() < 1e-12);
        assert_eq!(poisson_binomial_at_least(&probs, 0), 1.0);
    }


    #[test]
    fn more_fault_means_more_flips() {
        let (qnet, images, labels) = tiny();
        let mut last = -1.0f64;
        for fault in [0.0, 1e-3, 1e-2, 1e-1] {
            let config =
                AccelConfig::new(ProtectionScheme::None).with_fault_rate(fault);
            let r = predict(&qnet, &images, &labels, &config).expect("predict");
            assert!(
                r.flip_rate >= last - 1e-12,
                "flip rate not monotone: {} after {last} at fault {fault}",
                r.flip_rate
            );
            last = r.flip_rate;
        }
    }
}
